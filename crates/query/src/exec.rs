//! Query execution against the live system state.
//!
//! Two serving paths share one generic executor ([`execute_view`] over any
//! [`GraphView`]):
//!
//! - **Lock-free** ([`execute_shared`]): queries run against the session's
//!   epoch-swapped [`nous_core::FrozenSnapshot`] — no KG lock is touched on
//!   the read path, so ingestion never stalls analysts (and vice versa).
//!   Only the `TRENDING` class still serialises, on the trend-monitor
//!   mutex, because the miner's closed-pattern query mutates cached state.
//! - **Locked** ([`execute_shared_locked`]): the pre-snapshot baseline —
//!   one consistent read-lock acquisition over graph + topics + trends.
//!   Kept for identity tests and as the benchmark baseline.
//!
//! Both paths return byte-identical results for the same graph state.

use crate::ast::{Endpoint, Query, QueryResponse, QueryResult};
use nous_core::{entity_summary_view, KnowledgeGraph, SharedSession, TrendMonitor};
use nous_fault::Deadline;
use nous_graph::{GraphView, VertexId};
use nous_link::Disambiguator;
use nous_obs::{ActiveSpan, MetricsRegistry, TraceContext};
use nous_qa::{
    coherent_paths_deadline_instrumented, coherent_paths_deadline_with_stats, record_search,
    PathConstraint, QaConfig, TopicIndex,
};
use nous_text::bow::BagOfWords;

fn resolve<G: GraphView>(g: &G, disamb: &Disambiguator, name: &str) -> Option<VertexId> {
    g.vertex_id(name).or_else(|| {
        disamb
            .resolve(name, &BagOfWords::new(), nous_link::LinkMode::Full)
            .map(|r| VertexId(r.id))
    })
}

fn endpoint_matches<G: GraphView>(g: &G, ep: &Endpoint, v: VertexId) -> bool {
    match ep {
        Endpoint::Any => true,
        Endpoint::Type(t) => g.label(v).is_some_and(|l| l.eq_ignore_ascii_case(t)),
        Endpoint::Constant(name) => g.vertex_name(v).eq_ignore_ascii_case(name),
    }
}

/// Search accounting as typed span attributes — pushed directly so the
/// tracing hot path formats nothing.
fn annotate_search_span(span: &mut ActiveSpan, stats: &nous_qa::SearchStats) {
    span.attr("nodes_expanded", stats.nodes_expanded);
    span.attr("max_frontier", stats.max_frontier);
    span.attr("paths_emitted", stats.paths_emitted);
    span.attr("coherence_evals", stats.coherence_evals);
    span.attr("truncated", stats.truncated);
}

/// The metric label for a query's class (`nous_query_*{class=...}`).
pub fn query_class(q: &Query) -> &'static str {
    match q {
        Query::Trending { .. } => "trending",
        Query::Entity { .. } => "entity",
        Query::Why { .. } => "why",
        Query::Match { .. } => "match",
        Query::Timeline { .. } => "timeline",
        Query::Paths { .. } => "paths",
    }
}

/// Execute a parsed query. `trends` feeds the Trending class; `topics`
/// feeds the Why class. Both are owned by the session, mirroring the
/// paper's long-running demo services.
pub fn execute(
    query: &Query,
    kg: &KnowledgeGraph,
    topics: &TopicIndex,
    trends: &mut TrendMonitor,
) -> QueryResult {
    execute_view(
        query,
        &kg.graph,
        &kg.disambiguator,
        topics,
        Some(trends),
        None,
    )
}

/// [`execute`] with telemetry: per-class counts and latency spans
/// (`nous_query_total{class=...}`, `nous_query_seconds{class=...}`), plus
/// `nous_qa_*` search-effort accounting for the path classes.
pub fn execute_instrumented(
    query: &Query,
    kg: &KnowledgeGraph,
    topics: &TopicIndex,
    trends: &mut TrendMonitor,
    registry: &MetricsRegistry,
) -> QueryResult {
    execute_view_instrumented(
        query,
        &kg.graph,
        &kg.disambiguator,
        topics,
        Some(trends),
        registry,
    )
}

/// [`execute_view`] wrapped in per-class telemetry, against any graph view.
pub fn execute_view_instrumented<G: GraphView>(
    query: &Query,
    g: &G,
    disamb: &Disambiguator,
    topics: &TopicIndex,
    trends: Option<&mut TrendMonitor>,
    registry: &MetricsRegistry,
) -> QueryResult {
    execute_view_instrumented_deadline(
        query,
        g,
        disamb,
        topics,
        trends,
        registry,
        &Deadline::none(),
    )
    .result
}

/// [`execute_view_instrumented`] under a wall-clock [`Deadline`],
/// returning the [`QueryResponse`] with its `partial` flag.
pub fn execute_view_instrumented_deadline<G: GraphView>(
    query: &Query,
    g: &G,
    disamb: &Disambiguator,
    topics: &TopicIndex,
    trends: Option<&mut TrendMonitor>,
    registry: &MetricsRegistry,
    deadline: &Deadline,
) -> QueryResponse {
    execute_view_instrumented_deadline_traced(
        query,
        g,
        disamb,
        topics,
        trends,
        registry,
        deadline,
        &TraceContext::disabled(),
    )
}

/// [`execute_view_instrumented_deadline`] under an explicit trace
/// context: the per-class latency span is exemplar-linked to the trace,
/// and search-heavy classes annotate child spans with their effort
/// accounting.
#[allow(clippy::too_many_arguments)] // the trace context rides on the instrumented signature
pub fn execute_view_instrumented_deadline_traced<G: GraphView>(
    query: &Query,
    g: &G,
    disamb: &Disambiguator,
    topics: &TopicIndex,
    trends: Option<&mut TrendMonitor>,
    registry: &MetricsRegistry,
    deadline: &Deadline,
    ctx: &TraceContext,
) -> QueryResponse {
    let class = query_class(query);
    registry
        .counter_with(
            "nous_query_total",
            "Queries executed per class",
            &[("class", class)],
        )
        .inc();
    let span = registry
        .span_with(
            "nous_query_seconds",
            "Query execution wall time per class",
            &[("class", class)],
        )
        .with_exemplar(ctx.trace_id());
    let out = execute_view_deadline_traced(
        query,
        g,
        disamb,
        topics,
        trends,
        Some(registry),
        deadline,
        ctx,
    );
    span.stop();
    out
}

/// Execute against a live [`SharedSession`] — the entry point the demo's
/// query services call per request. Runs on the **lock-free path**: the
/// published frozen snapshot serves every class without touching the KG
/// lock; only `TRENDING` additionally takes the trend-monitor mutex (the
/// miner's closed-pattern query mutates cached state). Telemetry lands in
/// the session's registry; snapshot staleness is recorded on
/// `nous_snapshot_age_nanos` at acquisition.
pub fn execute_shared(session: &SharedSession, query: &Query) -> QueryResult {
    execute_shared_deadline(session, query, &Deadline::none()).result
}

/// [`execute_shared`] under a wall-clock [`Deadline`] — the degradation
/// contract for a loaded service: every query still returns a valid
/// result, but an expired budget makes the search/scan stop early and
/// the response is flagged `partial` (counted per class on
/// `nous_query_deadline_exceeded_total`).
pub fn execute_shared_deadline(
    session: &SharedSession,
    query: &Query,
    deadline: &Deadline,
) -> QueryResponse {
    execute_shared_deadline_in(session, query, deadline, &TraceContext::disabled())
}

/// [`execute_shared_deadline`] nested under an existing trace — the HTTP
/// serving layer hands its per-request root context in here so one trace
/// shows both the wire handling and the query execution it triggered.
/// With a disabled `parent` this is exactly [`execute_shared_deadline`]:
/// a fresh root trace per query.
pub fn execute_shared_deadline_in(
    session: &SharedSession,
    query: &Query,
    deadline: &Deadline,
    parent: &TraceContext,
) -> QueryResponse {
    let registry = session.metrics().clone();
    let snap = session.frozen();
    // One trace per request: the root span carries the class, the served
    // epoch and its layer depth; the partial flag lands once the class
    // executor reports back. Slow requests enter the flight recorder's
    // slow log under "query".
    let mut root = if parent.is_enabled() {
        parent.child("query")
    } else {
        registry.trace("query")
    };
    root.attr("class", query_class(query));
    root.attr("epoch", snap.epoch);
    if root.is_enabled() {
        // A sharded session serves from the composite fan-out/merge view;
        // aggregate its per-shard merge accounting into the same attrs.
        let ms = match &snap.sharded {
            Some(sharded) => sharded.merge_stats(),
            None => snap.view.merge_stats(),
        };
        if let Some(sharded) = &snap.sharded {
            root.attr("shards", sharded.shard_count());
        }
        root.attr("nous_snapshot_layers", ms.layers);
        root.attr("overlay_edges", ms.overlay_edges);
        root.attr("tombstones", ms.tombstones);
        root.attr("delta_permille", ms.delta_permille());
    }
    let ctx = root.context();
    // The executor is generic over `GraphView`; a sharded snapshot routes
    // every class through the composite (k-way merged in `FrozenView`
    // order, so results are byte-identical to the single-graph path).
    let resp = match (query, &snap.sharded) {
        (Query::Trending { .. }, Some(sharded)) => session.with_trends_only(|trends| {
            execute_view_instrumented_deadline_traced(
                query,
                &**sharded,
                &snap.disambiguator,
                &snap.topics,
                Some(trends),
                &registry,
                deadline,
                &ctx,
            )
        }),
        (Query::Trending { .. }, None) => session.with_trends_only(|trends| {
            execute_view_instrumented_deadline_traced(
                query,
                &snap.view,
                &snap.disambiguator,
                &snap.topics,
                Some(trends),
                &registry,
                deadline,
                &ctx,
            )
        }),
        (_, Some(sharded)) => execute_view_instrumented_deadline_traced(
            query,
            &**sharded,
            &snap.disambiguator,
            &snap.topics,
            None,
            &registry,
            deadline,
            &ctx,
        ),
        (_, None) => execute_view_instrumented_deadline_traced(
            query,
            &snap.view,
            &snap.disambiguator,
            &snap.topics,
            None,
            &registry,
            deadline,
            &ctx,
        ),
    };
    root.attr("partial", resp.partial);
    resp
}

/// The pre-snapshot serving path: one consistent read-lock acquisition
/// over graph + topics + trend monitor. Byte-identical results to
/// [`execute_shared`] at the same graph state — kept as the benchmark
/// baseline and for identity tests.
pub fn execute_shared_locked(session: &SharedSession, query: &Query) -> QueryResult {
    let registry = session.metrics().clone();
    session
        .with_all(|kg, topics, trends| execute_instrumented(query, kg, topics, trends, &registry))
}

/// The generic executor: every query class against any [`GraphView`]
/// (mutable graph under a lock, or a frozen snapshot). `trends` is only
/// consulted by the `TRENDING` class; passing `None` makes that class
/// return an empty result, so lock-free callers route `TRENDING` through
/// the trend-monitor mutex themselves.
pub fn execute_view<G: GraphView>(
    query: &Query,
    g: &G,
    disamb: &Disambiguator,
    topics: &TopicIndex,
    trends: Option<&mut TrendMonitor>,
    registry: Option<&MetricsRegistry>,
) -> QueryResult {
    execute_view_deadline(
        query,
        g,
        disamb,
        topics,
        trends,
        registry,
        &Deadline::none(),
    )
    .result
}

/// [`execute_view`] under a wall-clock [`Deadline`].
///
/// Per-class degradation when the deadline expires mid-execution:
///
/// - `TRENDING` — the pattern list stops where rendering got to.
/// - `WHY` / `PATHS` — the path search returns best-so-far candidates,
///   scored and ranked normally.
/// - `MATCH` — the scan stops: `total` is a lower bound and `sample`
///   may be short.
/// - `ENTITY` / `TIMELINE` — never partial: their work is bounded by
///   one entity's degree, so they always run to completion.
///
/// Every partial response increments
/// `nous_query_deadline_exceeded_total{class=...}` when a registry is
/// attached.
pub fn execute_view_deadline<G: GraphView>(
    query: &Query,
    g: &G,
    disamb: &Disambiguator,
    topics: &TopicIndex,
    trends: Option<&mut TrendMonitor>,
    registry: Option<&MetricsRegistry>,
    deadline: &Deadline,
) -> QueryResponse {
    execute_view_deadline_traced(
        query,
        g,
        disamb,
        topics,
        trends,
        registry,
        deadline,
        &TraceContext::disabled(),
    )
}

/// [`execute_view_deadline`] under an explicit trace context.
#[allow(clippy::too_many_arguments)] // the trace context rides on the deadline signature
pub fn execute_view_deadline_traced<G: GraphView>(
    query: &Query,
    g: &G,
    disamb: &Disambiguator,
    topics: &TopicIndex,
    trends: Option<&mut TrendMonitor>,
    registry: Option<&MetricsRegistry>,
    deadline: &Deadline,
    ctx: &TraceContext,
) -> QueryResponse {
    let (result, partial) =
        execute_view_inner(query, g, disamb, topics, trends, registry, deadline, ctx);
    if partial {
        if let Some(reg) = registry {
            reg.counter_with(
                "nous_query_deadline_exceeded_total",
                "Queries whose deadline expired mid-execution (partial result returned)",
                &[("class", query_class(query))],
            )
            .inc();
        }
    }
    QueryResponse { result, partial }
}

#[allow(clippy::too_many_arguments)] // private: the trace context rides on the executor signature
fn execute_view_inner<G: GraphView>(
    query: &Query,
    g: &G,
    disamb: &Disambiguator,
    topics: &TopicIndex,
    trends: Option<&mut TrendMonitor>,
    registry: Option<&MetricsRegistry>,
    deadline: &Deadline,
    ctx: &TraceContext,
) -> (QueryResult, bool) {
    match query {
        Query::Trending { limit } => {
            let _span = ctx.child("trending");
            let (trends, partial) = trends
                .map(|tm| tm.trending_on_deadline(g, deadline))
                .unwrap_or((Vec::new(), false));
            let mut items: Vec<(String, u32)> = trends
                .into_iter()
                .map(|t| (t.description, t.support))
                .collect();
            items.truncate(*limit);
            (QueryResult::Trending(items), partial)
        }

        Query::Entity { name } => {
            let _span = ctx.child("summary");
            match entity_summary_view(g, disamb, name) {
                None => (QueryResult::NotFound(name.clone()), false),
                Some(s) => (
                    QueryResult::Entity {
                        name: s.name,
                        entity_type: s.entity_type,
                        degree: s.degree,
                        facts: s
                            .facts
                            .into_iter()
                            .map(|(f, c, _, cur)| (f, c, cur))
                            .collect(),
                        neighbors: s.neighbors,
                    },
                    false,
                ),
            }
        }

        Query::Why {
            source,
            target,
            via,
            limit,
        } => {
            let Some(src) = resolve(g, disamb, source) else {
                return (QueryResult::NotFound(source.clone()), false);
            };
            let Some(dst) = resolve(g, disamb, target) else {
                return (QueryResult::NotFound(target.clone()), false);
            };
            let constraint = PathConstraint {
                require_predicate: via.as_deref().and_then(|p| g.predicate_id(p)),
            };
            if let Some(v) = via {
                if g.predicate_id(v).is_none() {
                    return (QueryResult::NotFound(format!("predicate {v}")), false);
                }
            }
            let cfg = QaConfig {
                k: *limit,
                ..Default::default()
            };
            let mut search_span = ctx.child("search");
            let (paths, stats) = match registry {
                Some(reg) => coherent_paths_deadline_instrumented(
                    g,
                    topics,
                    src,
                    dst,
                    &constraint,
                    &cfg,
                    deadline,
                    reg,
                ),
                None => coherent_paths_deadline_with_stats(
                    g,
                    topics,
                    src,
                    dst,
                    &constraint,
                    &cfg,
                    deadline,
                ),
            };
            annotate_search_span(&mut search_span, &stats);
            drop(search_span);
            (
                QueryResult::Paths(paths.into_iter().map(|p| (p.render(g), p.score)).collect()),
                stats.truncated,
            )
        }

        Query::Match {
            src,
            predicate,
            dst,
            limit,
            since,
            until,
        } => {
            let Some(pred) = g.predicate_id(predicate) else {
                return (
                    QueryResult::NotFound(format!("predicate {predicate}")),
                    false,
                );
            };
            let mut scan_span = ctx.child("scan");
            let mut total = 0usize;
            let mut sample = Vec::new();
            let mut partial = false;
            let mut seen = 0usize;
            // Predicate postings serve the scan in edge-log order on both
            // the mutable graph and the frozen view, so the sample is
            // identical across serving paths. The deadline is polled every
            // 1024 postings (starting at the first, so an already-expired
            // budget stops immediately); on expiry the scan breaks out of
            // the postings walk at once and `total` becomes a lower bound.
            let _ = g.for_each_with_pred(pred, |_, e| {
                seen += 1;
                if seen & 1023 == 1 && deadline.expired() {
                    partial = true;
                    return std::ops::ControlFlow::Break(());
                }
                if !endpoint_matches(g, src, e.src)
                    || !endpoint_matches(g, dst, e.dst)
                    || since.is_some_and(|d| e.at < d)
                    || until.is_some_and(|d| e.at > d)
                {
                    return std::ops::ControlFlow::Continue(());
                }
                total += 1;
                if sample.len() < *limit {
                    sample.push(format!(
                        "{} -[{}]-> {} ({:.2}, {})",
                        g.vertex_name(e.src),
                        predicate,
                        g.vertex_name(e.dst),
                        e.confidence,
                        e.provenance.tag(),
                    ));
                }
                std::ops::ControlFlow::Continue(())
            });
            scan_span.attr("postings_seen", seen);
            scan_span.attr("matched", total);
            drop(scan_span);
            (QueryResult::Matches { total, sample }, partial)
        }

        Query::Timeline { name, limit } => {
            let _span = ctx.child("timeline");
            let Some(v) = resolve(g, disamb, name) else {
                return (QueryResult::NotFound(name.clone()), false);
            };
            // Collect both directions, then order by (direction, edge id)
            // so the stable (at, text) sort below resolves exact ties the
            // same way on every graph implementation (the mutable graph
            // stores adjacency in insertion order, the frozen view in
            // predicate-segmented order).
            let mut adjs: Vec<(nous_graph::Adj, bool)> = Vec::new();
            g.for_each_out(v, |adj| adjs.push((adj, true)));
            g.for_each_in(v, |adj| adjs.push((adj, false)));
            adjs.sort_by_key(|(adj, outgoing)| (!*outgoing, adj.edge.0));
            let mut items: Vec<(u64, String, f32)> = adjs
                .into_iter()
                .map(|(adj, outgoing)| {
                    let e = g.edge(adj.edge);
                    let (from, to) = if outgoing {
                        (v, adj.other)
                    } else {
                        (adj.other, v)
                    };
                    let text = format!(
                        "{} -[{}]-> {}",
                        g.vertex_name(from),
                        g.predicate_name(adj.pred),
                        g.vertex_name(to)
                    );
                    (e.at, text, e.confidence)
                })
                .collect();
            items.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            // Keep the *latest* `limit` events (still rendered in
            // ascending order): a busy entity's timeline should show its
            // recent activity, not its oldest.
            if items.len() > *limit {
                items.drain(..items.len() - *limit);
            }
            (QueryResult::Timeline(items), false)
        }

        Query::Paths {
            source,
            target,
            max_hops,
            limit,
        } => {
            let Some(src) = resolve(g, disamb, source) else {
                return (QueryResult::NotFound(source.clone()), false);
            };
            let Some(dst) = resolve(g, disamb, target) else {
                return (QueryResult::NotFound(target.clone()), false);
            };
            let cfg = QaConfig {
                k: *limit,
                max_hops: *max_hops,
                ..Default::default()
            };
            let mut search_span = ctx.child("search");
            let (paths, stats) = nous_qa::baselines::shortest_paths_deadline_with_stats(
                g,
                src,
                dst,
                &PathConstraint::default(),
                &cfg,
                deadline,
            );
            annotate_search_span(&mut search_span, &stats);
            drop(search_span);
            if let Some(reg) = registry {
                record_search(reg, &stats);
            }
            (
                QueryResult::Paths(paths.into_iter().map(|p| (p.render(g), p.score)).collect()),
                stats.truncated,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use nous_graph::window::WindowKind;
    use nous_mining::{EvictionStrategy, MinerConfig};
    use nous_text::ner::EntityType;

    /// A small hand-built system: 3 companies in a motif, topics assigned.
    fn session() -> (KnowledgeGraph, TopicIndex, TrendMonitor) {
        let mut kg = KnowledgeGraph::new();
        let a = kg.create_entity("Apex Robotics", EntityType::Organization);
        let b = kg.create_entity("Condor Labs", EntityType::Organization);
        let c = kg.create_entity("Falcon Systems", EntityType::Organization);
        let hub = kg.create_entity("Mega Hub", EntityType::Organization);
        for i in 0..3 {
            // Repeat the acquisition motif so it trends.
            let x = kg.create_entity(&format!("X{i}"), EntityType::Organization);
            let y = kg.create_entity(&format!("Y{i}"), EntityType::Organization);
            kg.add_extracted_fact(x, "acquired", y, i, 0.9, i);
        }
        kg.add_extracted_fact(a, "partneredWith", b, 10, 0.9, 9);
        kg.add_extracted_fact(b, "investedIn", c, 11, 0.8, 9);
        kg.add_extracted_fact(a, "competesWith", hub, 12, 0.7, 9);
        kg.add_extracted_fact(hub, "partneredWith", c, 13, 0.7, 9);

        let mut topics = TopicIndex::new(2);
        let t = |v: VertexId, x: f64| (v, vec![x, 1.0 - x]);
        for (v, d) in [t(a, 0.9), t(b, 0.85), t(c, 0.9), t(hub, 0.1)] {
            let mut idx_d = d;
            let sum: f64 = idx_d.iter().sum();
            idx_d.iter_mut().for_each(|x| *x /= sum);
            topics.set(v, idx_d);
        }

        let mut trends = TrendMonitor::new(
            WindowKind::Count { n: 100 },
            MinerConfig {
                k_max: 1,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        );
        trends.observe(&kg);
        (kg, topics, trends)
    }

    fn run(q: &str) -> QueryResult {
        let (kg, topics, mut trends) = session();
        execute(&parse(q).unwrap(), &kg, &topics, &mut trends)
    }

    #[test]
    fn trending_query_reports_motif() {
        let r = run("TRENDING LIMIT 5");
        let QueryResult::Trending(items) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert!(
            items.iter().any(|(d, s)| d.contains("acquired") && *s == 3),
            "{items:?}"
        );
    }

    #[test]
    fn entity_query() {
        let r = run("tell me about Apex Robotics");
        let QueryResult::Entity {
            name,
            degree,
            facts,
            ..
        } = r
        else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(name, "Apex Robotics");
        assert_eq!(degree, 2);
        assert!(facts.iter().any(|(f, _, _)| f.contains("partneredWith")));
    }

    #[test]
    fn why_query_prefers_coherent_path() {
        let r = run("WHY Apex Robotics -> Falcon Systems LIMIT 2");
        let QueryResult::Paths(paths) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert!(!paths.is_empty());
        assert!(
            paths[0].0.contains("Condor Labs"),
            "coherent path through Condor Labs should rank first: {paths:?}"
        );
    }

    #[test]
    fn why_with_predicate_constraint() {
        let r = run("WHY Apex Robotics -> Falcon Systems VIA investedIn");
        let QueryResult::Paths(paths) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert!(paths.iter().all(|(p, _)| p.contains("investedIn")));
        let r2 = run("WHY Apex Robotics -> Falcon Systems VIA noSuchPred");
        assert!(matches!(r2, QueryResult::NotFound(_)));
    }

    #[test]
    fn match_query_counts_and_samples() {
        let r = run("MATCH (Organization)-[acquired]->(Organization) LIMIT 2");
        let QueryResult::Matches { total, sample } = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(total, 3);
        assert_eq!(sample.len(), 2);
        let r2 = run("MATCH (*)-[acquired]->(\"Y0\")");
        let QueryResult::Matches { total, .. } = r2 else {
            panic!()
        };
        assert_eq!(total, 1);
    }

    #[test]
    fn paths_query_enumerates() {
        let r = run("PATHS Apex Robotics TO Falcon Systems MAX 3");
        let QueryResult::Paths(paths) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(paths.len(), 2, "via Condor Labs and via Mega Hub");
    }

    #[test]
    fn timeline_is_chronological() {
        let r = run("TIMELINE Apex Robotics");
        let QueryResult::Timeline(items) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(items.len(), 2, "partneredWith(t=10) and competesWith(t=12)");
        assert!(items.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(items[0].0, 10);
        assert!(items[0].1.contains("partneredWith"));
        // Natural-language phrasing parses to the same class.
        let r2 = run("what happened to Condor Labs");
        assert!(matches!(r2, QueryResult::Timeline(_)));
        assert!(matches!(run("TIMELINE Nobody"), QueryResult::NotFound(_)));
    }

    #[test]
    fn timeline_limit_keeps_latest_events() {
        // Apex Robotics has events at t=10 (partneredWith) and t=12
        // (competesWith); LIMIT 1 must surface the *recent* one, still
        // in ascending render order.
        let r = run("TIMELINE Apex Robotics LIMIT 1");
        let QueryResult::Timeline(items) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, 12, "kept the latest event: {items:?}");
        assert!(items[0].1.contains("competesWith"), "{items:?}");
    }

    #[test]
    fn match_temporal_window_filters_edges() {
        // Acquisition edges in session() carry timestamps 0, 1, 2.
        let r = run("MATCH (*)-[acquired]->(*) SINCE 1 UNTIL 2");
        let QueryResult::Matches { total, .. } = r else {
            panic!("{r:?}")
        };
        assert_eq!(total, 2);
        let r2 = run("MATCH (*)-[acquired]->(*) SINCE 99");
        let QueryResult::Matches { total, .. } = r2 else {
            panic!()
        };
        assert_eq!(total, 0);
    }

    #[test]
    fn instrumented_execution_counts_query_classes() {
        let (kg, topics, mut trends) = session();
        let registry = MetricsRegistry::new();
        for q in [
            "TRENDING LIMIT 5",
            "tell me about Apex Robotics",
            "WHY Apex Robotics -> Falcon Systems LIMIT 2",
            "WHY Apex Robotics -> Falcon Systems LIMIT 1",
            "MATCH (Organization)-[acquired]->(Organization) LIMIT 2",
            "TIMELINE Apex Robotics",
            "PATHS Apex Robotics TO Falcon Systems MAX 3",
        ] {
            execute_instrumented(&parse(q).unwrap(), &kg, &topics, &mut trends, &registry);
        }
        for (class, n) in [
            ("trending", 1),
            ("entity", 1),
            ("why", 2),
            ("match", 1),
            ("timeline", 1),
            ("paths", 1),
        ] {
            assert_eq!(
                registry.counter_value("nous_query_total", &[("class", class)]),
                Some(n),
                "class {class}"
            );
        }
        // Both WHY searches and the PATHS baseline land in the qa family.
        assert_eq!(
            registry.counter_value("nous_qa_searches_total", &[]),
            Some(3)
        );
        let text = registry.render_prometheus();
        assert!(
            text.contains("nous_query_seconds_count{class=\"why\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("nous_query_seconds_count{class=\"paths\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn instrumented_results_match_plain_execution() {
        let (kg, topics, mut trends) = session();
        let registry = MetricsRegistry::new();
        for q in [
            "WHY Apex Robotics -> Falcon Systems LIMIT 2",
            "PATHS Apex Robotics TO Falcon Systems MAX 3",
            "TRENDING LIMIT 5",
        ] {
            let parsed = parse(q).unwrap();
            let plain = execute(&parsed, &kg, &topics, &mut trends);
            let inst = execute_instrumented(&parsed, &kg, &topics, &mut trends, &registry);
            assert_eq!(format!("{plain:?}"), format!("{inst:?}"), "{q}");
        }
    }

    #[test]
    fn unbounded_deadline_matches_plain_execution_with_partial_false() {
        let (kg, topics, mut trends) = session();
        for q in [
            "TRENDING LIMIT 5",
            "tell me about Apex Robotics",
            "WHY Apex Robotics -> Falcon Systems LIMIT 2",
            "MATCH (Organization)-[acquired]->(Organization) LIMIT 2",
            "TIMELINE Apex Robotics",
            "PATHS Apex Robotics TO Falcon Systems MAX 3",
        ] {
            let parsed = parse(q).unwrap();
            let plain = execute(&parsed, &kg, &topics, &mut trends);
            let resp = execute_view_deadline(
                &parsed,
                &kg.graph,
                &kg.disambiguator,
                &topics,
                Some(&mut trends),
                None,
                &Deadline::none(),
            );
            assert!(!resp.partial, "{q}");
            assert_eq!(format!("{plain:?}"), format!("{:?}", resp.result), "{q}");
        }
    }

    #[test]
    fn expired_deadline_degrades_gracefully_and_counts_per_class() {
        let (kg, topics, mut trends) = session();
        let registry = MetricsRegistry::new();
        let expired = Deadline::expired_now();
        for (q, class) in [
            ("TRENDING LIMIT 5", "trending"),
            ("WHY Apex Robotics -> Falcon Systems LIMIT 2", "why"),
            ("MATCH (Organization)-[acquired]->(Organization)", "match"),
            ("PATHS Apex Robotics TO Falcon Systems MAX 3", "paths"),
        ] {
            let parsed = parse(q).unwrap();
            let resp = execute_view_instrumented_deadline(
                &parsed,
                &kg.graph,
                &kg.disambiguator,
                &topics,
                Some(&mut trends),
                &registry,
                &expired,
            );
            assert!(resp.partial, "{q} should be cut short: {resp:?}");
            // Partial results are valid: the right variant, just not
            // exhaustive.
            match (&parsed, &resp.result) {
                (Query::Trending { .. }, QueryResult::Trending(items)) => {
                    assert!(items.is_empty())
                }
                (Query::Why { .. }, QueryResult::Paths(_)) => {}
                (Query::Match { .. }, QueryResult::Matches { total, .. }) => {
                    assert_eq!(*total, 0)
                }
                (Query::Paths { .. }, QueryResult::Paths(_)) => {}
                other => panic!("wrong variant: {other:?}"),
            }
            assert_eq!(
                registry.counter_value("nous_query_deadline_exceeded_total", &[("class", class)]),
                Some(1),
                "class {class}"
            );
        }
        // Bounded-by-degree classes never go partial, even expired.
        for q in ["tell me about Apex Robotics", "TIMELINE Apex Robotics"] {
            let parsed = parse(q).unwrap();
            let resp = execute_view_deadline(
                &parsed,
                &kg.graph,
                &kg.disambiguator,
                &topics,
                None,
                Some(&registry),
                &expired,
            );
            assert!(!resp.partial, "{q}");
        }
    }

    #[test]
    fn generous_deadline_returns_complete_results() {
        let (kg, topics, mut trends) = session();
        let parsed = parse("WHY Apex Robotics -> Falcon Systems LIMIT 2").unwrap();
        let plain = execute(&parsed, &kg, &topics, &mut trends);
        let resp = execute_view_deadline(
            &parsed,
            &kg.graph,
            &kg.disambiguator,
            &topics,
            None,
            None,
            &Deadline::within(std::time::Duration::from_secs(60)),
        );
        assert!(!resp.partial);
        assert_eq!(format!("{plain:?}"), format!("{:?}", resp.result));
    }

    #[test]
    fn expired_match_scan_breaks_within_one_poll_interval() {
        // A long single-predicate chain: far more postings than one
        // deadline poll interval (1024). An already-expired deadline must
        // stop the ControlFlow scan at its first poll, not suppress the
        // callback while walking every remaining posting.
        let mut kg = KnowledgeGraph::new();
        let n = 2600usize;
        let mut prev = kg.create_entity("E0", EntityType::Organization);
        for i in 1..=n {
            let v = kg.create_entity(&format!("E{i}"), EntityType::Organization);
            kg.add_extracted_fact(prev, "linksTo", v, i as u64, 0.9, i as u64);
            prev = v;
        }
        let topics = TopicIndex::new(2);
        let registry = MetricsRegistry::new();
        let tracer = registry.enable_tracing(7, 8, 0);
        let parsed = parse("MATCH (*)-[linksTo]->(*)").unwrap();
        let root = registry.trace("query");
        let trace_id = root.trace_id();
        let ctx = root.context();
        let resp = execute_view_deadline_traced(
            &parsed,
            &kg.graph,
            &kg.disambiguator,
            &topics,
            None,
            Some(&registry),
            &Deadline::expired_now(),
            &ctx,
        );
        drop(root);
        assert!(resp.partial, "{resp:?}");
        let trace = tracer.flight().find(trace_id).expect("trace recorded");
        let scan = trace
            .spans
            .iter()
            .find(|s| s.name == "scan")
            .expect("scan span");
        let seen: usize = scan
            .attr("postings_seen")
            .expect("postings_seen attr")
            .parse()
            .expect("numeric");
        assert!(
            seen <= 1024,
            "expired scan must stop within one poll interval, walked {seen} of {n}"
        );
    }

    #[test]
    fn unknown_entities_report_not_found() {
        assert!(matches!(run("ABOUT Nobody Inc"), QueryResult::NotFound(_)));
        assert!(matches!(
            run("WHY Nobody -> Apex Robotics"),
            QueryResult::NotFound(_)
        ));
        assert!(matches!(
            run("MATCH (Organization)-[zzz]->(Organization)"),
            QueryResult::NotFound(_)
        ));
    }
}
