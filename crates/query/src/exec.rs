//! Query execution against the live system state.

use crate::ast::{Endpoint, Query, QueryResult};
use nous_core::{KnowledgeGraph, SharedSession, TrendMonitor};
use nous_graph::VertexId;
use nous_obs::MetricsRegistry;
use nous_qa::{
    coherent_paths, coherent_paths_instrumented, record_search, PathConstraint, QaConfig,
    TopicIndex,
};
use nous_text::bow::BagOfWords;

fn resolve(kg: &KnowledgeGraph, name: &str) -> Option<VertexId> {
    kg.graph.vertex_id(name).or_else(|| {
        kg.disambiguator
            .resolve(name, &BagOfWords::new(), nous_link::LinkMode::Full)
            .map(|r| VertexId(r.id))
    })
}

fn endpoint_matches(kg: &KnowledgeGraph, ep: &Endpoint, v: VertexId) -> bool {
    match ep {
        Endpoint::Any => true,
        Endpoint::Type(t) => kg.graph.label(v).is_some_and(|l| l.eq_ignore_ascii_case(t)),
        Endpoint::Constant(name) => kg.graph.vertex_name(v).eq_ignore_ascii_case(name),
    }
}

/// The metric label for a query's class (`nous_query_*{class=...}`).
pub fn query_class(q: &Query) -> &'static str {
    match q {
        Query::Trending { .. } => "trending",
        Query::Entity { .. } => "entity",
        Query::Why { .. } => "why",
        Query::Match { .. } => "match",
        Query::Timeline { .. } => "timeline",
        Query::Paths { .. } => "paths",
    }
}

/// Execute a parsed query. `trends` feeds the Trending class; `topics`
/// feeds the Why class. Both are owned by the session, mirroring the
/// paper's long-running demo services.
pub fn execute(
    query: &Query,
    kg: &KnowledgeGraph,
    topics: &TopicIndex,
    trends: &mut TrendMonitor,
) -> QueryResult {
    execute_inner(query, kg, topics, trends, None)
}

/// [`execute`] with telemetry: per-class counts and latency spans
/// (`nous_query_total{class=...}`, `nous_query_seconds{class=...}`), plus
/// `nous_qa_*` search-effort accounting for the path classes.
pub fn execute_instrumented(
    query: &Query,
    kg: &KnowledgeGraph,
    topics: &TopicIndex,
    trends: &mut TrendMonitor,
    registry: &MetricsRegistry,
) -> QueryResult {
    let class = query_class(query);
    registry
        .counter_with(
            "nous_query_total",
            "Queries executed per class",
            &[("class", class)],
        )
        .inc();
    let span = registry.span_with(
        "nous_query_seconds",
        "Query execution wall time per class",
        &[("class", class)],
    );
    let out = execute_inner(query, kg, topics, trends, Some(registry));
    span.stop();
    out
}

/// Execute against a live [`SharedSession`]: one consistent lock
/// acquisition over graph + topics + trend monitor, with telemetry landing
/// in the session's registry — the entry point the demo's query services
/// call per request.
pub fn execute_shared(session: &SharedSession, query: &Query) -> QueryResult {
    let registry = session.metrics().clone();
    session
        .with_all(|kg, topics, trends| execute_instrumented(query, kg, topics, trends, &registry))
}

fn execute_inner(
    query: &Query,
    kg: &KnowledgeGraph,
    topics: &TopicIndex,
    trends: &mut TrendMonitor,
    registry: Option<&MetricsRegistry>,
) -> QueryResult {
    match query {
        Query::Trending { limit } => {
            let mut items: Vec<(String, u32)> = trends
                .trending(kg)
                .into_iter()
                .map(|t| (t.description, t.support))
                .collect();
            items.truncate(*limit);
            QueryResult::Trending(items)
        }

        Query::Entity { name } => match kg.entity_summary(name) {
            None => QueryResult::NotFound(name.clone()),
            Some(s) => QueryResult::Entity {
                name: s.name,
                entity_type: s.entity_type,
                degree: s.degree,
                facts: s
                    .facts
                    .into_iter()
                    .map(|(f, c, _, cur)| (f, c, cur))
                    .collect(),
                neighbors: s.neighbors,
            },
        },

        Query::Why {
            source,
            target,
            via,
            limit,
        } => {
            let Some(src) = resolve(kg, source) else {
                return QueryResult::NotFound(source.clone());
            };
            let Some(dst) = resolve(kg, target) else {
                return QueryResult::NotFound(target.clone());
            };
            let constraint = PathConstraint {
                require_predicate: via.as_deref().and_then(|p| kg.graph.predicate_id(p)),
            };
            if let Some(v) = via {
                if kg.graph.predicate_id(v).is_none() {
                    return QueryResult::NotFound(format!("predicate {v}"));
                }
            }
            let cfg = QaConfig {
                k: *limit,
                ..Default::default()
            };
            let paths = match registry {
                Some(reg) => {
                    coherent_paths_instrumented(&kg.graph, topics, src, dst, &constraint, &cfg, reg)
                }
                None => coherent_paths(&kg.graph, topics, src, dst, &constraint, &cfg),
            };
            QueryResult::Paths(
                paths
                    .into_iter()
                    .map(|p| (p.render(&kg.graph), p.score))
                    .collect(),
            )
        }

        Query::Match {
            src,
            predicate,
            dst,
            limit,
            since,
            until,
        } => {
            let Some(pred) = kg.graph.predicate_id(predicate) else {
                return QueryResult::NotFound(format!("predicate {predicate}"));
            };
            let mut total = 0usize;
            let mut sample = Vec::new();
            for (_, e) in kg.graph.iter_edges() {
                if e.pred != pred
                    || !endpoint_matches(kg, src, e.src)
                    || !endpoint_matches(kg, dst, e.dst)
                    || since.is_some_and(|d| e.at < d)
                    || until.is_some_and(|d| e.at > d)
                {
                    continue;
                }
                total += 1;
                if sample.len() < *limit {
                    sample.push(format!(
                        "{} -[{}]-> {} ({:.2}, {})",
                        kg.graph.vertex_name(e.src),
                        predicate,
                        kg.graph.vertex_name(e.dst),
                        e.confidence,
                        e.provenance.tag(),
                    ));
                }
            }
            QueryResult::Matches { total, sample }
        }

        Query::Timeline { name, limit } => {
            let Some(v) = resolve(kg, name) else {
                return QueryResult::NotFound(name.clone());
            };
            let mut items: Vec<(u64, String, f32)> = kg
                .graph
                .out_edges(v)
                .map(|adj| (adj, true))
                .chain(kg.graph.in_edges(v).map(|adj| (adj, false)))
                .map(|(adj, outgoing)| {
                    let e = kg.graph.edge(adj.edge);
                    let (from, to) = if outgoing {
                        (v, adj.other)
                    } else {
                        (adj.other, v)
                    };
                    let text = format!(
                        "{} -[{}]-> {}",
                        kg.graph.vertex_name(from),
                        kg.graph.predicate_name(adj.pred),
                        kg.graph.vertex_name(to)
                    );
                    (e.at, text, e.confidence)
                })
                .collect();
            items.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            // Keep the *latest* `limit` events (still rendered in
            // ascending order): a busy entity's timeline should show its
            // recent activity, not its oldest.
            if items.len() > *limit {
                items.drain(..items.len() - *limit);
            }
            QueryResult::Timeline(items)
        }

        Query::Paths {
            source,
            target,
            max_hops,
            limit,
        } => {
            let Some(src) = resolve(kg, source) else {
                return QueryResult::NotFound(source.clone());
            };
            let Some(dst) = resolve(kg, target) else {
                return QueryResult::NotFound(target.clone());
            };
            let cfg = QaConfig {
                k: *limit,
                max_hops: *max_hops,
                ..Default::default()
            };
            let (paths, stats) = nous_qa::baselines::shortest_paths_with_stats(
                &kg.graph,
                src,
                dst,
                &PathConstraint::default(),
                &cfg,
            );
            if let Some(reg) = registry {
                record_search(reg, &stats);
            }
            QueryResult::Paths(
                paths
                    .into_iter()
                    .map(|p| (p.render(&kg.graph), p.score))
                    .collect(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use nous_graph::window::WindowKind;
    use nous_mining::{EvictionStrategy, MinerConfig};
    use nous_text::ner::EntityType;

    /// A small hand-built system: 3 companies in a motif, topics assigned.
    fn session() -> (KnowledgeGraph, TopicIndex, TrendMonitor) {
        let mut kg = KnowledgeGraph::new();
        let a = kg.create_entity("Apex Robotics", EntityType::Organization);
        let b = kg.create_entity("Condor Labs", EntityType::Organization);
        let c = kg.create_entity("Falcon Systems", EntityType::Organization);
        let hub = kg.create_entity("Mega Hub", EntityType::Organization);
        for i in 0..3 {
            // Repeat the acquisition motif so it trends.
            let x = kg.create_entity(&format!("X{i}"), EntityType::Organization);
            let y = kg.create_entity(&format!("Y{i}"), EntityType::Organization);
            kg.add_extracted_fact(x, "acquired", y, i, 0.9, i);
        }
        kg.add_extracted_fact(a, "partneredWith", b, 10, 0.9, 9);
        kg.add_extracted_fact(b, "investedIn", c, 11, 0.8, 9);
        kg.add_extracted_fact(a, "competesWith", hub, 12, 0.7, 9);
        kg.add_extracted_fact(hub, "partneredWith", c, 13, 0.7, 9);

        let mut topics = TopicIndex::new(2);
        let t = |v: VertexId, x: f64| (v, vec![x, 1.0 - x]);
        for (v, d) in [t(a, 0.9), t(b, 0.85), t(c, 0.9), t(hub, 0.1)] {
            let mut idx_d = d;
            let sum: f64 = idx_d.iter().sum();
            idx_d.iter_mut().for_each(|x| *x /= sum);
            topics.set(v, idx_d);
        }

        let mut trends = TrendMonitor::new(
            WindowKind::Count { n: 100 },
            MinerConfig {
                k_max: 1,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        );
        trends.observe(&kg);
        (kg, topics, trends)
    }

    fn run(q: &str) -> QueryResult {
        let (kg, topics, mut trends) = session();
        execute(&parse(q).unwrap(), &kg, &topics, &mut trends)
    }

    #[test]
    fn trending_query_reports_motif() {
        let r = run("TRENDING LIMIT 5");
        let QueryResult::Trending(items) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert!(
            items.iter().any(|(d, s)| d.contains("acquired") && *s == 3),
            "{items:?}"
        );
    }

    #[test]
    fn entity_query() {
        let r = run("tell me about Apex Robotics");
        let QueryResult::Entity {
            name,
            degree,
            facts,
            ..
        } = r
        else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(name, "Apex Robotics");
        assert_eq!(degree, 2);
        assert!(facts.iter().any(|(f, _, _)| f.contains("partneredWith")));
    }

    #[test]
    fn why_query_prefers_coherent_path() {
        let r = run("WHY Apex Robotics -> Falcon Systems LIMIT 2");
        let QueryResult::Paths(paths) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert!(!paths.is_empty());
        assert!(
            paths[0].0.contains("Condor Labs"),
            "coherent path through Condor Labs should rank first: {paths:?}"
        );
    }

    #[test]
    fn why_with_predicate_constraint() {
        let r = run("WHY Apex Robotics -> Falcon Systems VIA investedIn");
        let QueryResult::Paths(paths) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert!(paths.iter().all(|(p, _)| p.contains("investedIn")));
        let r2 = run("WHY Apex Robotics -> Falcon Systems VIA noSuchPred");
        assert!(matches!(r2, QueryResult::NotFound(_)));
    }

    #[test]
    fn match_query_counts_and_samples() {
        let r = run("MATCH (Organization)-[acquired]->(Organization) LIMIT 2");
        let QueryResult::Matches { total, sample } = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(total, 3);
        assert_eq!(sample.len(), 2);
        let r2 = run("MATCH (*)-[acquired]->(\"Y0\")");
        let QueryResult::Matches { total, .. } = r2 else {
            panic!()
        };
        assert_eq!(total, 1);
    }

    #[test]
    fn paths_query_enumerates() {
        let r = run("PATHS Apex Robotics TO Falcon Systems MAX 3");
        let QueryResult::Paths(paths) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(paths.len(), 2, "via Condor Labs and via Mega Hub");
    }

    #[test]
    fn timeline_is_chronological() {
        let r = run("TIMELINE Apex Robotics");
        let QueryResult::Timeline(items) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(items.len(), 2, "partneredWith(t=10) and competesWith(t=12)");
        assert!(items.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(items[0].0, 10);
        assert!(items[0].1.contains("partneredWith"));
        // Natural-language phrasing parses to the same class.
        let r2 = run("what happened to Condor Labs");
        assert!(matches!(r2, QueryResult::Timeline(_)));
        assert!(matches!(run("TIMELINE Nobody"), QueryResult::NotFound(_)));
    }

    #[test]
    fn timeline_limit_keeps_latest_events() {
        // Apex Robotics has events at t=10 (partneredWith) and t=12
        // (competesWith); LIMIT 1 must surface the *recent* one, still
        // in ascending render order.
        let r = run("TIMELINE Apex Robotics LIMIT 1");
        let QueryResult::Timeline(items) = r else {
            panic!("wrong variant: {r:?}")
        };
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, 12, "kept the latest event: {items:?}");
        assert!(items[0].1.contains("competesWith"), "{items:?}");
    }

    #[test]
    fn match_temporal_window_filters_edges() {
        // Acquisition edges in session() carry timestamps 0, 1, 2.
        let r = run("MATCH (*)-[acquired]->(*) SINCE 1 UNTIL 2");
        let QueryResult::Matches { total, .. } = r else {
            panic!("{r:?}")
        };
        assert_eq!(total, 2);
        let r2 = run("MATCH (*)-[acquired]->(*) SINCE 99");
        let QueryResult::Matches { total, .. } = r2 else {
            panic!()
        };
        assert_eq!(total, 0);
    }

    #[test]
    fn instrumented_execution_counts_query_classes() {
        let (kg, topics, mut trends) = session();
        let registry = MetricsRegistry::new();
        for q in [
            "TRENDING LIMIT 5",
            "tell me about Apex Robotics",
            "WHY Apex Robotics -> Falcon Systems LIMIT 2",
            "WHY Apex Robotics -> Falcon Systems LIMIT 1",
            "MATCH (Organization)-[acquired]->(Organization) LIMIT 2",
            "TIMELINE Apex Robotics",
            "PATHS Apex Robotics TO Falcon Systems MAX 3",
        ] {
            execute_instrumented(&parse(q).unwrap(), &kg, &topics, &mut trends, &registry);
        }
        for (class, n) in [
            ("trending", 1),
            ("entity", 1),
            ("why", 2),
            ("match", 1),
            ("timeline", 1),
            ("paths", 1),
        ] {
            assert_eq!(
                registry.counter_value("nous_query_total", &[("class", class)]),
                Some(n),
                "class {class}"
            );
        }
        // Both WHY searches and the PATHS baseline land in the qa family.
        assert_eq!(
            registry.counter_value("nous_qa_searches_total", &[]),
            Some(3)
        );
        let text = registry.render_prometheus();
        assert!(
            text.contains("nous_query_seconds_count{class=\"why\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("nous_query_seconds_count{class=\"paths\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn instrumented_results_match_plain_execution() {
        let (kg, topics, mut trends) = session();
        let registry = MetricsRegistry::new();
        for q in [
            "WHY Apex Robotics -> Falcon Systems LIMIT 2",
            "PATHS Apex Robotics TO Falcon Systems MAX 3",
            "TRENDING LIMIT 5",
        ] {
            let parsed = parse(q).unwrap();
            let plain = execute(&parsed, &kg, &topics, &mut trends);
            let inst = execute_instrumented(&parsed, &kg, &topics, &mut trends, &registry);
            assert_eq!(format!("{plain:?}"), format!("{inst:?}"), "{q}");
        }
    }

    #[test]
    fn unknown_entities_report_not_found() {
        assert!(matches!(run("ABOUT Nobody Inc"), QueryResult::NotFound(_)));
        assert!(matches!(
            run("WHY Nobody -> Apex Robotics"),
            QueryResult::NotFound(_)
        ));
        assert!(matches!(
            run("MATCH (Organization)-[zzz]->(Organization)"),
            QueryResult::NotFound(_)
        ));
    }
}
