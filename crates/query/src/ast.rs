//! Query AST and result types.

use serde::{Deserialize, Serialize};

/// A parsed query, one variant per Figure-5 class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Query {
    /// Closed frequent patterns in the current window.
    Trending { limit: usize },
    /// Entity summary ("Tell me about DJI", Figure 6).
    Entity { name: String },
    /// Explanatory why-question: top-K coherent paths.
    Why {
        source: String,
        target: String,
        via: Option<String>,
        limit: usize,
    },
    /// Typed-edge pattern match. Endpoints are either a type label
    /// (`Company`) or a quoted entity constant (`"Apex Robotics"`).
    /// `since`/`until` filter on the edge's logical timestamp — queries on
    /// a *dynamic* KG can scope to a time range (`SINCE 1100 UNTIL 1500`).
    Match {
        src: Endpoint,
        predicate: String,
        dst: Endpoint,
        limit: usize,
        since: Option<u64>,
        until: Option<u64>,
    },
    /// Raw path enumeration between two entities.
    Paths {
        source: String,
        target: String,
        max_hops: usize,
        limit: usize,
    },
    /// Chronological fact history of one entity - the dynamic-KG view of
    /// an entity query ("what happened to X over time").
    Timeline { name: String, limit: usize },
}

/// A MATCH endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// Any entity with this type label.
    Type(String),
    /// A specific entity by name.
    Constant(String),
    /// Wildcard.
    Any,
}

/// A [`QueryResult`] plus its degradation flag.
///
/// `partial` is `true` when a serving deadline expired mid-execution and
/// the result is best-so-far rather than complete: a truncated trending
/// list, the paths found before the search was cut short, or an
/// undercounted `MATCH`. The result is always *valid* — every item in it
/// is real — it may just not be exhaustive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    pub result: QueryResult,
    pub partial: bool,
}

/// Execution result, one variant per query class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryResult {
    Trending(Vec<(String, u32)>),
    Entity {
        name: String,
        entity_type: Option<String>,
        degree: usize,
        /// `(fact, confidence, curated?)`, best-first.
        facts: Vec<(String, f32, bool)>,
        neighbors: Vec<String>,
    },
    /// `(rendered path, score)`; for `Why` the score is coherence
    /// divergence (ascending), for `Paths` it is hop count.
    Paths(Vec<(String, f64)>),
    Matches {
        total: usize,
        /// Rendered sample facts, up to the query limit.
        sample: Vec<String>,
    },
    /// `(day, rendered fact, confidence)` in chronological order.
    Timeline(Vec<(u64, String, f32)>),
    /// Entity (or endpoint) could not be resolved.
    NotFound(String),
}

impl QueryResult {
    /// Human-readable rendering for the CLI (demo feature 4).
    pub fn render(&self) -> String {
        match self {
            QueryResult::Trending(items) => {
                if items.is_empty() {
                    return "no trending patterns in the current window".to_owned();
                }
                items
                    .iter()
                    .map(|(p, s)| format!("[support {s}] {p}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            QueryResult::Entity {
                name,
                entity_type,
                degree,
                facts,
                neighbors,
            } => {
                let mut out = format!(
                    "{name} ({}) — degree {degree}\n",
                    entity_type.as_deref().unwrap_or("unknown type")
                );
                for (f, c, curated) in facts.iter().take(12) {
                    let tag = if *curated { "curated" } else { "extracted" };
                    out.push_str(&format!("  [{c:.2} {tag}] {f}\n"));
                }
                if !neighbors.is_empty() {
                    out.push_str(&format!("  related: {}\n", neighbors.join(", ")));
                }
                out
            }
            QueryResult::Paths(paths) => {
                if paths.is_empty() {
                    return "no connecting path found".to_owned();
                }
                paths
                    .iter()
                    .map(|(p, s)| format!("[{s:.4}] {p}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            QueryResult::Matches { total, sample } => {
                let mut out = format!("{total} matches\n");
                for s in sample {
                    out.push_str(&format!("  {s}\n"));
                }
                out
            }
            QueryResult::Timeline(items) => {
                if items.is_empty() {
                    return "no dated facts".to_owned();
                }
                items
                    .iter()
                    .map(|(day, fact, conf)| format!("day {day:>5} [{conf:.2}] {fact}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            QueryResult::NotFound(what) => format!("not found: {what}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_trending_empty_and_full() {
        assert!(QueryResult::Trending(vec![])
            .render()
            .contains("no trending"));
        let r = QueryResult::Trending(vec![("(A)-[p]->(B)".into(), 5)]);
        assert!(r.render().contains("[support 5]"));
    }

    #[test]
    fn render_entity() {
        let r = QueryResult::Entity {
            name: "DJI".into(),
            entity_type: Some("Company".into()),
            degree: 3,
            facts: vec![("DJI -[isLocatedIn]-> Shenzhen".into(), 0.95, true)],
            neighbors: vec!["Shenzhen".into()],
        };
        let s = r.render();
        assert!(s.contains("DJI (Company)"));
        assert!(s.contains("curated"));
        assert!(s.contains("related: Shenzhen"));
    }

    #[test]
    fn render_not_found() {
        assert_eq!(QueryResult::NotFound("X".into()).render(), "not found: X");
    }

    #[test]
    fn queries_compare_structurally() {
        let q = Query::Why {
            source: "A".into(),
            target: "B".into(),
            via: Some("acquired".into()),
            limit: 3,
        };
        assert_eq!(q.clone(), q);
        assert_ne!(q, Query::Trending { limit: 3 });
    }
}
