//! End-to-end socket tests: a real `TcpListener`, real HTTP/1.1 bytes,
//! and the full admission-control surface — all five query classes,
//! saturating-burst shedding, zero-budget deadlines flagged `partial`,
//! per-tenant rate limits, trace ids resolving in the flight recorder,
//! and hostile Unicode payloads that must produce 4xx/200, never a
//! worker crash.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, SharedSession, TrendMonitor};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::MetricsRegistry;
use nous_qa::TopicIndex;
use nous_serve::{Server, ServerConfig};
use nous_text::ner::EntityType;

/// The exec.rs test motif: 3 companies plus a trending `acquired` motif,
/// topics assigned so WHY/PATHS have coherent paths to rank.
fn fixture() -> (KnowledgeGraph, TopicIndex, TrendMonitor) {
    let mut kg = KnowledgeGraph::new();
    let a = kg.create_entity("Apex Robotics", EntityType::Organization);
    let b = kg.create_entity("Condor Labs", EntityType::Organization);
    let c = kg.create_entity("Falcon Systems", EntityType::Organization);
    for i in 0..3 {
        let x = kg.create_entity(&format!("X{i}"), EntityType::Organization);
        let y = kg.create_entity(&format!("Y{i}"), EntityType::Organization);
        kg.add_extracted_fact(x, "acquired", y, i, 0.9, i);
    }
    kg.add_extracted_fact(a, "partneredWith", b, 10, 0.9, 9);
    kg.add_extracted_fact(b, "investedIn", c, 11, 0.8, 9);

    let mut topics = TopicIndex::new(2);
    for (v, x) in [(a, 0.9), (b, 0.85), (c, 0.9)] {
        let sum = x + (1.0 - x);
        topics.set(v, vec![x / sum, (1.0 - x) / sum]);
    }
    let mut trends = TrendMonitor::new(
        WindowKind::Count { n: 100 },
        MinerConfig {
            k_max: 1,
            min_support: 3,
            eviction: EvictionStrategy::Eager,
        },
    );
    trends.observe(&kg);
    (kg, topics, trends)
}

fn start(cfg: ServerConfig) -> (Server, MetricsRegistry) {
    let registry = MetricsRegistry::new();
    registry.enable_tracing(42, 64, 0);
    let (kg, topics, trends) = fixture();
    let session = Arc::new(SharedSession::with_registry(
        kg,
        topics,
        trends,
        registry.clone(),
    ));
    let pipeline = IngestPipeline::with_registry(PipelineConfig::default(), registry.clone());
    let server = Server::start(session, pipeline, "127.0.0.1:0", cfg).expect("bind");
    (server, registry)
}

/// One-shot HTTP exchange (Connection: close). Returns
/// `(status, headers, body)`.
fn http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n");
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(req.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> (u16, Vec<(String, String)>, String) {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    (status, headers, body.to_owned())
}

fn post_query(
    addr: std::net::SocketAddr,
    query: &str,
    extra: &[(&str, &str)],
) -> (u16, Vec<(String, String)>, String) {
    let body = format!("{{\"query\":{}}}", serde_json::to_string(query).unwrap());
    http(addr, "POST", "/query", extra, body.as_bytes())
}

fn json_field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key).unwrap_or_else(|| panic!("missing {key}"))
}

#[test]
fn five_query_classes_over_real_sockets() {
    let (server, _registry) = start(ServerConfig::default());
    let addr = server.local_addr();

    for (query, marker) in [
        ("TRENDING LIMIT 5", "acquired"),
        ("tell me about Apex Robotics", "Apex Robotics"),
        ("WHY Apex Robotics -> Falcon Systems LIMIT 3", "investedIn"),
        ("MATCH (*)-[acquired]->(*) LIMIT 5", "acquired"),
        ("PATHS Apex Robotics TO Falcon Systems MAX 3", "Condor"),
        ("TIMELINE Apex Robotics LIMIT 5", "partneredWith"),
    ] {
        let (status, headers, body) = post_query(addr, query, &[]);
        assert_eq!(status, 200, "{query}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).expect("json body");
        assert_eq!(
            json_field(&v, "partial"),
            &serde_json::Value::Bool(false),
            "{query} should complete within the default budget"
        );
        let rendered = json_field(&v, "rendered").as_str().unwrap();
        assert!(rendered.contains(marker), "{query}: {rendered}");
        assert!(
            headers.iter().any(|(k, _)| k == "x-nous-trace-id"),
            "every response carries a trace id"
        );
    }

    let (status, _, body) = http(addr, "GET", "/healthz", &[], b"");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _, stats) = http(addr, "GET", "/stats", &[], b"");
    assert_eq!(status, 200);
    assert!(stats.contains("nous_"), "stats snapshot is populated");
    // Unsharded session: no per-shard series pollute the snapshot (the
    // 1-shard /stats surface is byte-compatible with the pre-sharding one).
    assert!(!stats.contains("nous_shard_facts"), "{stats}");
    server.shutdown();
}

#[test]
fn sharded_session_serves_identically_and_exposes_per_shard_stats() {
    let registry = MetricsRegistry::new();
    registry.enable_tracing(42, 64, 0);
    let (kg, topics, trends) = fixture();
    let session = SharedSession::with_registry(kg, topics, trends, registry.clone());
    session.enable_sharding(3);
    let pipeline = IngestPipeline::with_registry(PipelineConfig::default(), registry.clone());
    let server = Server::start(
        Arc::new(session),
        pipeline,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    // Same five classes as the unsharded test: results are served off the
    // composite fan-out/merge view, not the single-graph snapshot.
    for (query, marker) in [
        ("TRENDING LIMIT 5", "acquired"),
        ("tell me about Apex Robotics", "Apex Robotics"),
        ("WHY Apex Robotics -> Falcon Systems LIMIT 3", "investedIn"),
        ("MATCH (*)-[acquired]->(*) LIMIT 5", "acquired"),
        ("PATHS Apex Robotics TO Falcon Systems MAX 3", "Condor"),
        ("TIMELINE Apex Robotics LIMIT 5", "partneredWith"),
    ] {
        let (status, _, body) = post_query(addr, query, &[]);
        assert_eq!(status, 200, "{query}: {body}");
        let v: serde_json::Value = serde_json::from_str(&body).expect("json body");
        let rendered = json_field(&v, "rendered").as_str().unwrap();
        assert!(rendered.contains(marker), "{query}: {rendered}");
    }

    // /stats aggregates the per-shard gauges the fabric publishes.
    let (status, _, stats) = http(addr, "GET", "/stats", &[], b"");
    assert_eq!(status, 200);
    assert!(stats.contains("\"nous_shards\""), "{stats}");
    // Label quotes are JSON-escaped inside the snapshot's metric keys.
    for k in 0..3 {
        assert!(
            stats.contains(&format!("nous_shard_facts{{shard=\\\"{k}\\\"}}")),
            "missing shard {k} facts series in {stats}"
        );
        assert!(
            stats.contains(&format!("nous_shard_snapshot_epoch{{shard=\\\"{k}\\\"}}")),
            "missing shard {k} epoch series in {stats}"
        );
    }
    // Prometheus exposition carries the same labeled families.
    let (status, _, prom) = http(addr, "GET", "/metrics", &[], b"");
    assert_eq!(status, 200);
    assert!(prom.contains("nous_shard_facts{shard=\"0\"}"), "{prom}");
    server.shutdown();
}

#[test]
fn zero_budget_deadline_yields_partial_not_error() {
    let (server, _registry) = start(ServerConfig::default());
    let addr = server.local_addr();
    let (status, _, body) = post_query(
        addr,
        "MATCH (*)-[acquired]->(*) LIMIT 5",
        &[("x-nous-deadline-ms", "0")],
    );
    assert_eq!(status, 200, "{body}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(
        json_field(&v, "partial"),
        &serde_json::Value::Bool(true),
        "expired budget must degrade, not fail: {body}"
    );
    assert_eq!(
        json_field(&v, "deadline_ms"),
        &serde_json::Value::Number(0.0)
    );
    server.shutdown();
}

#[test]
fn unicode_payloads_get_clean_statuses_never_a_crash() {
    let (server, registry) = start(ServerConfig::default());
    let addr = server.local_addr();

    // Unknown Unicode entities: valid parse, NotFound result, 200.
    let (status, _, body) = post_query(addr, "WHY İstanbul -> Ankara LIMIT 3", &[]);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("NotFound"), "{body}");
    // Combining mark in an entity name: still a clean 200.
    let (status, _, _) = post_query(addr, "ABOUT Pe\u{301}rez Industries", &[]);
    assert_eq!(status, 200);
    // Unparseable Unicode soup: 400 with a JSON error, not a hang/crash.
    let (status, _, body) = post_query(addr, "ﬀİß中🦀", &[]);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"), "{body}");
    // Invalid JSON and invalid UTF-8 bodies: 400.
    let (status, _, _) = http(addr, "POST", "/query", &[], b"{not json");
    assert_eq!(status, 400);
    let (status, _, _) = http(addr, "POST", "/query", &[], b"\xff\xfe\x80garbage");
    assert_eq!(status, 400);

    // The pool survived all of it: no panics, health still green.
    let (status, _, _) = http(addr, "GET", "/healthz", &[], b"");
    assert_eq!(status, 200);
    assert_eq!(
        registry
            .counter_value("nous_http_worker_panics_total", &[])
            .unwrap_or(0),
        0,
        "no worker panicked"
    );
    server.shutdown();
}

#[test]
fn saturating_burst_sheds_429_instead_of_hanging() {
    let (server, registry) = start(ServerConfig {
        workers: 1,
        max_in_flight: 2,
        keep_alive: Duration::from_secs(30),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Keep opening idle connections: the first ones pin the worker (1)
    // and the queue (2); once capacity is full the acceptor must refuse
    // inline — a prompt 429, not an unbounded queue. Probing until one
    // is shed keeps the test robust to scheduling (a holder that is
    // merely queued reads nothing before its short timeout).
    let mut holders: Vec<TcpStream> = Vec::new();
    let mut shed_raw: Option<Vec<u8>> = None;
    for _ in 0..10 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        let mut buf = [0u8; 1024];
        match s.read(&mut buf) {
            Ok(n) if n > 0 => {
                let mut raw = buf[..n].to_vec();
                let _ = s.read_to_end(&mut raw);
                shed_raw = Some(raw);
                break;
            }
            _ => holders.push(s), // accepted (worker or queue): nothing to read
        }
    }
    let raw = shed_raw.expect("capacity 3 exhausted within 10 connections");
    let (status, headers, body) = parse_response(&raw);
    assert_eq!(status, 429, "{body}");
    assert!(
        headers.iter().any(|(k, v)| k == "retry-after" && v == "1"),
        "shed responses carry Retry-After: {headers:?}"
    );

    // Release the held capacity; the server drains and serves again.
    drop(holders);
    let (status, _, _) = http(addr, "GET", "/healthz", &[], b"");
    assert_eq!(status, 200);
    assert!(
        registry
            .counter_value("nous_http_shed_total", &[("reason", "queue_full")])
            .unwrap_or(0)
            >= 1,
        "shed counter recorded the refusal"
    );
    server.shutdown();
}

#[test]
fn per_tenant_rate_limits_are_isolated() {
    let (server, _registry) = start(ServerConfig {
        rate_limit_per_sec: 0.001, // effectively no refill within the test
        rate_limit_burst: 1.0,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let (status, _, _) = post_query(addr, "TRENDING", &[("x-nous-tenant", "alice")]);
    assert_eq!(status, 200, "alice's burst token admits one query");
    let (status, headers, _) = post_query(addr, "TRENDING", &[("x-nous-tenant", "alice")]);
    assert_eq!(status, 429, "alice is out of tokens");
    assert!(
        headers.iter().any(|(k, _)| k == "retry-after"),
        "rate-limit responses carry Retry-After"
    );
    let (status, _, _) = post_query(addr, "TRENDING", &[("x-nous-tenant", "bob")]);
    assert_eq!(status, 200, "bob has his own bucket");
    // Telemetry stays reachable for a shed tenant.
    let (status, _, _) = http(addr, "GET", "/healthz", &[("x-nous-tenant", "alice")], b"");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn metrics_exposes_http_families_and_trace_resolves_in_flight_recorder() {
    let (server, registry) = start(ServerConfig::default());
    let addr = server.local_addr();

    let (status, headers, _) = post_query(addr, "TRENDING LIMIT 3", &[]);
    assert_eq!(status, 200);
    let trace_hex = headers
        .iter()
        .find(|(k, _)| k == "x-nous-trace-id")
        .map(|(_, v)| v.clone())
        .expect("trace id header");

    let (status, _, text) = http(addr, "GET", "/metrics", &[], b"");
    assert_eq!(status, 200);
    assert!(text.contains("nous_http_requests_total"), "{text}");
    assert!(
        text.contains("nous_http_request_seconds") && text.contains(r#"route="/query""#),
        "per-route latency histogram is exposed"
    );
    assert!(text.contains("nous_http_in_flight"), "{text}");

    // The wire trace id resolves to a span tree that contains both the
    // HTTP handling and the query execution under it.
    let trace_id = u64::from_str_radix(&trace_hex, 16).expect("hex trace id");
    let tracer = registry.tracer().expect("tracing enabled");
    let record = tracer.flight().find(trace_id).expect("trace recorded");
    assert!(record.spans.iter().any(|s| s.name == "http.request"));
    assert!(record.spans.iter().any(|s| s.name == "query"));
    server.shutdown();
}

#[test]
fn unknown_routes_and_methods_are_refused() {
    let (server, _registry) = start(ServerConfig::default());
    let addr = server.local_addr();
    let (status, _, _) = http(addr, "GET", "/nope", &[], b"");
    assert_eq!(status, 404);
    let (status, _, _) = http(addr, "DELETE", "/query", &[], b"");
    assert_eq!(status, 405);
    let (status, _, _) = http(addr, "POST", "/ingest", &[], b"[]");
    assert_eq!(status, 400, "empty ingest batch is refused");
    server.shutdown();
}

/// Wire-level failpoints: dropped accepts and severed reads must degrade
/// to per-connection errors the client can retry, never take the server
/// down. Gated like every other failpoint in the workspace.
#[cfg(feature = "fault-injection")]
#[test]
fn accept_and_read_faults_degrade_gracefully() {
    use nous_fault::{FaultPlan, SitePlan};
    use nous_serve::{FP_HTTP_ACCEPT, FP_HTTP_READ};

    let faults = FaultPlan::from_seed(7)
        .site(FP_HTTP_ACCEPT, SitePlan::always().with_max_faults(1))
        .site(FP_HTTP_READ, SitePlan::always().with_max_faults(1))
        .arm();
    let (server, _registry) = start(ServerConfig {
        faults,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // First connection: dropped at accept (then the read fault consumes
    // itself on the next served connection). The client just sees EOF.
    let mut first = TcpStream::connect(addr).expect("connect");
    first
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = first.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n");
    let mut raw = Vec::new();
    let _ = first.read_to_end(&mut raw); // EOF or reset — both fine.
    assert!(raw.is_empty(), "faulted accept must not produce a response");

    // Second connection hits the read failpoint: severed, no response.
    let mut second = TcpStream::connect(addr).expect("connect");
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = second.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n");
    let mut raw = Vec::new();
    let _ = second.read_to_end(&mut raw);
    assert!(raw.is_empty(), "severed read must not produce a response");

    // Faults exhausted: the server serves normally again.
    let (status, _, body) = http(addr, "GET", "/healthz", &[], b"");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.shutdown();
}

#[test]
fn stats_exposes_dead_letter_quarantine() {
    let registry = MetricsRegistry::new();
    registry.enable_tracing(42, 64, 0);
    let (kg, topics, trends) = fixture();
    let session = Arc::new(SharedSession::with_registry(
        kg,
        topics,
        trends,
        registry.clone(),
    ));
    let mut pipeline = IngestPipeline::with_registry(PipelineConfig::default(), registry.clone());
    // Park more documents than the /stats tail keeps (16), so the
    // endpoint must report the full count but only the newest ids.
    for doc_id in 0..18u64 {
        pipeline.quarantine(nous_core::QuarantinedDoc {
            doc_id,
            day: doc_id,
            error: format!("synthetic failure {doc_id}"),
        });
    }
    let server =
        Server::start(session, pipeline, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let (status, _, stats) = http(addr, "GET", "/stats", &[], b"");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_str(&stats).expect("/stats stays valid JSON");
    let q = json_field(&v, "quarantine");
    assert_eq!(json_field(q, "count"), &serde_json::Value::Number(18.0));
    let ids: Vec<u64> = json_field(q, "last_doc_ids")
        .as_array()
        .expect("id list")
        .iter()
        .map(|x| x.as_f64().expect("numeric id") as u64)
        .collect();
    assert_eq!(
        ids,
        (2..18).collect::<Vec<u64>>(),
        "newest 16, oldest first"
    );
    // The metric surface is untouched by the splice.
    assert!(stats.contains("nous_"), "metric snapshot still present");
    server.shutdown();
}
