//! Minimal HTTP/1.1 wire handling: enough of RFC 9112 to serve JSON to
//! `curl` and load generators without pulling in an async runtime or an
//! HTTP crate. Requests are parsed off any `BufRead` (unit tests drive
//! byte slices; the server drives a buffered `TcpStream`), with hard
//! caps on every dimension an untrusted peer controls — request-line
//! bytes, header count and size, body size — so a malformed or hostile
//! payload degrades to a 4xx response, never an allocation blow-up or a
//! worker panic.

use std::io::{self, BufRead, Write};

/// Upper bound on the request line (`METHOD /path HTTP/1.1`).
const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Upper bound on a single header line.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// One parsed request. Header names are lowercased at parse time;
/// values keep their original bytes (lossily decoded).
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// `(lowercased-name, value)` in arrival order.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. Each variant maps to exactly one
/// server behaviour, so the connection loop is a `match`, not guesswork.
#[derive(Debug)]
pub enum RecvError {
    /// Clean EOF before the first request byte — the peer is done.
    Closed,
    /// Syntactically invalid request; respond 400 and close.
    Malformed(&'static str),
    /// A size cap tripped; respond 413 and close.
    TooLarge(&'static str),
    /// Socket-level failure mid-read; close without responding.
    Io(io::Error),
}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, capped at `cap` bytes.
/// `Ok(None)` is clean EOF at a line boundary.
fn read_line_capped(
    r: &mut impl BufRead,
    cap: usize,
    what: &'static str,
) -> Result<Option<String>, RecvError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(RecvError::Malformed("eof mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                line.push(byte[0]);
                if line.len() > cap {
                    return Err(RecvError::TooLarge(what));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// Parse one request off the stream. `max_body` caps `Content-Length`;
/// anything larger is refused *before* reading the body, so an oversized
/// upload costs the server one header parse, not `Content-Length` bytes.
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, RecvError> {
    let request_line = match read_line_capped(r, MAX_REQUEST_LINE, "request line")? {
        None => return Err(RecvError::Closed),
        // Be lenient about a stray blank line between keep-alive requests.
        Some(l) if l.is_empty() => match read_line_capped(r, MAX_REQUEST_LINE, "request line")? {
            None => return Err(RecvError::Closed),
            Some(l2) => l2,
        },
        Some(l) => l,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(RecvError::Malformed("missing method"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or(RecvError::Malformed("missing path"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or(RecvError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1") {
        return Err(RecvError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_capped(r, MAX_HEADER_LINE, "header line")?
            .ok_or(RecvError::Malformed("eof in headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RecvError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RecvError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| RecvError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(RecvError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|_| RecvError::Malformed("body shorter than content-length"))?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// One response, built by the handler and flushed by the connection loop.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (`Retry-After`, `x-nous-trace-id`, …).
    pub extra: Vec<(&'static str, String)>,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra: Vec::new(),
        }
    }

    pub fn text(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.as_bytes().to_vec(),
            extra: Vec::new(),
        }
    }

    /// JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\":{}}}",
                serde_json::to_string(message).unwrap_or_else(|_| "\"error\"".into())
            ),
        )
    }

    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.extra.push((name, value));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize onto the wire. `close` controls the `Connection`
    /// header. The whole response is staged into one buffer and written
    /// with a single `write_all`: many small writes on a TCP stream
    /// interleave badly with Nagle + delayed-ACK on the peer (a 40 ms
    /// tax per exchange), and one write avoids it regardless of the
    /// client's socket options.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let mut buf = Vec::with_capacity(256 + self.body.len());
        write!(
            buf,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        )?;
        for (name, value) in &self.extra {
            write!(buf, "{name}: {value}\r\n")?;
        }
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(&self.body);
        w.write_all(&buf)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, RecvError> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_post_with_body_and_headers() {
        let req = parse(
            b"POST /query HTTP/1.1\r\nHost: x\r\nX-Nous-Tenant: alice\r\n\
              Content-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("x-nous-tenant"), Some("alice"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
    }

    #[test]
    fn tolerates_bare_lf_and_blank_line_between_requests() {
        let req = parse(b"\r\nGET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(b"").unwrap_err(), RecvError::Closed));
    }

    #[test]
    fn oversized_body_is_refused_before_reading_it() {
        let err = parse(b"POST /ingest HTTP/1.1\r\nContent-Length: 9999\r\n\r\n").unwrap_err();
        assert!(matches!(err, RecvError::TooLarge("body")));
    }

    #[test]
    fn malformed_lines_are_400_material() {
        assert!(matches!(
            parse(b"GARBAGE\r\n\r\n").unwrap_err(),
            RecvError::Malformed(_)
        ));
        assert!(matches!(
            parse(b"GET / SPDY/99\r\n\r\n").unwrap_err(),
            RecvError::Malformed(_)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err(),
            RecvError::Malformed(_)
        ));
    }

    #[test]
    fn non_utf8_header_bytes_do_not_panic() {
        let raw = b"GET /healthz HTTP/1.1\r\nx-junk: \xff\xfe\x80\r\n\r\n";
        let req = parse(raw).unwrap();
        assert!(req.header("x-junk").is_some());
    }

    #[test]
    fn response_wire_format_round_trips() {
        let mut out = Vec::new();
        Response::json(429, "{}".into())
            .with_header("retry-after", "1".into())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
