//! # nous-serve — the HTTP serving layer over the NOUS snapshot read path
//!
//! The paper's deployment story is a *service*: analysts and dashboards
//! query the live knowledge graph while documents stream in. This crate
//! is that wire surface, built entirely on `std` networking — the read
//! path is a lock-free `Arc<FrozenSnapshot>` load, so a fixed pool of
//! blocking worker threads saturates it without an async runtime.
//!
//! Endpoints:
//!
//! | Route            | Semantics |
//! |------------------|-----------|
//! | `POST /query`    | `{"query": "<text>"}` → any of the five query classes under a per-request [`Deadline`]; the response carries `partial: true` when the budget expired mid-execution (degrade, don't fail). |
//! | `POST /ingest`   | JSON `[Article, …]` micro-batched into the live session; the 200 is sent only after the merge stage — and thus the durable journal, when one is wired — has completed. |
//! | `GET /stats`     | The session's deterministic JSON metrics snapshot. |
//! | `GET /metrics`   | Prometheus text exposition, including the `nous_http_*` serving families. |
//! | `GET /healthz`   | Liveness probe. |
//!
//! Admission control (DESIGN.md §8) is two independent gates:
//!
//! 1. **Bounded in-flight work** — the acceptor hands connections to
//!    workers through a `sync_channel(max_in_flight)`; when it is full
//!    the connection is refused inline with `429` + `Retry-After`
//!    (`nous_http_shed_total{reason="queue_full"}`).
//! 2. **Per-tenant token buckets** — keyed on `x-nous-tenant`, refilled
//!    on the registry clock, shedding with `429` + `Retry-After`
//!    (`reason="rate_limit"`).
//!
//! Request headers: `x-nous-deadline-ms` (query budget, clamped to the
//! server cap), `x-nous-tenant` (rate-limit key). Every response carries
//! `x-nous-trace-id`; with tracing enabled the id resolves in the
//! flight recorder to a span tree that covers both the wire handling
//! and the query execution under it.
//!
//! [`Deadline`]: nous_fault::Deadline

pub mod admission;
pub mod http;
pub mod server;

pub use admission::RateLimiter;
pub use http::{Request, Response};
pub use server::{Server, ServerConfig, FP_HTTP_ACCEPT, FP_HTTP_READ};
