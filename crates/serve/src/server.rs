//! The serving loop: a `TcpListener` acceptor thread feeding a fixed
//! worker pool through a **bounded** rendezvous channel.
//!
//! The channel bound *is* the admission limit: when `max_in_flight`
//! connections are queued or executing, `try_send` fails and the
//! acceptor sheds the connection inline with `429 Too Many Requests` +
//! `Retry-After` — the server degrades by refusing work it cannot serve
//! within its deadline budget, never by queueing unboundedly (DESIGN.md
//! §8). Everything is `std`: no async runtime, because the read path is
//! a lock-free `Arc<FrozenSnapshot>` swap and a handful of blocking
//! threads saturate it long before the accept loop is the bottleneck.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use nous_core::{IngestPipeline, SharedSession};
use nous_corpus::Article;
use nous_fault::{Deadline, Faults};
use nous_obs::{trace_id_hex, HttpMetrics};
use nous_query::{execute_shared_deadline_in, parse, QueryResult};
use serde::{Deserialize, Serialize};

use crate::admission::RateLimiter;
use crate::http::{read_request, RecvError, Request, Response};

/// Failpoint: fire to drop a just-accepted connection (simulates accept
/// backlog loss / immediate peer reset).
pub const FP_HTTP_ACCEPT: &str = "http.accept";
/// Failpoint: fire to sever a connection before reading its next
/// request (simulates a mid-stream socket failure).
pub const FP_HTTP_READ: &str = "http.read";

/// Serving knobs. `Default` is sized for tests and the demo example;
/// production would raise `workers` and `max_in_flight` together.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests (one connection each at a time).
    pub workers: usize,
    /// Bound on queued-plus-executing connections; beyond it the
    /// acceptor sheds with 429.
    pub max_in_flight: usize,
    /// Deadline applied to `/query` when the client sends no
    /// `x-nous-deadline-ms` header.
    pub default_deadline_ms: u64,
    /// Cap on the client-requested deadline (a client cannot buy an
    /// unbounded scan).
    pub max_deadline_ms: u64,
    /// `Content-Length` cap; larger uploads get 413 without being read.
    pub max_body_bytes: usize,
    /// Per-tenant token-bucket refill rate (tokens/second); `<= 0`
    /// disables rate limiting.
    pub rate_limit_per_sec: f64,
    /// Per-tenant token-bucket capacity.
    pub rate_limit_burst: f64,
    /// Idle keep-alive timeout before a worker abandons a connection.
    pub keep_alive: Duration,
    /// Wire-level failpoints (accept/read); disabled by default.
    pub faults: Faults,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_in_flight: 64,
            default_deadline_ms: 250,
            max_deadline_ms: 10_000,
            max_body_bytes: 1 << 20,
            rate_limit_per_sec: 0.0,
            rate_limit_burst: 16.0,
            keep_alive: Duration::from_secs(5),
            faults: Faults::disabled(),
        }
    }
}

/// Wire shape of a `POST /query` body.
#[derive(Debug, Serialize, Deserialize)]
struct QueryBody {
    query: String,
}

/// Wire shape of a `POST /query` response: the [`QueryResponse`]
/// degradation contract plus the rendered text and the deadline that
/// governed execution.
///
/// [`QueryResponse`]: nous_query::QueryResponse
#[derive(Debug, Serialize, Deserialize)]
struct QueryReply {
    partial: bool,
    deadline_ms: u64,
    result: QueryResult,
    rendered: String,
}

struct Shared {
    session: Arc<SharedSession>,
    /// `ingest_batch` needs `&mut IngestPipeline`; serialized ingestion
    /// is the intended shape (one merge stream), queries never touch it.
    pipeline: Mutex<IngestPipeline>,
    limiter: RateLimiter,
    http: HttpMetrics,
    cfg: ServerConfig,
}

/// A running server: acceptor thread + worker pool. Dropping without
/// [`Server::shutdown`] detaches the threads (they die with the
/// process); tests should call `shutdown` for a clean join.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `session`.
    /// Ingestion goes through `pipeline`; wire a durable journal onto it
    /// first and `/ingest` acks become ack-after-durable.
    pub fn start(
        session: Arc<SharedSession>,
        pipeline: IngestPipeline,
        addr: &str,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let http = HttpMetrics::new(session.metrics());
        let shared = Arc::new(Shared {
            session,
            pipeline: Mutex::new(pipeline),
            limiter: RateLimiter::new(cfg.rate_limit_per_sec, cfg.rate_limit_burst),
            http,
            cfg,
        });

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(shared.cfg.max_in_flight.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let stop = Arc::new(AtomicBool::new(false));

        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nous-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("nous-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &tx, &stop))
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain queued connections, join all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The acceptor owned the only sender; once it exits, workers see
        // the channel disconnect after draining what was queued.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    shared: &Shared,
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    stop: &Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Failpoint: a connection lost between accept and hand-off. The
        // peer sees a reset; the server must carry on serving.
        if shared.cfg.faults.hit(FP_HTTP_ACCEPT) {
            drop(stream);
            continue;
        }
        let _ = stream.set_read_timeout(Some(shared.cfg.keep_alive));
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Load shed: the bounded queue is the admission limit.
                // Refuse inline — cheaper than queueing work we cannot
                // serve within any deadline.
                shared.http.shed("queue_full");
                shared.http.requests("/", 429).inc();
                let _ = Response::error(429, "server saturated, retry later")
                    .with_header("retry-after", "1".into())
                    .write_to(&mut stream, true);
                // Drain whatever request bytes already arrived before
                // closing: dropping a socket with unread data sends RST,
                // which can discard the 429 the client is about to read.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                let mut sink = [0u8; 4096];
                for _ in 0..4 {
                    match std::io::Read::read(&mut stream, &mut sink) {
                        Ok(n) if n > 0 => continue,
                        _ => break,
                    }
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Lock only to dequeue; the guard drops before handling.
        let stream = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(s) => s,
            Err(_) => return,
        };
        // A panicking request must cost one connection, not the worker:
        // the pool is fixed-size, so a leaked panic would permanently
        // shrink serving capacity.
        let caught = catch_unwind(AssertUnwindSafe(|| handle_connection(shared, stream)));
        if caught.is_err() {
            shared
                .session
                .metrics()
                .counter(
                    "nous_http_worker_panics_total",
                    "Requests that panicked in a worker (connection dropped, worker kept)",
                )
                .inc();
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        // Failpoint: sever before reading the next request.
        if shared.cfg.faults.hit(FP_HTTP_READ) {
            return;
        }
        let req = match read_request(&mut reader, shared.cfg.max_body_bytes) {
            Ok(r) => r,
            Err(RecvError::Closed) | Err(RecvError::Io(_)) => return,
            Err(RecvError::Malformed(what)) => {
                let resp = Response::error(400, &format!("malformed request: {what}"));
                shared.http.requests("(malformed)", 400).inc();
                let _ = resp.write_to(&mut writer, true);
                return;
            }
            Err(RecvError::TooLarge(what)) => {
                let resp = Response::error(413, &format!("request too large: {what}"));
                shared.http.requests("(malformed)", 413).inc();
                let _ = resp.write_to(&mut writer, true);
                return;
            }
        };
        let close = req.wants_close();
        let registry = shared.session.metrics();
        let t0 = registry.now_nanos();
        shared.http.in_flight.add(1);
        let (resp, route, trace_id) = handle_request(shared, &req);
        shared.http.in_flight.add(-1);
        shared.http.observe(
            route,
            resp.status,
            registry.now_nanos().saturating_sub(t0),
            trace_id,
        );
        if resp.write_to(&mut writer, close).is_err() || close {
            return;
        }
    }
}

/// Route and execute one request. Returns the response, the canonical
/// route label for metrics, and the request trace id (0 when tracing is
/// off).
fn handle_request(shared: &Shared, req: &Request) -> (Response, &'static str, u64) {
    let registry = shared.session.metrics();
    let mut root = registry.trace("http.request");
    let trace_id = root.trace_id();
    let route: &'static str = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => "/healthz",
        ("GET", "/stats") => "/stats",
        ("GET", "/metrics") => "/metrics",
        ("POST", "/query") => "/query",
        ("POST", "/ingest") => "/ingest",
        (_, "/healthz" | "/stats" | "/metrics" | "/query" | "/ingest") => "(wrong-method)",
        _ => "(unknown)",
    };
    root.attr("route", route);
    let tenant = req
        .header("x-nous-tenant")
        .unwrap_or("anonymous")
        .to_owned();
    root.attr("tenant", tenant.clone());

    // Per-tenant rate limit guards the two endpoints that do real work;
    // health and telemetry stay reachable from a saturated tenant.
    if matches!(route, "/query" | "/ingest") {
        if let Err(retry_after) = shared.limiter.admit(&tenant, registry.now_nanos()) {
            shared.http.shed("rate_limit");
            root.attr("status", 429u64);
            root.finish();
            let resp = Response::error(429, "tenant rate limit exceeded")
                .with_header("retry-after", retry_after.to_string())
                .with_header("x-nous-trace-id", trace_id_hex(trace_id));
            return (resp, route, trace_id);
        }
    }

    let resp = match route {
        "/healthz" => Response::text(200, "ok\n"),
        "/stats" => Response::json(200, stats_with_quarantine(shared)),
        "/metrics" => {
            let mut r = Response::text(200, &registry.render_prometheus());
            r.content_type = "text/plain; version=0.0.4";
            r
        }
        "/query" => handle_query(shared, req, &root),
        "/ingest" => handle_ingest(shared, req, &root),
        "(wrong-method)" => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    };
    root.attr("status", resp.status as u64);
    root.finish();
    let resp = resp.with_header("x-nous-trace-id", trace_id_hex(trace_id));
    (resp, route, trace_id)
}

/// How many of the most recent quarantined doc ids `/stats` exposes.
const QUARANTINE_TAIL: usize = 16;

/// The session's metric snapshot with the pipeline's dead-letter
/// quarantine spliced in as one extra top-level key: the total parked
/// count plus the ids of the most recent [`QUARANTINE_TAIL`] parked
/// documents, oldest-first. The metric snapshot itself is reproduced
/// byte-for-byte, so existing scrapers keep parsing.
fn stats_with_quarantine(shared: &Shared) -> String {
    let (count, newest_first) = {
        let pipeline = shared.pipeline.lock().unwrap_or_else(|e| e.into_inner());
        let entries = pipeline.dead_letters().entries();
        let tail: Vec<u64> = entries
            .iter()
            .rev()
            .take(QUARANTINE_TAIL)
            .map(|q| q.doc_id)
            .collect();
        (entries.len(), tail)
    };
    let ids: Vec<String> = newest_first.iter().rev().map(u64::to_string).collect();
    let section = format!(
        "\"quarantine\":{{\"count\":{count},\"last_doc_ids\":[{}]}}",
        ids.join(",")
    );
    let snap = shared.session.stats_snapshot();
    match snap.strip_prefix('{') {
        Some("}") => format!("{{{section}}}"),
        Some(rest) => format!("{{{section},{rest}"),
        None => snap, // non-object snapshot: serve it untouched
    }
}

fn handle_query(shared: &Shared, req: &Request, root: &nous_obs::ActiveSpan) -> Response {
    let body: QueryBody = match serde_json::from_slice(&req.body) {
        Ok(b) => b,
        Err(e) => return Response::error(400, &format!("invalid JSON body: {e:?}")),
    };
    let query = match parse(&body.query) {
        Ok(q) => q,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let deadline_ms = match req.header("x-nous-deadline-ms") {
        None => shared.cfg.default_deadline_ms,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => ms.min(shared.cfg.max_deadline_ms),
            Err(_) => return Response::error(400, "x-nous-deadline-ms must be an integer"),
        },
    };
    // A zero budget is "already expired": the query still returns a
    // valid (if empty-ish) result flagged partial — the cheapest way for
    // a client or test to exercise the degradation path end to end.
    let deadline = if deadline_ms == 0 {
        Deadline::expired_now()
    } else {
        Deadline::within(Duration::from_millis(deadline_ms))
    };
    let out = execute_shared_deadline_in(&shared.session, &query, &deadline, &root.context());
    let reply = QueryReply {
        partial: out.partial,
        deadline_ms,
        rendered: out.result.render(),
        result: out.result,
    };
    match serde_json::to_string(&reply) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialization failed: {e:?}")),
    }
}

fn handle_ingest(shared: &Shared, req: &Request, root: &nous_obs::ActiveSpan) -> Response {
    let articles: Vec<Article> = match serde_json::from_slice(&req.body) {
        Ok(a) => a,
        Err(e) => return Response::error(400, &format!("invalid article batch: {e:?}")),
    };
    let _ = root;
    if articles.is_empty() {
        return Response::error(400, "empty article batch");
    }
    // `ingest_batch` writes through the pipeline's journal synchronously
    // during the merge stage, so by the time it returns every admitted
    // fact has cleared the durable journal (and its ack hook has fired).
    // Responding 200 here is therefore an ack-after-durable, not an
    // ack-on-receipt.
    let report = {
        let mut pipeline = shared.pipeline.lock().unwrap_or_else(|e| e.into_inner());
        shared.session.ingest_batch(&mut pipeline, &articles)
    };
    match serde_json::to_string(&report) {
        Ok(json) => Response::json(200, json),
        Err(e) => Response::error(500, &format!("serialization failed: {e:?}")),
    }
}
