//! Admission control: per-tenant token buckets.
//!
//! The *queue* half of admission control (bounded in-flight work, shed
//! with 429 when full) lives in the server's `sync_channel` — the
//! channel's capacity *is* the admission limit, so there is no separate
//! counter to keep in sync. This module owns the other half: per-tenant
//! token buckets keyed on the `x-nous-tenant` header, refilled on a
//! nanosecond clock supplied by the caller. Time is injected (the
//! server passes `MetricsRegistry::now_nanos()`), so tests drive the
//! limiter with a `ManualClock` and the refill math is deterministic.

use std::collections::HashMap;
use std::sync::Mutex;

const NANOS_PER_SEC: f64 = 1e9;

struct Bucket {
    tokens: f64,
    last_nanos: u64,
}

/// Classic token bucket per tenant: capacity `burst`, refill
/// `per_sec` tokens/second, one token per request.
pub struct RateLimiter {
    per_sec: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// `per_sec <= 0` disables limiting entirely (every check passes).
    pub fn new(per_sec: f64, burst: f64) -> Self {
        Self {
            per_sec,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Try to admit one request for `tenant` at time `now_nanos`.
    /// `Err(retry_after_secs)` means the bucket is empty; the value is
    /// the ceiling of the wait until one token exists — exactly what
    /// belongs in a `Retry-After` header.
    pub fn admit(&self, tenant: &str, now_nanos: u64) -> Result<(), u64> {
        if self.per_sec <= 0.0 {
            return Ok(());
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(tenant.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            last_nanos: now_nanos,
        });
        let elapsed = now_nanos.saturating_sub(bucket.last_nanos) as f64 / NANOS_PER_SEC;
        bucket.tokens = (bucket.tokens + elapsed * self.per_sec).min(self.burst);
        bucket.last_nanos = now_nanos;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait_secs = (1.0 - bucket.tokens) / self.per_sec;
            Err(wait_secs.ceil().max(1.0) as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn burst_then_refill() {
        let rl = RateLimiter::new(2.0, 3.0);
        // Burst of 3 admits, then empty.
        assert!(rl.admit("a", 0).is_ok());
        assert!(rl.admit("a", 0).is_ok());
        assert!(rl.admit("a", 0).is_ok());
        let retry = rl.admit("a", 0).unwrap_err();
        assert_eq!(retry, 1, "ceil(0.5s wait at 2 tokens/s)");
        // Half a second refills one token at 2/s.
        assert!(rl.admit("a", SEC / 2).is_ok());
        assert!(rl.admit("a", SEC / 2).is_err());
    }

    #[test]
    fn tenants_are_isolated() {
        let rl = RateLimiter::new(1.0, 1.0);
        assert!(rl.admit("a", 0).is_ok());
        assert!(rl.admit("a", 0).is_err(), "a exhausted its bucket");
        assert!(rl.admit("b", 0).is_ok(), "b has its own bucket");
    }

    #[test]
    fn zero_rate_disables_limiting() {
        let rl = RateLimiter::new(0.0, 1.0);
        for _ in 0..100 {
            assert!(rl.admit("a", 0).is_ok());
        }
    }

    #[test]
    fn clock_going_backwards_is_tolerated() {
        let rl = RateLimiter::new(1.0, 1.0);
        assert!(rl.admit("a", 5 * SEC).is_ok());
        // Earlier timestamp: elapsed saturates to 0, no refill, no panic.
        assert!(rl.admit("a", 0).is_err());
    }
}
