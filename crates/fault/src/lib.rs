//! Deterministic fault injection and degradation budgets.
//!
//! The NOUS demo premise is a pipeline that *never stops*: ingestion,
//! fusion and query serving run continuously, so torn fsyncs, panicking
//! extraction workers and slow queries are normal operating conditions,
//! not exceptional ones. This crate makes those conditions reproducible:
//!
//! - [`FaultPlan`] — a replayable description of which failpoints fire,
//!   derived entirely from a `u64` seed plus per-site probability /
//!   schedule configuration. Two runs with the same plan observe the
//!   same faults at the same hit indices.
//! - [`Faults`] — the armed, thread-safe handle threaded through the
//!   layers that can fail (WAL, checkpoint writer, extraction workers).
//!   Sites are named strings; unconfigured sites never fire.
//! - [`Deadline`] — a wall-clock budget for query serving. Unlike the
//!   failpoints it is *always* compiled: expiring a deadline is graceful
//!   degradation (return best-so-far, flag `partial`), not an injected
//!   fault.
//!
//! # Determinism
//!
//! A site decision is a pure function of `(plan seed, site name, n)`
//! where `n` is either the site's hit index (ordinal sites — WAL
//! appends, which happen on the single-threaded merge path) or a
//! caller-supplied key (keyed sites — e.g. a document id, so the
//! decision is independent of which worker thread processes the
//! document and in what order). [`FaultPlan::would_fire`] /
//! [`FaultPlan::would_fire_keyed`] expose the same decision function
//! purely, so tests can predict exactly which documents a plan poisons.
//!
//! # Feature gate
//!
//! With the `fault-injection` cargo feature disabled (the default),
//! [`Faults`] is a zero-sized type and [`Faults::hit`] /
//! [`Faults::io_error`] are `#[inline(always)]` constants — the
//! instrumented hot paths pay nothing. [`Deadline`] is not feature
//! gated.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-injection")]
use std::sync::atomic::{AtomicU64, Ordering};

/// The `io::ErrorKind` used for injected I/O errors.
pub const INJECTED_KIND: io::ErrorKind = io::ErrorKind::Other;

/// Marker embedded in injected error messages so logs and tests can
/// distinguish injected faults from organic ones.
pub const INJECTED_TAG: &str = "injected fault";

// ---------------------------------------------------------------------------
// Deterministic decision function
// ---------------------------------------------------------------------------

/// FNV-1a over the site name; stable across runs and platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a full-avalanche mix of one 64-bit word.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map `(seed, site, n)` to a uniform value in `[0, 1)`.
fn unit_draw(seed: u64, site_hash: u64, n: u64) -> f64 {
    let mixed = splitmix64(seed ^ site_hash.rotate_left(17) ^ splitmix64(n));
    // Top 53 bits -> f64 mantissa; uniform in [0, 1).
    (mixed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// Per-site fault configuration: when should this failpoint fire?
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SitePlan {
    /// Probability in `[0, 1]` that any given hit (or key) fires,
    /// decided deterministically from the plan seed.
    pub probability: f64,
    /// Explicit hit indices (0-based) or keys that always fire,
    /// regardless of probability.
    pub schedule: Vec<u64>,
    /// Stop injecting after this many faults at this site
    /// (`None` = unbounded). Only enforced by the armed handle; the
    /// pure preview functions ignore it.
    pub max_faults: Option<u64>,
}

impl SitePlan {
    /// Fire each hit independently with probability `p`.
    pub fn probability(p: f64) -> Self {
        Self {
            probability: p,
            ..Self::default()
        }
    }

    /// Fire on every hit — shorthand for `probability(1.0)`. Handy for
    /// tests that want a deterministic failure on the first hit of a
    /// site (e.g. refusing an accepted HTTP connection).
    pub fn always() -> Self {
        Self::probability(1.0)
    }

    /// Fire exactly at the listed 0-based hit indices (or keys).
    pub fn schedule(hits: impl Into<Vec<u64>>) -> Self {
        Self {
            schedule: hits.into(),
            ..Self::default()
        }
    }

    /// Cap the number of faults this site may inject.
    pub fn with_max_faults(mut self, n: u64) -> Self {
        self.max_faults = Some(n);
        self
    }

    /// Pure decision for hit/key `n` under `seed` at `site` —
    /// ignores `max_faults` (which requires runtime state).
    fn decides(&self, seed: u64, site_hash: u64, n: u64) -> bool {
        if self.schedule.contains(&n) {
            return true;
        }
        self.probability > 0.0 && unit_draw(seed, site_hash, n) < self.probability
    }
}

/// A replayable fault schedule: a seed plus per-site plans.
///
/// The plan itself is inert data; [`FaultPlan::arm`] produces the
/// thread-safe [`Faults`] handle the instrumented layers consult.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    sites: BTreeMap<String, SitePlan>,
}

impl FaultPlan {
    /// An empty plan (no sites fire) under `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// The seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Add (or replace) a site's plan. Builder-style.
    pub fn site(mut self, name: &str, plan: SitePlan) -> Self {
        self.sites.insert(name.to_owned(), plan);
        self
    }

    /// Pure preview: would ordinal hit `n` at `site` fire?
    /// (Ignores `max_faults`.)
    pub fn would_fire(&self, site: &str, n: u64) -> bool {
        self.sites
            .get(site)
            .map(|p| p.decides(self.seed, fnv1a64(site.as_bytes()), n))
            .unwrap_or(false)
    }

    /// Pure preview for keyed sites: would `key` at `site` fire?
    /// (Ignores `max_faults`.)
    pub fn would_fire_keyed(&self, site: &str, key: u64) -> bool {
        self.would_fire(site, key)
    }

    /// Arm the plan into the handle the instrumented layers consult.
    ///
    /// With the `fault-injection` feature disabled this returns the
    /// same inert handle as [`Faults::disabled`].
    pub fn arm(self) -> Faults {
        #[cfg(feature = "fault-injection")]
        {
            let sites = self
                .sites
                .into_iter()
                .map(|(name, plan)| {
                    let hash = fnv1a64(name.as_bytes());
                    (
                        name,
                        SiteState {
                            plan,
                            hash,
                            hits: AtomicU64::new(0),
                            injected: AtomicU64::new(0),
                        },
                    )
                })
                .collect();
            Faults {
                inner: Some(Arc::new(Inner {
                    seed: self.seed,
                    sites,
                })),
                blackbox: None,
            }
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            Faults::disabled()
        }
    }
}

// ---------------------------------------------------------------------------
// Armed handle
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-injection")]
#[derive(Debug)]
struct SiteState {
    plan: SitePlan,
    hash: u64,
    hits: AtomicU64,
    injected: AtomicU64,
}

#[cfg(feature = "fault-injection")]
#[derive(Debug)]
struct Inner {
    seed: u64,
    sites: BTreeMap<String, SiteState>,
}

#[cfg(feature = "fault-injection")]
impl SiteState {
    fn fire(&self, seed: u64, n: u64) -> bool {
        if !self.plan.decides(seed, self.hash, n) {
            return false;
        }
        if let Some(cap) = self.plan.max_faults {
            // Reserve a slot; back out if the cap is already spent.
            if self.injected.fetch_add(1, Ordering::Relaxed) >= cap {
                self.injected.fetch_sub(1, Ordering::Relaxed);
                return false;
            }
        } else {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        true
    }
}

/// A black-box dump callback: called with a human-readable reason when
/// the system crosses a degradation boundary (WAL → memory-only mode,
/// document quarantine, failed compaction). Typically
/// `Tracer::blackbox_hook` from `nous-obs`, which snapshots the flight
/// recorder to disk.
pub type BlackboxHook = Arc<dyn Fn(&str) + Send + Sync + 'static>;

/// Thread-safe failpoint handle. Cheap to clone; clones share state.
///
/// With the `fault-injection` feature disabled the failpoint checks are
/// inlined constants — the handle then only carries the black-box dump
/// hook, which is *not* feature gated: degradation events worth a dump
/// happen organically, not just under injection.
#[derive(Clone, Default)]
pub struct Faults {
    #[cfg(feature = "fault-injection")]
    inner: Option<Arc<Inner>>,
    blackbox: Option<BlackboxHook>,
}

impl fmt::Debug for Faults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("Faults");
        d.field("armed", &self.is_armed());
        d.field("blackbox", &self.blackbox.is_some());
        d.finish()
    }
}

impl Faults {
    /// A handle that never fires (also what unarmed code paths use).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Attach a black-box dump hook. Builder-style; clones taken *after*
    /// this call share the hook, so attach it before threading the
    /// handle through the stack.
    pub fn with_blackbox(mut self, hook: BlackboxHook) -> Self {
        self.blackbox = Some(hook);
        self
    }

    pub fn has_blackbox(&self) -> bool {
        self.blackbox.is_some()
    }

    /// Fire the black-box hook, if attached. Always compiled — callers
    /// invoke it at degradation boundaries regardless of whether the
    /// trigger was injected or organic.
    pub fn blackbox(&self, reason: &str) {
        if let Some(hook) = &self.blackbox {
            hook(reason);
        }
    }

    /// Whether this handle can ever inject a fault.
    #[cfg(feature = "fault-injection")]
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle can ever inject a fault.
    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    pub fn is_armed(&self) -> bool {
        false
    }

    /// Ordinal failpoint: the `n`-th call at `site` (per handle,
    /// counted atomically) fires according to the plan. Use at sites
    /// that are hit in a deterministic order (e.g. the sequential WAL
    /// append path).
    #[cfg(feature = "fault-injection")]
    #[inline]
    pub fn hit(&self, site: &str) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let Some(state) = inner.sites.get(site) else {
            return false;
        };
        let n = state.hits.fetch_add(1, Ordering::Relaxed);
        state.fire(inner.seed, n)
    }

    /// Ordinal failpoint (no-op build).
    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    pub fn hit(&self, _site: &str) -> bool {
        false
    }

    /// Keyed failpoint: fires according to `key` alone, independent of
    /// call order — the right form for sites reached concurrently
    /// (e.g. per-document extraction workers keyed by doc id).
    #[cfg(feature = "fault-injection")]
    #[inline]
    pub fn hit_keyed(&self, site: &str, key: u64) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let Some(state) = inner.sites.get(site) else {
            return false;
        };
        state.hits.fetch_add(1, Ordering::Relaxed);
        state.fire(inner.seed, key)
    }

    /// Keyed failpoint (no-op build).
    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    pub fn hit_keyed(&self, _site: &str, _key: u64) -> bool {
        false
    }

    /// Ordinal failpoint that surfaces as an injected `io::Error`.
    #[inline]
    pub fn io_error(&self, site: &str) -> io::Result<()> {
        if self.hit(site) {
            Err(injected_io_error(site))
        } else {
            Ok(())
        }
    }

    /// How many faults `site` has injected so far (0 when disarmed or
    /// in no-op builds).
    #[cfg(feature = "fault-injection")]
    pub fn injected(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.sites.get(site))
            .map(|s| s.injected.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// How many faults `site` has injected so far (no-op build).
    #[cfg(not(feature = "fault-injection"))]
    pub fn injected(&self, _site: &str) -> u64 {
        0
    }

    /// How many times `site` has been reached (hit or not).
    #[cfg(feature = "fault-injection")]
    pub fn hits(&self, site: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.sites.get(site))
            .map(|s| s.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// How many times `site` has been reached (no-op build).
    #[cfg(not(feature = "fault-injection"))]
    pub fn hits(&self, _site: &str) -> u64 {
        0
    }
}

/// Construct the `io::Error` an injected I/O failpoint returns.
pub fn injected_io_error(site: &str) -> io::Error {
    io::Error::new(INJECTED_KIND, format!("{INJECTED_TAG}: {site}"))
}

/// Whether an error message marks an injected (vs organic) fault.
pub fn is_injected(err: &io::Error) -> bool {
    err.to_string().contains(INJECTED_TAG)
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

/// A wall-clock budget for query serving.
///
/// `Deadline::none()` never expires and costs one `Option` check per
/// poll. Expiry is polled at coarse intervals inside search loops
/// (every few dozen expansions), so a deadline bounds latency to
/// roughly the budget plus one polling interval — it does not preempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    expires_at: Option<Instant>,
}

impl Default for Deadline {
    fn default() -> Self {
        Self::none()
    }
}

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Self {
        Self { expires_at: None }
    }

    /// Expire `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self {
            expires_at: Instant::now().checked_add(budget),
        }
    }

    /// A deadline that has already expired — forces every
    /// deadline-aware stage onto its best-so-far path (useful in
    /// tests).
    pub fn expired_now() -> Self {
        Self {
            expires_at: Some(Instant::now() - Duration::from_nanos(1)),
        }
    }

    /// Whether this deadline can ever expire.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        self.expires_at.is_some()
    }

    /// Poll the budget. `false` for `Deadline::none()`.
    #[inline]
    pub fn expired(&self) -> bool {
        match self.expires_at {
            None => false,
            Some(t) => Instant::now() >= t,
        }
    }

    /// Time left, `None` if unbounded, zero if already expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_at
            .map(|t| t.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::from_seed(0xDEAD_BEEF)
            .site("wal.append", SitePlan::probability(0.25))
            .site("extract.poison", SitePlan::probability(0.1))
            .site("ckpt", SitePlan::schedule(vec![2, 5]))
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = plan();
        let b = plan();
        let shifted =
            FaultPlan::from_seed(0xDEAD_BEF0).site("wal.append", SitePlan::probability(0.25));
        let fires_a: Vec<bool> = (0..256).map(|n| a.would_fire("wal.append", n)).collect();
        let fires_b: Vec<bool> = (0..256).map(|n| b.would_fire("wal.append", n)).collect();
        let fires_s: Vec<bool> = (0..256)
            .map(|n| shifted.would_fire("wal.append", n))
            .collect();
        assert_eq!(fires_a, fires_b, "same seed => same schedule");
        assert_ne!(fires_a, fires_s, "different seed => different schedule");
        let rate = fires_a.iter().filter(|&&f| f).count() as f64 / 256.0;
        assert!((0.1..0.45).contains(&rate), "rate {rate} wildly off p=0.25");
    }

    #[test]
    fn sites_are_independent() {
        let p = plan();
        let a: Vec<bool> = (0..128).map(|n| p.would_fire("wal.append", n)).collect();
        let b: Vec<bool> = (0..128)
            .map(|n| p.would_fire("extract.poison", n))
            .collect();
        assert_ne!(a, b, "site name participates in the decision");
    }

    #[test]
    fn schedule_always_fires_and_unknown_sites_never_do() {
        let p = plan();
        assert!(p.would_fire("ckpt", 2));
        assert!(p.would_fire("ckpt", 5));
        assert!(!p.would_fire("ckpt", 0));
        assert!(!p.would_fire("no.such.site", 3));
    }

    #[test]
    fn blackbox_hook_fires_and_is_shared_by_later_clones() {
        use std::sync::Mutex;
        let reasons: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&reasons);
        let f = Faults::disabled().with_blackbox(Arc::new(move |reason: &str| {
            sink.lock().unwrap().push(reason.to_owned());
        }));
        assert!(f.has_blackbox());
        let clone = f.clone();
        f.blackbox("wal-degraded");
        clone.blackbox("quarantine doc=7");
        assert_eq!(
            *reasons.lock().unwrap(),
            vec!["wal-degraded".to_owned(), "quarantine doc=7".to_owned()]
        );
        // No hook: a silent no-op.
        Faults::disabled().blackbox("nothing listens");
    }

    #[test]
    fn unbounded_deadline_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_bounded());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn zero_budget_deadline_expires_immediately() {
        let d = Deadline::expired_now();
        assert!(d.is_bounded());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[cfg(feature = "fault-injection")]
    mod armed {
        use super::*;

        #[test]
        fn armed_handle_matches_pure_preview() {
            let p = plan();
            let expect: Vec<bool> = (0..200).map(|n| p.would_fire("wal.append", n)).collect();
            let f = p.arm();
            let got: Vec<bool> = (0..200).map(|_| f.hit("wal.append")).collect();
            assert_eq!(got, expect);
            assert_eq!(f.hits("wal.append"), 200);
            assert_eq!(
                f.injected("wal.append"),
                expect.iter().filter(|&&x| x).count() as u64
            );
        }

        #[test]
        fn keyed_hits_ignore_call_order() {
            let p = plan();
            let f = p.clone().arm();
            let keys = [17u64, 3, 99, 3, 42];
            let forward: Vec<bool> = keys
                .iter()
                .map(|&k| f.hit_keyed("extract.poison", k))
                .collect();
            let g = p.clone().arm();
            let backward: Vec<bool> = keys
                .iter()
                .rev()
                .map(|&k| g.hit_keyed("extract.poison", k))
                .collect();
            let mut backward = backward;
            backward.reverse();
            assert_eq!(forward, backward);
            for (&k, &fired) in keys.iter().zip(&forward) {
                assert_eq!(fired, p.would_fire_keyed("extract.poison", k));
            }
        }

        #[test]
        fn max_faults_caps_injection() {
            let f = FaultPlan::from_seed(1)
                .site("always", SitePlan::probability(1.0).with_max_faults(3))
                .arm();
            let fired = (0..10).filter(|_| f.hit("always")).count();
            assert_eq!(fired, 3);
            assert_eq!(f.injected("always"), 3);
        }

        #[test]
        fn io_error_is_tagged_injected() {
            let f = FaultPlan::from_seed(1)
                .site("disk", SitePlan::probability(1.0))
                .arm();
            let err = f.io_error("disk").unwrap_err();
            assert!(is_injected(&err));
            assert!(err.to_string().contains("disk"));
        }

        #[test]
        fn disabled_handle_never_fires() {
            let f = Faults::disabled();
            assert!(!f.is_armed());
            assert!(!f.hit("anything"));
            assert!(f.io_error("anything").is_ok());
        }
    }
}
