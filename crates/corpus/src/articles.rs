//! The WSJ-style article stream generator.
//!
//! Each article narrates a small set of *ground-truth facts* (sampled from
//! the world under the target ontology) through sentence templates the
//! `nous-text` pipeline can parse — active, passive, pronoun-coreference
//! and appositive variants — interleaved with topical distractor prose.
//! The generator records the facts it expressed, so every downstream stage
//! (extraction, predicate mapping, entity linking, mining) can be scored
//! against known truth, which the real WSJ corpus could never provide.
//!
//! Temporal structure comes from [`TrendWave`]s: inside a wave window the
//! wave's predicate is sampled more often and, when `motif` is set, facts
//! arrive as correlated 3-entity motifs — the recurring subgraphs the
//! streaming miner (§3.5, Figure 7) is supposed to surface.

use crate::curated::CuratedKb;
use crate::ontology::OntologyPredicate;
use crate::world::World;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fact the generator expressed in an article (canonical entity names).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundFact {
    pub subject: String,
    pub predicate: OntologyPredicate,
    pub object: String,
    pub day: u64,
}

/// One generated article.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Article {
    pub id: u64,
    /// Days since the corpus epoch (2010-01-01 in the paper's timeline).
    pub day: u64,
    pub headline: String,
    pub body: String,
    /// Ground truth: the facts this article's text expresses. Wire
    /// clients (`nous-serve` `/ingest`) may omit it — extraction works
    /// from the text alone; the ledger is only for evaluation.
    #[serde(default)]
    pub facts: Vec<GroundFact>,
}

/// A period during which one predicate trends.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendWave {
    pub predicate: OntologyPredicate,
    pub start_day: u64,
    pub end_day: u64,
    /// Sampling weight multiplier inside the window.
    pub boost: f64,
    /// Emit correlated 3-entity motifs (A-p-B, A-invests-C, B-partners-C)
    /// so the streaming miner has recurring subgraphs to find.
    pub motif: bool,
}

/// Parameters of stream generation.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    pub seed: u64,
    pub articles: usize,
    /// Stream horizon in days; article days are spread uniformly over it.
    pub days: u64,
    pub waves: Vec<TrendWave>,
    /// Probability a mention uses the entity's short alias instead of its
    /// canonical name (drives disambiguation difficulty).
    pub alias_usage: f64,
    /// Probability a fact is rendered through the two-sentence pronoun
    /// coreference template.
    pub coref_rate: f64,
    /// Probability of the appositive template (harder for extraction).
    pub appositive_rate: f64,
    /// Distractor sentences appended per article.
    pub distractors: usize,
    /// Probability an article re-reports an existing *curated* fact
    /// (corroboration across sources).
    pub curated_echo_rate: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            seed: 11,
            articles: 400,
            days: 2190, // six years, matching WSJ 2010-2015
            waves: vec![TrendWave {
                predicate: OntologyPredicate::Acquired,
                start_day: 1100,
                end_day: 1500,
                boost: 4.0,
                motif: true,
            }],
            alias_usage: 0.3,
            coref_rate: 0.2,
            appositive_rate: 0.1,
            distractors: 2,
            curated_echo_rate: 0.15,
        }
    }
}

const MONTHS: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Render a corpus day as "March 2013"-style text.
pub fn render_date(day: u64) -> String {
    let year = 2010 + day / 365;
    let month = MONTHS[((day % 365) / 31).min(11) as usize];
    format!("{month} {year}")
}

/// The article stream generator.
pub struct ArticleStream;

struct Ctx<'a> {
    world: &'a World,
    kb: &'a CuratedKb,
    cfg: &'a StreamConfig,
}

impl ArticleStream {
    /// Generate the full stream sorted by day (deterministic in the seed).
    pub fn generate(world: &World, kb: &CuratedKb, cfg: &StreamConfig) -> Vec<Article> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5851_f42d_4c95_7f2d);
        let ctx = Ctx { world, kb, cfg };
        let mut articles = Vec::with_capacity(cfg.articles);
        for id in 0..cfg.articles {
            let day = if cfg.articles <= 1 {
                0
            } else {
                (id as u64 * cfg.days) / (cfg.articles as u64 - 1).max(1)
            };
            articles.push(ctx.article(&mut rng, id as u64, day));
        }
        articles
    }
}

impl<'a> Ctx<'a> {
    fn article(&self, rng: &mut StdRng, id: u64, day: u64) -> Article {
        let mut sentences: Vec<String> = Vec::new();
        let mut facts: Vec<GroundFact> = Vec::new();

        // How many facts this article narrates.
        let n_facts = rng.gen_range(1..=3usize);

        // Motif burst: inside a motif wave, sometimes emit a correlated
        // triangle instead of independent facts.
        let motif_wave = self
            .cfg
            .waves
            .iter()
            .find(|w| w.motif && (w.start_day..=w.end_day).contains(&day));
        if let Some(wave) = motif_wave {
            if rng.gen_bool(0.5) {
                self.emit_motif(rng, day, wave.predicate, &mut sentences, &mut facts);
            }
        }

        while facts.len() < n_facts {
            if rng.gen_bool(self.cfg.curated_echo_rate) {
                self.emit_curated_echo(rng, day, &mut sentences, &mut facts);
            } else {
                let pred = self.sample_predicate(rng, day);
                self.emit_fact(rng, day, pred, None, &mut sentences, &mut facts);
            }
        }

        // Distractors drawn from the topic of the first fact's subject.
        let topic = facts
            .first()
            .and_then(|f| self.world.by_name(&f.subject))
            .map(|i| self.world.entity(i).topic)
            .unwrap_or(crate::vocab::Topic::Finance);
        for _ in 0..self.cfg.distractors {
            let tmpl = crate::vocab::DISTRACTORS.choose(rng).expect("non-empty");
            let w = topic.words().choose(rng).expect("non-empty");
            sentences.push(tmpl.replace("{W}", w));
        }

        let headline = facts
            .first()
            .map(|f| format!("{} {} {}", f.subject, f.predicate.name(), f.object))
            .unwrap_or_else(|| "Market roundup".to_owned());

        Article {
            id,
            day,
            headline,
            body: sentences.join(" "),
            facts,
        }
    }

    /// Weighted predicate sampling with trend-wave boosts.
    fn sample_predicate(&self, rng: &mut StdRng, day: u64) -> OntologyPredicate {
        let evented: Vec<OntologyPredicate> = crate::ontology::ONTOLOGY
            .iter()
            .copied()
            .filter(|p| p.is_eventful())
            .collect();
        let weights: Vec<f64> = evented
            .iter()
            .map(|p| {
                let mut w = 1.0;
                for wave in &self.cfg.waves {
                    if wave.predicate == *p && (wave.start_day..=wave.end_day).contains(&day) {
                        w *= wave.boost;
                    }
                }
                w
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen_range(0.0..total);
        for (p, w) in evented.iter().zip(&weights) {
            if x < *w {
                return *p;
            }
            x -= w;
        }
        *evented.last().expect("non-empty")
    }

    /// Sample arguments matching the predicate's type signature.
    fn sample_args(&self, rng: &mut StdRng, pred: OntologyPredicate) -> Option<(usize, usize)> {
        let s = *self.world.companies.choose(rng)?;
        let o = match pred {
            OntologyPredicate::IsLocatedIn => *self.world.locations.choose(rng)?,
            OntologyPredicate::FoundedBy => *self.world.people.choose(rng)?,
            OntologyPredicate::Manufactures | OntologyPredicate::Deploys => {
                *self.world.products.choose(rng)?
            }
            _ => {
                let mut o = *self.world.companies.choose(rng)?;
                let mut guard = 0;
                while o == s && guard < 8 {
                    o = *self.world.companies.choose(rng)?;
                    guard += 1;
                }
                if o == s {
                    return None;
                }
                o
            }
        };
        Some((s, o))
    }

    fn emit_fact(
        &self,
        rng: &mut StdRng,
        day: u64,
        pred: OntologyPredicate,
        args: Option<(usize, usize)>,
        sentences: &mut Vec<String>,
        facts: &mut Vec<GroundFact>,
    ) {
        let Some((s, o)) = args.or_else(|| self.sample_args(rng, pred)) else {
            return;
        };
        let s_surface = self.surface(rng, s);
        let o_surface = self.surface(rng, o);
        let rendered = self.render(rng, pred, s, o, &s_surface, &o_surface, day);
        sentences.extend(rendered);
        // Topical colour for the fact's subject: news prose surrounds a
        // company with its sector vocabulary, which is exactly the context
        // signal AIDA-style disambiguation exploits. Without it, ambiguous
        // short aliases would be unresolvable even in principle.
        if rng.gen_bool(0.8) {
            let topic = self.world.entity(s).topic;
            for _ in 0..2 {
                let tmpl = crate::vocab::DISTRACTORS.choose(rng).expect("non-empty");
                let w = topic.words().choose(rng).expect("non-empty");
                sentences.push(tmpl.replace("{W}", w));
            }
        }
        facts.push(GroundFact {
            subject: self.world.entity(s).name.clone(),
            predicate: pred,
            object: self.world.entity(o).name.clone(),
            day,
        });
    }

    /// Re-report a random curated fact (cross-source corroboration).
    fn emit_curated_echo(
        &self,
        rng: &mut StdRng,
        day: u64,
        sentences: &mut Vec<String>,
        facts: &mut Vec<GroundFact>,
    ) {
        if let Some(t) = self.kb.triples.choose(rng) {
            self.emit_fact(
                rng,
                day,
                t.predicate,
                Some((t.subject, t.object)),
                sentences,
                facts,
            );
        }
    }

    /// Correlated motif: A-pred-B, A-investedIn-C, B-partneredWith-C.
    fn emit_motif(
        &self,
        rng: &mut StdRng,
        day: u64,
        pred: OntologyPredicate,
        sentences: &mut Vec<String>,
        facts: &mut Vec<GroundFact>,
    ) {
        let n = self.world.companies.len();
        if n < 3 {
            return;
        }
        // Draw the motif cast from a small hub pool so the same subgraph
        // shape recurs with overlapping labels.
        let pool = &self.world.companies[..n.min(8)];
        let mut picks = pool.to_vec();
        picks.shuffle(rng);
        let (a, b, c) = (picks[0], picks[1], picks[2]);
        self.emit_fact(rng, day, pred, Some((a, b)), sentences, facts);
        self.emit_fact(
            rng,
            day,
            OntologyPredicate::InvestedIn,
            Some((a, c)),
            sentences,
            facts,
        );
        self.emit_fact(
            rng,
            day,
            OntologyPredicate::PartneredWith,
            Some((b, c)),
            sentences,
            facts,
        );
    }

    /// Choose a surface form for an entity mention.
    fn surface(&self, rng: &mut StdRng, idx: usize) -> String {
        let e = self.world.entity(idx);
        if e.aliases.len() > 1 && rng.gen_bool(self.cfg.alias_usage) {
            e.aliases[1].clone()
        } else {
            e.name.clone()
        }
    }

    /// Past-tense form of a verb lemma from the shared lexicon.
    fn past(lemma: &str) -> &'static str {
        nous_text::lexicon::VERB_TABLE
            .iter()
            .find(|(base, ..)| *base == lemma)
            .map(|&(_, _, past, _, _)| past)
            .unwrap_or("made")
    }

    /// Third-person present form of a verb lemma.
    fn present(lemma: &str) -> &'static str {
        nous_text::lexicon::VERB_TABLE
            .iter()
            .find(|(base, ..)| *base == lemma)
            .map(|&(_, third, _, _, _)| third)
            .unwrap_or("makes")
    }

    /// Render one fact into one or two sentences.
    #[allow(clippy::too_many_arguments)]
    fn render(
        &self,
        rng: &mut StdRng,
        pred: OntologyPredicate,
        s_idx: usize,
        _o_idx: usize,
        s: &str,
        o: &str,
        day: u64,
    ) -> Vec<String> {
        use OntologyPredicate as P;
        let date = render_date(day);
        match pred {
            P::IsLocatedIn => {
                let t = rng.gen_range(0..4);
                vec![match t {
                    0 => format!("{s} is based in {o}."),
                    1 => format!("{s} is headquartered in {o}."),
                    2 => format!("{s} operates in {o}."),
                    _ => format!("{s} is located in {o}."),
                }]
            }
            P::FoundedBy => {
                // Inverted surface: person founded company.
                let verb = if rng.gen_bool(0.7) {
                    "founded"
                } else {
                    "created"
                };
                vec![format!("{o} {verb} {s}.")]
            }
            P::Manufactures => {
                let lemma = *["manufacture", "make", "produce", "build", "ship"]
                    .choose(rng)
                    .expect("non-empty");
                vec![format!("{s} {} the {o}.", Self::present(lemma))]
            }
            P::Acquired => {
                let lemma = *["acquire", "buy", "purchase"]
                    .choose(rng)
                    .expect("non-empty");
                let past = Self::past(lemma);
                if rng.gen_bool(self.cfg.coref_rate) {
                    vec![
                        format!("{s} announced a deal in {date}."),
                        format!("It {past} {o}."),
                    ]
                } else if rng.gen_bool(self.cfg.appositive_rate) {
                    let w = self.world.entity(s_idx).topic.name();
                    vec![format!("{s}, a {w} firm, {past} {o}.")]
                } else if rng.gen_bool(0.3) {
                    vec![format!("{o} was {} by {s}.", Self::past(lemma))]
                } else {
                    vec![format!("{s} {past} {o} in {date}.")]
                }
            }
            P::InvestedIn => {
                if rng.gen_bool(0.5) {
                    vec![format!("{s} invested in {o}.")]
                } else {
                    vec![format!("{s} funded {o} in {date}.")]
                }
            }
            P::CompetesWith => vec![format!("{s} competes with {o}.")],
            P::PartneredWith => {
                let t = rng.gen_range(0..3);
                vec![match t {
                    0 => format!("{s} partnered with {o}."),
                    1 => format!("{s} joined with {o} in {date}."),
                    _ => format!("{s} signed with {o}."),
                }]
            }
            P::SuppliesTo => {
                let t = rng.gen_range(0..3);
                vec![match t {
                    0 => format!("{s} supplies to {o}."),
                    1 => format!("{s} sells to {o}."),
                    _ => format!("{s} delivers to {o}."),
                }]
            }
            P::Deploys => {
                let lemma = *["deploy", "use", "fly"].choose(rng).expect("non-empty");
                vec![format!("{s} {} the {o}.", Self::past(lemma))]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn small_stream(cfg: StreamConfig) -> (World, Vec<Article>) {
        let world = World::generate(&WorldConfig::default());
        let kb = CuratedKb::generate(&world, 7);
        let arts = ArticleStream::generate(&world, &kb, &cfg);
        (world, arts)
    }

    #[test]
    fn deterministic_and_sorted_by_day() {
        let cfg = StreamConfig {
            articles: 50,
            ..Default::default()
        };
        let (_, a) = small_stream(cfg.clone());
        let (_, b) = small_stream(cfg);
        assert_eq!(a.len(), 50);
        let bodies = |v: &[Article]| v.iter().map(|x| x.body.clone()).collect::<Vec<_>>();
        assert_eq!(bodies(&a), bodies(&b));
        assert!(a.windows(2).all(|w| w[0].day <= w[1].day));
    }

    #[test]
    fn every_article_carries_facts_and_text() {
        let (_, arts) = small_stream(StreamConfig {
            articles: 30,
            ..Default::default()
        });
        for art in &arts {
            assert!(!art.facts.is_empty());
            assert!(!art.body.is_empty());
            for f in &art.facts {
                assert_eq!(f.day, art.day);
            }
        }
    }

    #[test]
    fn fact_names_are_canonical() {
        let (world, arts) = small_stream(StreamConfig {
            articles: 40,
            ..Default::default()
        });
        for art in &arts {
            for f in &art.facts {
                assert!(
                    world.by_name(&f.subject).is_some(),
                    "unknown subject {}",
                    f.subject
                );
                assert!(
                    world.by_name(&f.object).is_some(),
                    "unknown object {}",
                    f.object
                );
            }
        }
    }

    #[test]
    fn trend_wave_boosts_predicate_frequency() {
        let cfg = StreamConfig {
            articles: 400,
            waves: vec![TrendWave {
                predicate: OntologyPredicate::Acquired,
                start_day: 1100,
                end_day: 1500,
                boost: 8.0,
                motif: false,
            }],
            curated_echo_rate: 0.0,
            ..Default::default()
        };
        let (_, arts) = small_stream(cfg);
        let rate = |lo: u64, hi: u64| {
            let (mut acq, mut tot) = (0usize, 0usize);
            for a in &arts {
                if (lo..hi).contains(&a.day) {
                    for f in &a.facts {
                        tot += 1;
                        if f.predicate == OntologyPredicate::Acquired {
                            acq += 1;
                        }
                    }
                }
            }
            acq as f64 / tot.max(1) as f64
        };
        let inside = rate(1100, 1500);
        let outside = rate(0, 1000);
        assert!(
            inside > outside * 1.5,
            "wave should lift acquisition rate: inside={inside:.3} outside={outside:.3}"
        );
    }

    #[test]
    fn motif_waves_emit_triangles() {
        let cfg = StreamConfig {
            articles: 200,
            waves: vec![TrendWave {
                predicate: OntologyPredicate::Acquired,
                start_day: 0,
                end_day: 2190,
                boost: 2.0,
                motif: true,
            }],
            ..Default::default()
        };
        let (_, arts) = small_stream(cfg);
        let has_motif = arts.iter().any(|a| {
            let preds: Vec<_> = a.facts.iter().map(|f| f.predicate).collect();
            preds.contains(&OntologyPredicate::InvestedIn)
                && preds.contains(&OntologyPredicate::PartneredWith)
        });
        assert!(has_motif);
    }

    #[test]
    fn alias_usage_appears_in_text() {
        let (world, arts) = small_stream(StreamConfig {
            articles: 120,
            alias_usage: 0.9,
            ..Default::default()
        });
        // With 0.9 alias usage some article must mention a company by its
        // short alias while the ground truth uses the canonical name.
        let found = arts.iter().any(|a| {
            a.facts.iter().any(|f| {
                let idx = world.by_name(&f.subject).unwrap();
                let e = world.entity(idx);
                e.aliases.len() > 1 && !a.body.contains(&e.name) && a.body.contains(&e.aliases[1])
            })
        });
        assert!(found);
    }

    #[test]
    fn date_rendering() {
        assert_eq!(render_date(0), "January 2010");
        assert_eq!(render_date(365), "January 2011");
        assert!(render_date(364).contains("2010"));
        assert!(render_date(2189).ends_with("2015"));
    }

    #[test]
    fn rendered_sentences_are_extractable() {
        // The heart of the corpus/pipeline contract: for every ontology
        // predicate, at least 60% of rendered articles must yield a raw
        // triple whose predicate is one of that ontology relation's surface
        // forms (some templates — appositive, alias mismatch — lose a few).
        use crate::world::Kind;
        use nous_text::ner::Gazetteer;
        use nous_text::openie::ExtractorConfig;
        let (world, arts) = small_stream(StreamConfig {
            articles: 150,
            alias_usage: 0.0,
            distractors: 0,
            ..Default::default()
        });
        let mut gaz = Gazetteer::new();
        for e in &world.entities {
            let ty = match e.kind {
                Kind::Company => nous_text::ner::EntityType::Organization,
                Kind::Person => nous_text::ner::EntityType::Person,
                Kind::Location => nous_text::ner::EntityType::Location,
                Kind::Product => nous_text::ner::EntityType::Product,
            };
            for a in &e.aliases {
                gaz.insert(a, ty);
            }
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for art in &arts {
            let doc = nous_text::analyze(&art.body, &gaz, &ExtractorConfig::default());
            let raw_preds: Vec<String> = doc
                .sentences
                .iter()
                .flat_map(|s| s.triples.iter().map(|t| t.predicate.clone()))
                .collect();
            for f in &art.facts {
                total += 1;
                let forms = f.predicate.surface_forms();
                if raw_preds
                    .iter()
                    .any(|rp| forms.iter().any(|(s, _)| s == rp))
                {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / total as f64;
        assert!(
            recall > 0.6,
            "surface-form recall too low: {recall:.2} ({hits}/{total})"
        );
    }
}
