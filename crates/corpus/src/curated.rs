//! The synthetic curated knowledge base (YAGO2 stand-in).
//!
//! From a [`World`], generates the background facts NOUS fuses with
//! extracted knowledge: headquarters, founders, product ownership and a
//! sparse inter-company relation web. All curated facts carry confidence
//! 1.0 and `Provenance::Curated` when loaded into a graph; they are the
//! red edges of the paper's Figure 2.

use crate::ontology::OntologyPredicate;
#[cfg(test)]
use crate::world::Kind;
use crate::world::World;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One curated fact between two world entities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuratedTriple {
    /// Index of the subject entity in the world.
    pub subject: usize,
    pub predicate: OntologyPredicate,
    /// Index of the object entity in the world.
    pub object: usize,
}

/// The generated curated KB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CuratedKb {
    pub triples: Vec<CuratedTriple>,
}

impl CuratedKb {
    /// Generate curated facts over `world` (deterministic in `seed`).
    pub fn generate(world: &World, seed: u64) -> CuratedKb {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut triples = Vec::new();

        // Every company: one HQ, one founder.
        for &c in &world.companies {
            let hq = *world
                .locations
                .choose(&mut rng)
                .expect("locations non-empty");
            triples.push(CuratedTriple {
                subject: c,
                predicate: OntologyPredicate::IsLocatedIn,
                object: hq,
            });
            let founder = *world.people.choose(&mut rng).expect("people non-empty");
            triples.push(CuratedTriple {
                subject: c,
                predicate: OntologyPredicate::FoundedBy,
                object: founder,
            });
        }

        // Every product: exactly one manufacturer, biased to same topic.
        for &p in &world.products {
            let topic = world.entity(p).topic;
            let same_topic: Vec<usize> = world
                .companies
                .iter()
                .copied()
                .filter(|&c| world.entity(c).topic == topic)
                .collect();
            let owner = if !same_topic.is_empty() && rng.gen_bool(0.8) {
                *same_topic.choose(&mut rng).expect("non-empty")
            } else {
                *world
                    .companies
                    .choose(&mut rng)
                    .expect("companies non-empty")
            };
            triples.push(CuratedTriple {
                subject: owner,
                predicate: OntologyPredicate::Manufactures,
                object: p,
            });
        }

        // Sparse inter-company web: competition within a topic, partnerships
        // and investments across.
        for &c in &world.companies {
            let topic = world.entity(c).topic;
            if rng.gen_bool(0.6) {
                let rivals: Vec<usize> = world
                    .companies
                    .iter()
                    .copied()
                    .filter(|&o| o != c && world.entity(o).topic == topic)
                    .collect();
                if let Some(&r) = rivals.choose(&mut rng) {
                    triples.push(CuratedTriple {
                        subject: c,
                        predicate: OntologyPredicate::CompetesWith,
                        object: r,
                    });
                }
            }
            if rng.gen_bool(0.35) {
                if let Some(&o) = world.companies.choose(&mut rng) {
                    if o != c {
                        triples.push(CuratedTriple {
                            subject: c,
                            predicate: OntologyPredicate::PartneredWith,
                            object: o,
                        });
                    }
                }
            }
            if rng.gen_bool(0.25) {
                if let Some(&o) = world.companies.choose(&mut rng) {
                    if o != c {
                        triples.push(CuratedTriple {
                            subject: c,
                            predicate: OntologyPredicate::InvestedIn,
                            object: o,
                        });
                    }
                }
            }
        }

        // Dedup exact repeats (possible via random draws).
        triples.sort_by_key(|t| (t.subject, t.predicate.name(), t.object));
        triples.dedup();
        CuratedKb { triples }
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// All facts with the given predicate.
    pub fn with_predicate(
        &self,
        p: OntologyPredicate,
    ) -> impl Iterator<Item = &CuratedTriple> + '_ {
        self.triples.iter().filter(move |t| t.predicate == p)
    }

    /// The unique manufacturer of a product, if the product exists.
    pub fn manufacturer_of(&self, product: usize) -> Option<usize> {
        self.with_predicate(OntologyPredicate::Manufactures)
            .find(|t| t.object == product)
            .map(|t| t.subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn sample() -> (World, CuratedKb) {
        let w = World::generate(&WorldConfig::default());
        let kb = CuratedKb::generate(&w, 7);
        (w, kb)
    }

    #[test]
    fn deterministic() {
        let w = World::generate(&WorldConfig::default());
        let a = CuratedKb::generate(&w, 7);
        let b = CuratedKb::generate(&w, 7);
        assert_eq!(a.triples, b.triples);
        let c = CuratedKb::generate(&w, 8);
        assert_ne!(a.triples, c.triples);
    }

    #[test]
    fn every_company_has_hq_and_founder() {
        let (w, kb) = sample();
        for &c in &w.companies {
            assert!(
                kb.with_predicate(OntologyPredicate::IsLocatedIn)
                    .any(|t| t.subject == c),
                "company {c} lacks HQ"
            );
            assert!(
                kb.with_predicate(OntologyPredicate::FoundedBy)
                    .any(|t| t.subject == c),
                "company {c} lacks founder"
            );
        }
    }

    #[test]
    fn every_product_has_one_manufacturer() {
        let (w, kb) = sample();
        for &p in &w.products {
            let makers: Vec<_> = kb
                .with_predicate(OntologyPredicate::Manufactures)
                .filter(|t| t.object == p)
                .collect();
            assert_eq!(makers.len(), 1, "product {p}");
            assert_eq!(kb.manufacturer_of(p), Some(makers[0].subject));
        }
    }

    #[test]
    fn type_signatures_hold() {
        let (w, kb) = sample();
        for t in &kb.triples {
            let s = w.entity(t.subject).kind;
            let o = w.entity(t.object).kind;
            match t.predicate {
                OntologyPredicate::IsLocatedIn => {
                    assert_eq!(s, Kind::Company);
                    assert_eq!(o, Kind::Location);
                }
                OntologyPredicate::FoundedBy => {
                    assert_eq!(s, Kind::Company);
                    assert_eq!(o, Kind::Person);
                }
                OntologyPredicate::Manufactures => {
                    assert_eq!(s, Kind::Company);
                    assert_eq!(o, Kind::Product);
                }
                _ => {
                    assert_eq!(s, Kind::Company);
                    assert_eq!(o, Kind::Company);
                }
            }
        }
    }

    #[test]
    fn no_self_relations() {
        let (_, kb) = sample();
        assert!(kb.triples.iter().all(|t| t.subject != t.object));
    }

    #[test]
    fn no_duplicate_triples() {
        let (_, kb) = sample();
        let mut seen = std::collections::HashSet::new();
        for t in &kb.triples {
            assert!(seen.insert((t.subject, t.predicate.name(), t.object)));
        }
    }
}
