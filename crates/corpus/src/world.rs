//! The generated entity world.
//!
//! A [`World`] is the cast of a synthetic corpus: companies, people,
//! locations and products with canonical names, alias tables, topical
//! affiliation and a YAGO-style description text. Both the curated KB and
//! the article stream are derived from the same world, which is what lets
//! NOUS fuse them (§1.1): curated facts and extracted facts talk about the
//! same entities.

use crate::vocab::{self, Topic};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Entity kinds of the generated world (aligned with
/// `nous_text::ner::EntityType`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kind {
    Company,
    Person,
    Location,
    Product,
}

impl Kind {
    pub fn label(self) -> &'static str {
        match self {
            Kind::Company => "Company",
            Kind::Person => "Person",
            Kind::Location => "Location",
            Kind::Product => "Product",
        }
    }
}

/// One generated entity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntitySpec {
    /// Canonical name ("Apex Robotics", "Frank Wang", "Phantom 4").
    pub name: String,
    pub kind: Kind,
    /// Alias surfaces including the canonical name. First-word aliases may
    /// be shared between entities (deliberate ambiguity).
    pub aliases: Vec<String>,
    pub topic: Topic,
    /// Wikipedia-like description text (context for disambiguation + LDA).
    pub description: String,
}

/// Parameters of world generation.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub seed: u64,
    pub companies: usize,
    pub people: usize,
    pub products: usize,
    /// Probability that a new company reuses an existing name head, making
    /// its one-word alias ambiguous.
    pub ambiguity: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            companies: 60,
            people: 40,
            products: 50,
            ambiguity: 0.25,
        }
    }
}

/// The generated cast, with lookup indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    pub entities: Vec<EntitySpec>,
    /// Indexes into `entities` by kind.
    pub companies: Vec<usize>,
    pub people: Vec<usize>,
    pub locations: Vec<usize>,
    pub products: Vec<usize>,
    /// alias (lowercase) → entity indexes sharing that alias.
    pub alias_index: HashMap<String, Vec<usize>>,
}

impl World {
    /// Generate a world from `cfg` (deterministic in the seed).
    pub fn generate(cfg: &WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut entities: Vec<EntitySpec> = Vec::new();
        let mut companies = Vec::new();
        let mut people = Vec::new();
        let mut locations = Vec::new();
        let mut products = Vec::new();

        // Locations: every city, topic drawn uniformly (cities are topic-
        // neutral but need one for description text).
        for city in vocab::CITIES {
            let topic = *[Topic::Regulation, Topic::Finance, Topic::Logistics]
                .choose(&mut rng)
                .expect("non-empty");
            locations.push(entities.len());
            entities.push(EntitySpec {
                name: (*city).to_owned(),
                kind: Kind::Location,
                aliases: vec![(*city).to_owned()],
                topic,
                description: format!(
                    "{city} is a city with a growing technology sector. Local officials \
                     track {} and {} developments.",
                    topic.words()[0],
                    topic.words()[1]
                ),
            });
        }

        // People.
        let mut used_person = HashSet::new();
        while people.len() < cfg.people {
            let given = vocab::GIVEN_NAMES.choose(&mut rng).expect("non-empty");
            let family = vocab::FAMILY_NAMES.choose(&mut rng).expect("non-empty");
            let name = format!("{given} {family}");
            if !used_person.insert(name.clone()) {
                continue;
            }
            let topic = *Topic::ALL.choose(&mut rng).expect("non-empty");
            people.push(entities.len());
            entities.push(EntitySpec {
                aliases: vec![name.clone(), (*family).to_owned()],
                name,
                kind: Kind::Person,
                topic,
                description: format!(
                    "An executive known for work on {} and {} initiatives.",
                    topic.words()[2],
                    topic.words()[3]
                ),
            });
        }

        // Companies, with controlled head reuse.
        let mut used_company = HashSet::new();
        let mut used_heads: Vec<&str> = Vec::new();
        while companies.len() < cfg.companies {
            let reuse = !used_heads.is_empty() && rng.gen_bool(cfg.ambiguity);
            let head = if reuse {
                *used_heads.choose(&mut rng).expect("non-empty")
            } else {
                vocab::COMPANY_HEADS.choose(&mut rng).expect("non-empty")
            };
            let suffix = vocab::COMPANY_SUFFIXES.choose(&mut rng).expect("non-empty");
            let name = format!("{head} {suffix}");
            if !used_company.insert(name.clone()) {
                continue;
            }
            if !used_heads.contains(&head) {
                used_heads.push(head);
            }
            let topic = *Topic::ALL.choose(&mut rng).expect("non-empty");
            let w = topic.words();
            companies.push(entities.len());
            entities.push(EntitySpec {
                aliases: vec![name.clone(), head.to_owned()],
                name,
                kind: Kind::Company,
                topic,
                description: format!(
                    "A {} company. The firm develops {} and {} products and serves {} \
                     customers. Its teams focus on {} and {} workflows, with ongoing {} \
                     and {} programs and strong {} expertise.",
                    topic.name(),
                    w[0],
                    w[1],
                    w[2],
                    w[3],
                    w[4],
                    w[5],
                    w[6],
                    w[7],
                ),
            });
        }

        // Products: "<Line> <n>" names, owned later by the curated KB.
        let mut used_product = HashSet::new();
        while products.len() < cfg.products {
            let line = vocab::PRODUCT_LINES.choose(&mut rng).expect("non-empty");
            let number = rng.gen_range(1..10u32);
            let name = format!("{line} {number}");
            if !used_product.insert(name.clone()) {
                continue;
            }
            let topic = *Topic::ALL.choose(&mut rng).expect("non-empty");
            products.push(entities.len());
            entities.push(EntitySpec {
                aliases: vec![name.clone(), (*line).to_owned()],
                name,
                kind: Kind::Product,
                topic,
                description: format!(
                    "A drone model aimed at {} users, praised for its {} features.",
                    topic.name(),
                    topic.words()[4]
                ),
            });
        }

        let mut alias_index: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, e) in entities.iter().enumerate() {
            for a in &e.aliases {
                alias_index.entry(a.to_lowercase()).or_default().push(i);
            }
        }

        World {
            entities,
            companies,
            people,
            locations,
            products,
            alias_index,
        }
    }

    pub fn entity(&self, idx: usize) -> &EntitySpec {
        &self.entities[idx]
    }

    /// Entities whose alias table contains `surface` (case-insensitive).
    pub fn candidates(&self, surface: &str) -> &[usize] {
        self.alias_index
            .get(&surface.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Index of the entity with this canonical name.
    pub fn by_name(&self, name: &str) -> Option<usize> {
        self.candidates(name)
            .iter()
            .copied()
            .find(|&i| self.entities[i].name == name)
    }

    /// Number of alias surfaces shared by more than one entity.
    pub fn ambiguous_alias_count(&self) -> usize {
        self.alias_index.values().filter(|v| v.len() > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&WorldConfig::default());
        let b = World::generate(&WorldConfig::default());
        let names = |w: &World| {
            w.entities
                .iter()
                .map(|e| e.name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(&WorldConfig::default());
        let b = World::generate(&WorldConfig {
            seed: 99,
            ..Default::default()
        });
        let names = |w: &World| {
            w.entities
                .iter()
                .map(|e| e.name.clone())
                .collect::<Vec<_>>()
        };
        assert_ne!(names(&a), names(&b));
    }

    #[test]
    fn counts_match_config() {
        let cfg = WorldConfig {
            companies: 30,
            people: 20,
            products: 25,
            ..Default::default()
        };
        let w = World::generate(&cfg);
        assert_eq!(w.companies.len(), 30);
        assert_eq!(w.people.len(), 20);
        assert_eq!(w.products.len(), 25);
        assert_eq!(w.locations.len(), vocab::CITIES.len());
        assert_eq!(w.entities.len(), 30 + 20 + 25 + vocab::CITIES.len());
    }

    #[test]
    fn canonical_names_are_unique() {
        let w = World::generate(&WorldConfig::default());
        let set: HashSet<_> = w.entities.iter().map(|e| &e.name).collect();
        assert_eq!(set.len(), w.entities.len());
    }

    #[test]
    fn ambiguity_creates_shared_aliases() {
        let ambiguous = World::generate(&WorldConfig {
            ambiguity: 0.8,
            companies: 60,
            ..Default::default()
        });
        assert!(ambiguous.ambiguous_alias_count() > 0);
        // candidates() surfaces all sharers.
        let (alias, sharers) = ambiguous
            .alias_index
            .iter()
            .find(|(_, v)| v.len() > 1)
            .expect("some ambiguity at 0.8");
        assert_eq!(ambiguous.candidates(alias).len(), sharers.len());
    }

    #[test]
    fn zero_ambiguity_companies_can_still_collide_via_people() {
        // With ambiguity 0.0, company heads are sampled independently so
        // two companies may still share a head by chance; the *forced*
        // reuse is off. We only check generation succeeds.
        let w = World::generate(&WorldConfig {
            ambiguity: 0.0,
            ..Default::default()
        });
        assert_eq!(w.companies.len(), WorldConfig::default().companies);
    }

    #[test]
    fn by_name_and_candidates() {
        let w = World::generate(&WorldConfig::default());
        let first_company = &w.entities[w.companies[0]];
        assert_eq!(w.by_name(&first_company.name), Some(w.companies[0]));
        assert!(!w.candidates(&first_company.aliases[1]).is_empty());
        assert!(w.candidates("No Such Entity Anywhere").is_empty());
    }

    #[test]
    fn descriptions_contain_topic_words() {
        let w = World::generate(&WorldConfig::default());
        for &c in &w.companies {
            let e = &w.entities[c];
            let found = e.topic.words().iter().any(|tw| e.description.contains(tw));
            assert!(found, "description of {} lacks topic words", e.name);
        }
    }
}
