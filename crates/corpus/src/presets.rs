//! Dataset presets shared by examples, integration tests and benches, so
//! every experiment in EXPERIMENTS.md names the exact data it ran on.

use crate::articles::{ArticleStream, StreamConfig, TrendWave};
use crate::curated::CuratedKb;
use crate::ontology::OntologyPredicate;
use crate::world::{World, WorldConfig};
use crate::Article;

/// Named corpus scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Unit/integration-test scale: builds in milliseconds.
    Smoke,
    /// The default demo scale (examples, most benches).
    Demo,
    /// Stress scale for throughput benches.
    Large,
}

impl Preset {
    pub fn world_config(self) -> WorldConfig {
        match self {
            Preset::Smoke => WorldConfig {
                seed: 7,
                companies: 24,
                people: 16,
                products: 20,
                ambiguity: 0.25,
            },
            Preset::Demo => WorldConfig::default(),
            Preset::Large => WorldConfig {
                seed: 7,
                companies: 160,
                people: 100,
                products: 120,
                ambiguity: 0.3,
            },
        }
    }

    pub fn stream_config(self) -> StreamConfig {
        let waves = vec![
            TrendWave {
                predicate: OntologyPredicate::Acquired,
                start_day: 1100,
                end_day: 1500,
                boost: 4.0,
                motif: true,
            },
            TrendWave {
                predicate: OntologyPredicate::Deploys,
                start_day: 1700,
                end_day: 2100,
                boost: 3.0,
                motif: false,
            },
        ];
        match self {
            Preset::Smoke => StreamConfig {
                seed: 11,
                articles: 60,
                waves,
                ..Default::default()
            },
            Preset::Demo => StreamConfig {
                seed: 11,
                articles: 600,
                waves,
                ..Default::default()
            },
            Preset::Large => StreamConfig {
                seed: 11,
                articles: 3000,
                waves,
                ..Default::default()
            },
        }
    }

    /// Build the full `(world, curated KB, article stream)` bundle.
    pub fn build(self) -> (World, CuratedKb, Vec<Article>) {
        let world = World::generate(&self.world_config());
        let kb = CuratedKb::generate(&world, 7);
        let articles = ArticleStream::generate(&world, &kb, &self.stream_config());
        (world, kb, articles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_preset_builds_quickly() {
        let (world, kb, arts) = Preset::Smoke.build();
        assert_eq!(arts.len(), 60);
        assert!(!kb.is_empty());
        assert!(world.entities.len() > 50);
    }

    #[test]
    fn presets_scale_monotonically() {
        let s = Preset::Smoke.world_config();
        let d = Preset::Demo.world_config();
        let l = Preset::Large.world_config();
        assert!(s.companies < d.companies && d.companies < l.companies);
        assert!(Preset::Smoke.stream_config().articles < Preset::Demo.stream_config().articles);
        assert!(Preset::Demo.stream_config().articles < Preset::Large.stream_config().articles);
    }
}
