//! Planted ground truth for explanatory ("why") question answering.
//!
//! §3.6 ranks paths between a source and target entity by *topical
//! coherence*. To evaluate that, the generator plants, for each question:
//!
//! - an **expected path** `A → B → C` whose entities all share one topic
//!   (the coherent explanation), and
//! - a **decoy path** `A → H → C` of the *same length* through a
//!   high-degree hub `H` from a different topic.
//!
//! A plain shortest-path or degree-following random walk cannot separate
//! the two (equal hop count; the hub attracts walks); the coherence metric
//! can. The planted triples are appended to the curated KB.

use crate::curated::{CuratedKb, CuratedTriple};
use crate::ontology::OntologyPredicate;
use crate::world::World;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One planted why-question with its ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    /// Source entity canonical name.
    pub source: String,
    /// Target entity canonical name.
    pub target: String,
    /// The coherent path (canonical names, inclusive of endpoints).
    pub expected_path: Vec<String>,
    /// The incoherent same-length decoy path.
    pub decoy_path: Vec<String>,
}

/// Plant `n` explanation instances into `kb`, returning their ground truth.
///
/// Requires a world with at least ~4 companies per topic; instances whose
/// topic lacks enough members are skipped, so fewer than `n` may return.
pub fn plant_explanations(
    world: &World,
    kb: &mut CuratedKb,
    n: usize,
    seed: u64,
) -> Vec<Explanation> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    let mut out = Vec::new();

    // Group companies by topic.
    let mut by_topic: std::collections::HashMap<_, Vec<usize>> = Default::default();
    for &c in &world.companies {
        by_topic.entry(world.entity(c).topic).or_default().push(c);
    }
    let mut topics: Vec<_> = by_topic.keys().copied().collect();
    topics.sort_by_key(|t| t.name()); // HashMap order is nondeterministic
    if topics.len() < 2 {
        return out;
    }

    let mut used: std::collections::HashSet<usize> = Default::default();
    let mut attempts = 0;
    while out.len() < n && attempts < n * 20 {
        attempts += 1;
        let topic = *topics.choose(&mut rng).expect("non-empty");
        let members: Vec<usize> = by_topic[&topic]
            .iter()
            .copied()
            .filter(|c| !used.contains(c))
            .collect();
        if members.len() < 3 {
            continue;
        }
        let mut picks = members.clone();
        picks.shuffle(&mut rng);
        let (a, b, c) = (picks[0], picks[1], picks[2]);

        // Hub from a different topic.
        let other_topic = *topics
            .iter()
            .filter(|t| **t != topic)
            .collect::<Vec<_>>()
            .choose(&mut rng)
            .expect("≥2 topics");
        let hub_members = &by_topic[other_topic];
        let Some(&hub) = hub_members.choose(&mut rng) else {
            continue;
        };
        if hub == a || hub == c {
            continue;
        }

        // Coherent path: A -partneredWith-> B -investedIn-> C.
        kb.triples.push(CuratedTriple {
            subject: a,
            predicate: OntologyPredicate::PartneredWith,
            object: b,
        });
        kb.triples.push(CuratedTriple {
            subject: b,
            predicate: OntologyPredicate::InvestedIn,
            object: c,
        });
        // Decoy: A -competesWith-> H -partneredWith-> C, same length.
        kb.triples.push(CuratedTriple {
            subject: a,
            predicate: OntologyPredicate::CompetesWith,
            object: hub,
        });
        kb.triples.push(CuratedTriple {
            subject: hub,
            predicate: OntologyPredicate::PartneredWith,
            object: c,
        });
        // Fatten the hub so degree-driven baselines get pulled toward it.
        for _ in 0..4 {
            if let Some(&x) = world.companies.choose(&mut rng) {
                if x != hub {
                    kb.triples.push(CuratedTriple {
                        subject: hub,
                        predicate: OntologyPredicate::PartneredWith,
                        object: x,
                    });
                }
            }
        }

        for x in [a, b, c] {
            used.insert(x);
        }
        let name = |i: usize| world.entity(i).name.clone();
        out.push(Explanation {
            source: name(a),
            target: name(c),
            expected_path: vec![name(a), name(b), name(c)],
            decoy_path: vec![name(a), name(hub), name(c)],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn setup(n: usize) -> (World, CuratedKb, Vec<Explanation>) {
        let world = World::generate(&WorldConfig {
            companies: 60,
            ..Default::default()
        });
        let mut kb = CuratedKb::generate(&world, 7);
        let ex = plant_explanations(&world, &mut kb, n, 13);
        (world, kb, ex)
    }

    #[test]
    fn plants_requested_instances() {
        let (_, _, ex) = setup(5);
        assert_eq!(ex.len(), 5);
    }

    #[test]
    fn expected_path_is_topically_coherent() {
        let (world, _, ex) = setup(5);
        for e in &ex {
            let topics: Vec<_> = e
                .expected_path
                .iter()
                .map(|n| world.entity(world.by_name(n).unwrap()).topic)
                .collect();
            assert!(
                topics.windows(2).all(|w| w[0] == w[1]),
                "incoherent expected path"
            );
            // Decoy hub breaks the topic.
            let hub = &e.decoy_path[1];
            let hub_topic = world.entity(world.by_name(hub).unwrap()).topic;
            assert_ne!(hub_topic, topics[0], "decoy hub shares the topic");
        }
    }

    #[test]
    fn planted_edges_exist_in_kb() {
        let (world, kb, ex) = setup(3);
        for e in &ex {
            for hop in e.expected_path.windows(2) {
                let s = world.by_name(&hop[0]).unwrap();
                let o = world.by_name(&hop[1]).unwrap();
                assert!(
                    kb.triples.iter().any(|t| t.subject == s && t.object == o),
                    "missing planted edge {} -> {}",
                    hop[0],
                    hop[1]
                );
            }
        }
    }

    #[test]
    fn decoy_has_same_length_as_expected() {
        let (_, _, ex) = setup(5);
        for e in &ex {
            assert_eq!(e.expected_path.len(), e.decoy_path.len());
            assert_eq!(e.expected_path.first(), e.decoy_path.first());
            assert_eq!(e.expected_path.last(), e.decoy_path.last());
            assert_ne!(e.expected_path[1], e.decoy_path[1]);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let world = World::generate(&WorldConfig::default());
        let mut kb1 = CuratedKb::generate(&world, 7);
        let mut kb2 = CuratedKb::generate(&world, 7);
        let a = plant_explanations(&world, &mut kb1, 4, 99);
        let b = plant_explanations(&world, &mut kb2, 4, 99);
        assert_eq!(
            a.iter().map(|e| &e.expected_path).collect::<Vec<_>>(),
            b.iter().map(|e| &e.expected_path).collect::<Vec<_>>()
        );
    }
}
