//! Adversarial workload scenario generators (ROADMAP item 5).
//!
//! The base [`crate::articles::ArticleStream`] exercises one happy-path
//! regime: known entities, monotone facts, uniform arrival. The four
//! generators here produce the workloads a *dynamic* KG is actually for —
//! each deterministic in its seed, each carrying an evolving ground-truth
//! [`Oracle`] so the harness (`nous-bench`) can score answer correctness
//! at timed checkpoints:
//!
//! - **emerging** — entities unseen at checkpoint time arrive mid-stream
//!   (EMERGE's setting): the second half of the stream is narrated by
//!   companies absent from the world, the curated KB and the gazetteer,
//!   so extraction must type them heuristically and mint them.
//! - **contradiction** — later articles supersede earlier facts (ATOM's
//!   revision axis): companies relocate, so `(X, isLocatedIn, old)` must
//!   be invalidated or decayed once `(X, isLocatedIn, new)` is admitted.
//! - **burst_skew** — hot-key entity skew plus open-loop bursts: most
//!   facts involve one hot entity and most articles land on three burst
//!   days, stressing per-batch latency and reinforcement dedup.
//! - **noisy** — malformed/adversarial documents interleaved with clean
//!   ones: garbage tokens, negations, self-loops, pronoun soup —
//!   exercising quarantine, quality gates and disambiguation misses.
//!
//! Sentences use only the unambiguous active templates (no aliasing, no
//! coreference), so scoring noise measures the *system*, not the corpus.

use crate::articles::{render_date, Article, GroundFact};
use crate::curated::CuratedKb;
use crate::ontology::OntologyPredicate;
use crate::world::{World, WorldConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The four workload regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    Emerging,
    Contradiction,
    BurstSkew,
    Noisy,
}

impl Regime {
    pub const ALL: [Regime; 4] = [
        Regime::Emerging,
        Regime::Contradiction,
        Regime::BurstSkew,
        Regime::Noisy,
    ];

    /// Stable machine name (JSON keys, CLI selection).
    pub fn name(self) -> &'static str {
        match self {
            Regime::Emerging => "emerging",
            Regime::Contradiction => "contradiction",
            Regime::BurstSkew => "burst_skew",
            Regime::Noisy => "noisy",
        }
    }

    /// Per-regime RNG salt so regimes sharing a seed still diverge.
    fn salt(self) -> u64 {
        match self {
            Regime::Emerging => 0x9e37_79b9_7f4a_7c15,
            Regime::Contradiction => 0xc2b2_ae3d_27d4_eb4f,
            Regime::BurstSkew => 0x1656_67b1_9e37_79f9,
            Regime::Noisy => 0x27d4_eb2f_1656_67c5,
        }
    }
}

/// Parameters of scenario generation.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub regime: Regime,
    pub seed: u64,
    /// Total articles in the stream.
    pub articles: usize,
    /// Stream horizon in days.
    pub days: u64,
    /// Companies in the base world.
    pub companies: usize,
}

impl ScenarioConfig {
    /// CI-sized configuration: seconds per regime end-to-end.
    pub fn smoke(regime: Regime) -> Self {
        Self {
            regime,
            seed: 11,
            articles: 48,
            days: 720,
            companies: 12,
        }
    }

    /// Bench-sized configuration.
    pub fn demo(regime: Regime) -> Self {
        Self {
            regime,
            seed: 11,
            articles: 200,
            days: 1460,
            companies: 20,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One ground-truth transition: at `day`, `(subject, predicate, object)`
/// becomes true (`asserted`) or stops being true (revision).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleEvent {
    pub day: u64,
    pub subject: String,
    pub predicate: OntologyPredicate,
    pub object: String,
    pub asserted: bool,
}

/// The evolving ground truth of a scenario: an event log over triples.
/// Unlike the per-article `facts` ledger, the oracle models *revision* —
/// a retraction event removes a triple from the truth set from that day
/// on, which is what correctness-under-revision is scored against.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Oracle {
    pub events: Vec<OracleEvent>,
}

impl Oracle {
    fn record(&mut self, day: u64, s: &str, p: OntologyPredicate, o: &str, asserted: bool) {
        self.events.push(OracleEvent {
            day,
            subject: s.to_owned(),
            predicate: p,
            object: o.to_owned(),
            asserted,
        });
    }

    /// `(s, p, o)` becomes true at `day`.
    pub fn assert_fact(&mut self, day: u64, s: &str, p: OntologyPredicate, o: &str) {
        self.record(day, s, p, o, true);
    }

    /// `(s, p, o)` stops being true at `day` (superseded/revised).
    pub fn retract_fact(&mut self, day: u64, s: &str, p: OntologyPredicate, o: &str) {
        self.record(day, s, p, o, false);
    }

    /// The set of triples true at end of `day`, applying events in log
    /// order (ties resolved by insertion order, which generators emit
    /// retract-before-assert for a revision on the same day).
    pub fn truth_at(&self, day: u64) -> BTreeSet<(String, String, String)> {
        let mut truth = BTreeSet::new();
        for e in &self.events {
            if e.day > day {
                continue;
            }
            let key = (
                e.subject.clone(),
                e.predicate.name().to_owned(),
                e.object.clone(),
            );
            if e.asserted {
                truth.insert(key);
            } else {
                truth.remove(&key);
            }
        }
        truth
    }

    /// Triples that were asserted at some point and later retracted by
    /// `day` — the set a revising system must have invalidated.
    pub fn retracted_by(&self, day: u64) -> BTreeSet<(String, String, String)> {
        let mut retracted = BTreeSet::new();
        for e in &self.events {
            if e.day > day {
                continue;
            }
            let key = (
                e.subject.clone(),
                e.predicate.name().to_owned(),
                e.object.clone(),
            );
            if e.asserted {
                retracted.remove(&key);
            } else {
                retracted.insert(key);
            }
        }
        retracted
    }

    /// The predicates the oracle makes claims about; scoring restricts
    /// the predicted set to these so unrelated mapper noise on other
    /// predicates doesn't dominate precision.
    pub fn predicates(&self) -> BTreeSet<String> {
        self.events
            .iter()
            .map(|e| e.predicate.name().to_owned())
            .collect()
    }
}

/// `n` evenly spaced checkpoint days over `[horizon/n, horizon]`.
pub fn checkpoints(horizon: u64, n: usize) -> Vec<u64> {
    (1..=n as u64).map(|k| horizon * k / n as u64).collect()
}

/// Read the scenario seed from `NOUS_SCENARIO_SEED` (like the chaos
/// suite's `NOUS_CHAOS_SEED`), falling back to `default`.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("NOUS_SCENARIO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A generated scenario: the world/KB to bootstrap the KG from, the
/// article stream to ingest, and the evolving ground truth to score
/// against. Regime-specific metadata rides along for the harness.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub regime: Regime,
    pub world: World,
    pub kb: CuratedKb,
    /// Sorted by day; `Article::id` doubles as the pipeline doc id.
    pub articles: Vec<Article>,
    pub oracle: Oracle,
    /// Canonical names of entities absent from world/KB/gazetteer at
    /// checkpoint time (emerging regime; empty otherwise).
    pub emerging: Vec<String>,
    /// First day an emerging entity appears (0 when unused).
    pub emerge_day: u64,
    /// Doc ids of deliberately malformed articles (noisy regime).
    pub noisy_docs: Vec<u64>,
    /// The skew target (burst regime).
    pub hot_entity: Option<String>,
}

/// Generate the scenario for `cfg` — deterministic in `cfg` alone
/// (no environment, no thread count, no global state).
pub fn generate(cfg: &ScenarioConfig) -> Scenario {
    let world = World::generate(&WorldConfig {
        seed: cfg.seed,
        companies: cfg.companies,
        people: (cfg.companies / 2).max(4),
        products: (cfg.companies / 2).max(4),
        ..Default::default()
    });
    let kb = CuratedKb::generate(&world, cfg.seed);
    let rng = StdRng::seed_from_u64(cfg.seed ^ cfg.regime.salt());
    match cfg.regime {
        Regime::Emerging => emerging(cfg, world, kb, rng),
        Regime::Contradiction => contradiction(cfg, world, kb, rng),
        Regime::BurstSkew => burst_skew(cfg, world, kb, rng),
        Regime::Noisy => noisy(cfg, world, kb, rng),
    }
}

/// Company-to-company predicates safe for any subject/object pair.
const EVENT_PREDS: [OntologyPredicate; 4] = [
    OntologyPredicate::PartneredWith,
    OntologyPredicate::InvestedIn,
    OntologyPredicate::SuppliesTo,
    OntologyPredicate::Acquired,
];

/// Render one fact through an unambiguous active template (a subset of
/// the main generator's surface forms, variant-selected not rng-driven).
fn sentence(pred: OntologyPredicate, s: &str, o: &str, day: u64, variant: usize) -> String {
    use OntologyPredicate as P;
    match pred {
        // Only the *seeded* surface form ("base_in", see
        // `nous_core::seeds`): synonyms like "headquartered in" are
        // learned by mapper expansion, which smoke-sized streams are too
        // short to trigger — and a scenario must admit deterministically.
        P::IsLocatedIn => {
            let _ = variant;
            format!("{s} is based in {o}.")
        }
        P::Acquired => format!("{s} acquired {o} in {}.", render_date(day)),
        P::InvestedIn => format!("{s} invested in {o}."),
        P::PartneredWith => format!("{s} partnered with {o}."),
        P::SuppliesTo => format!("{s} supplies to {o}."),
        P::CompetesWith => format!("{s} competes with {o}."),
        P::FoundedBy => format!("{o} founded {s}."),
        P::Manufactures => format!("{s} makes the {o}."),
        P::Deploys => format!("{s} deployed the {o}."),
    }
}

/// Build an article from pre-rendered sentences + its ground-truth ledger.
fn article(id: u64, day: u64, sentences: Vec<String>, facts: Vec<GroundFact>) -> Article {
    let headline = facts
        .first()
        .map(|f| format!("{} {} {}", f.subject, f.predicate.name(), f.object))
        .unwrap_or_else(|| "Market roundup".to_owned());
    Article {
        id,
        day,
        headline,
        body: sentences.join(" "),
        facts,
    }
}

/// A single-fact article; records the fact in the oracle.
#[allow(clippy::too_many_arguments)]
fn fact_article(
    id: u64,
    day: u64,
    pred: OntologyPredicate,
    s: &str,
    o: &str,
    variant: usize,
    oracle: &mut Oracle,
) -> Article {
    oracle.assert_fact(day, s, pred, o);
    article(
        id,
        day,
        vec![sentence(pred, s, o, day, variant)],
        vec![GroundFact {
            subject: s.to_owned(),
            predicate: pred,
            object: o.to_owned(),
            day,
        }],
    )
}

/// Finalise a `(day, sentences, facts)` draft list into the sorted,
/// id-stamped stream. Stable sort: same-day articles keep emit order.
fn finalize(mut drafts: Vec<Article>) -> Vec<Article> {
    drafts.sort_by_key(|a| a.day);
    for (id, a) in drafts.iter_mut().enumerate() {
        a.id = id as u64;
        for f in &mut a.facts {
            debug_assert_eq!(f.day, a.day);
        }
    }
    drafts
}

/// Names guaranteed absent from the base world: heads disjoint from
/// `vocab::COMPANY_HEADS`, suffixes drawn from the NER org-suffix list so
/// heuristic typing still works without a gazetteer entry.
const EMERGING_HEADS: [&str; 8] = [
    "Zephyra",
    "Quantara",
    "Veloria",
    "Noctilus",
    "Brightgale",
    "Solstara",
    "Kestrelline",
    "Auroria",
];
const EMERGING_SUFFIXES: [&str; 4] = ["Robotics", "Systems", "Labs", "Aerospace"];

/// Emerging entities: the first half of the stream narrates the known
/// world; from `emerge_day` on, brand-new companies (unknown to world,
/// KB and gazetteer) drive the facts, so the pipeline must type them
/// heuristically, mint vertices mid-stream and serve queries about them.
fn emerging(cfg: &ScenarioConfig, world: World, kb: CuratedKb, mut rng: StdRng) -> Scenario {
    let emerge_day = cfg.days / 2;
    let n_emerging = (cfg.companies / 3).clamp(2, EMERGING_HEADS.len());
    let emerging_names: Vec<String> = (0..n_emerging)
        .map(|i| {
            format!(
                "{} {}",
                EMERGING_HEADS[i],
                EMERGING_SUFFIXES[i % EMERGING_SUFFIXES.len()]
            )
        })
        .collect();

    let mut oracle = Oracle::default();
    let mut drafts = Vec::with_capacity(cfg.articles);
    let pre = cfg.articles / 2;
    let post = cfg.articles - pre;

    // Phase 1: steady state over the known world.
    for i in 0..pre {
        let day = (i as u64 * emerge_day.saturating_sub(1)) / (pre as u64).max(1);
        let pred = EVENT_PREDS[rng.gen_range(0..EVENT_PREDS.len())];
        let (s, o) = distinct_pair(&world, &mut rng);
        drafts.push(fact_article(0, day, pred, s, o, i, &mut oracle));
    }

    // Phase 2: the newcomers arrive and dominate the news.
    for i in 0..post {
        let day = emerge_day + (i as u64 * (cfg.days - emerge_day)) / (post as u64).max(1);
        let subject = &emerging_names[i % emerging_names.len()];
        let object = company_name(&world, &mut rng);
        let pred = if i % 3 == 0 {
            OntologyPredicate::Acquired
        } else {
            OntologyPredicate::PartneredWith
        };
        drafts.push(fact_article(0, day, pred, subject, object, i, &mut oracle));
    }

    Scenario {
        regime: cfg.regime,
        world,
        kb,
        articles: finalize(drafts),
        oracle,
        emerging: emerging_names,
        emerge_day,
        noisy_docs: Vec::new(),
        hot_entity: None,
    }
}

/// Contradiction/revision: half the companies relocate (twice). Their
/// curated HQ triples are *removed* from the KB so the superseded fact is
/// an extracted edge revision can tombstone; each move is followed by
/// confirmations of the new location, which both reinforce it and decay
/// the old one below the policy floor.
fn contradiction(
    cfg: &ScenarioConfig,
    world: World,
    mut kb: CuratedKb,
    mut rng: StdRng,
) -> Scenario {
    let movers: Vec<usize> = world.companies.iter().copied().step_by(2).collect();
    let mover_set: BTreeSet<usize> = movers.iter().copied().collect();
    kb.triples.retain(|t| {
        !(t.predicate == OntologyPredicate::IsLocatedIn && mover_set.contains(&t.subject))
    });

    let mut oracle = Oracle::default();
    let mut drafts = Vec::new();
    let loc = OntologyPredicate::IsLocatedIn;
    for (k, &m) in movers.iter().enumerate() {
        let name = world.entity(m).name.clone();
        let mut cities = world.locations.clone();
        cities.shuffle(&mut rng);
        let homes: Vec<String> = cities
            .iter()
            .take(3)
            .map(|&c| world.entity(c).name.clone())
            .collect();
        let spread = |phase: u64, k: u64| phase * cfg.days / 4 + (k % 7) * (cfg.days / 64).max(1);
        // Initial HQ, then two relocations, each echoed twice.
        let d0 = spread(0, k as u64);
        oracle.assert_fact(d0, &name, loc, &homes[0]);
        drafts.push(article(
            0,
            d0,
            vec![sentence(loc, &name, &homes[0], d0, 0)],
            vec![ground(&name, loc, &homes[0], d0)],
        ));
        for (mv, home) in homes.iter().enumerate().skip(1) {
            let d = spread(mv as u64, k as u64);
            oracle.retract_fact(d, &name, loc, &homes[mv - 1]);
            oracle.assert_fact(d, &name, loc, home);
            drafts.push(article(
                0,
                d,
                vec![sentence(loc, &name, home, d, 0)],
                vec![ground(&name, loc, home, d)],
            ));
            for echo in 1..3u64 {
                let de = d + echo * (cfg.days / 32).max(1);
                drafts.push(article(
                    0,
                    de,
                    vec![sentence(loc, &name, home, de, echo as usize)],
                    vec![ground(&name, loc, home, de)],
                ));
            }
        }
    }

    // Filler facts about non-movers keep the stream realistic and give
    // precision/recall some stable mass.
    let filler = cfg.articles.saturating_sub(drafts.len());
    for i in 0..filler {
        let day = (i as u64 * cfg.days) / (filler as u64).max(1);
        let pred = EVENT_PREDS[rng.gen_range(0..EVENT_PREDS.len())];
        let (s, o) = distinct_pair(&world, &mut rng);
        drafts.push(fact_article(0, day, pred, s, o, i, &mut oracle));
    }

    Scenario {
        regime: cfg.regime,
        world,
        kb,
        articles: finalize(drafts),
        oracle,
        emerging: Vec::new(),
        emerge_day: 0,
        noisy_docs: Vec::new(),
        hot_entity: None,
    }
}

/// Burst/skew arrival: ~70% of articles land on three burst days
/// (open-loop overload) and ~70% of facts involve one hot company
/// (hot-key skew). Repeated hot pairs exercise reinforcement dedup.
fn burst_skew(cfg: &ScenarioConfig, world: World, kb: CuratedKb, mut rng: StdRng) -> Scenario {
    let hot = world.companies[0];
    let hot_name = world.entity(hot).name.clone();
    let burst_days = [cfg.days / 4, cfg.days / 2, 3 * cfg.days / 4];

    let mut oracle = Oracle::default();
    let mut drafts = Vec::with_capacity(cfg.articles);
    for i in 0..cfg.articles {
        let day = if rng.gen_bool(0.7) {
            burst_days[rng.gen_range(0..burst_days.len())]
        } else {
            rng.gen_range(0..cfg.days)
        };
        let pred = EVENT_PREDS[rng.gen_range(0..EVENT_PREDS.len())];
        let (s, o) = if rng.gen_bool(0.7) {
            // Hot as subject (or object, keeping the pair distinct).
            let other = company_name_not(&world, &mut rng, hot);
            if rng.gen_bool(0.7) {
                (hot_name.as_str(), other)
            } else {
                (other, hot_name.as_str())
            }
        } else {
            distinct_pair(&world, &mut rng)
        };
        drafts.push(fact_article(0, day, pred, s, o, i, &mut oracle));
    }

    Scenario {
        regime: cfg.regime,
        world,
        kb,
        articles: finalize(drafts),
        oracle,
        emerging: Vec::new(),
        emerge_day: 0,
        noisy_docs: Vec::new(),
        hot_entity: Some(hot_name),
    }
}

/// Noisy extraction: ~40% of documents are malformed or adversarial —
/// symbol garbage, negated claims, self-loops, pronoun soup, misleading
/// unicode — interleaved with clean fact articles. The oracle contains
/// only the clean facts, so admitted junk shows up as lost precision.
fn noisy(cfg: &ScenarioConfig, world: World, kb: CuratedKb, mut rng: StdRng) -> Scenario {
    let mut oracle = Oracle::default();
    let mut drafts = Vec::with_capacity(cfg.articles);
    let mut noisy_flags: Vec<bool> = Vec::with_capacity(cfg.articles);
    for i in 0..cfg.articles {
        let day = (i as u64 * cfg.days) / (cfg.articles as u64 - 1).max(1);
        let is_noise = rng.gen_bool(0.4);
        noisy_flags.push(is_noise);
        if !is_noise {
            let pred = EVENT_PREDS[rng.gen_range(0..EVENT_PREDS.len())];
            let (s, o) = distinct_pair(&world, &mut rng);
            drafts.push(fact_article(0, day, pred, s, o, i, &mut oracle));
            continue;
        }
        let (s, o) = distinct_pair(&world, &mut rng);
        let body = match i % 6 {
            0 => "%%% ### @@@ ~~~ ||| ^^^ &&& *** $$$ !!!".to_owned(),
            1 => format!("信頼性 ▒▒▒ Ω≈ç√∫ \u{202e}γκρ {s} ??? 🛰️."),
            2 => format!("{s} never acquired {o}."),
            3 => format!("{s} acquired {s} in {}.", render_date(day)),
            4 => "It acquired them. They partnered with it. He invested in her.".to_owned(),
            _ => format!(
                "the market moved sideways and {} analysts kept talking without pause or punctuation about nothing in particular all {} day long",
                s.to_lowercase(),
                o.to_lowercase()
            ),
        };
        drafts.push(article(0, day, vec![body], Vec::new()));
    }

    let articles = finalize(drafts);
    // `finalize` keeps emit order within a day, so flags align by index.
    let noisy_docs: Vec<u64> = articles
        .iter()
        .zip(&noisy_flags)
        .filter(|(_, &flag)| flag)
        .map(|(a, _)| a.id)
        .collect();

    Scenario {
        regime: cfg.regime,
        world,
        kb,
        articles,
        oracle,
        emerging: Vec::new(),
        emerge_day: 0,
        noisy_docs,
        hot_entity: None,
    }
}

fn ground(s: &str, p: OntologyPredicate, o: &str, day: u64) -> GroundFact {
    GroundFact {
        subject: s.to_owned(),
        predicate: p,
        object: o.to_owned(),
        day,
    }
}

fn company_name<'a>(world: &'a World, rng: &mut StdRng) -> &'a str {
    let idx = *world.companies.choose(rng).expect("companies");
    &world.entity(idx).name
}

fn company_name_not<'a>(world: &'a World, rng: &mut StdRng, not: usize) -> &'a str {
    let mut idx = *world.companies.choose(rng).expect("companies");
    let mut guard = 0;
    while idx == not && guard < 16 {
        idx = *world.companies.choose(rng).expect("companies");
        guard += 1;
    }
    &world.entity(idx).name
}

fn distinct_pair<'a>(world: &'a World, rng: &mut StdRng) -> (&'a str, &'a str) {
    let s = *world.companies.choose(rng).expect("companies");
    let o_name = company_name_not(world, rng, s);
    (&world.entity(s).name, o_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_json(cfg: &ScenarioConfig) -> String {
        serde_json::to_string(&generate(cfg).articles).expect("serialize")
    }

    #[test]
    fn every_regime_is_deterministic_per_seed() {
        for regime in Regime::ALL {
            let cfg = ScenarioConfig::smoke(regime);
            assert_eq!(
                stream_json(&cfg),
                stream_json(&cfg),
                "{} must be byte-identical for a fixed seed",
                regime.name()
            );
            let other = cfg.clone().with_seed(999);
            assert_ne!(
                stream_json(&cfg),
                stream_json(&other),
                "{} must vary with the seed",
                regime.name()
            );
        }
    }

    #[test]
    fn streams_are_sorted_and_ids_match_positions() {
        for regime in Regime::ALL {
            let s = generate(&ScenarioConfig::smoke(regime));
            assert!(s.articles.windows(2).all(|w| w[0].day <= w[1].day));
            for (i, a) in s.articles.iter().enumerate() {
                assert_eq!(a.id, i as u64);
            }
        }
    }

    #[test]
    fn emerging_entities_are_unknown_to_the_world() {
        let s = generate(&ScenarioConfig::smoke(Regime::Emerging));
        assert!(!s.emerging.is_empty());
        for name in &s.emerging {
            assert!(s.world.by_name(name).is_none(), "{name} leaked into world");
        }
        // They only appear from emerge_day on.
        for a in &s.articles {
            if a.day < s.emerge_day {
                for name in &s.emerging {
                    assert!(!a.body.contains(name.as_str()));
                }
            }
        }
        assert!(s
            .articles
            .iter()
            .any(|a| s.emerging.iter().any(|n| a.body.contains(n.as_str()))));
    }

    #[test]
    fn contradiction_oracle_retracts_superseded_homes() {
        let cfg = ScenarioConfig::smoke(Regime::Contradiction);
        let s = generate(&cfg);
        // Movers lost their curated HQ triple.
        let mover = s
            .oracle
            .events
            .iter()
            .find(|e| e.predicate == OntologyPredicate::IsLocatedIn && !e.asserted)
            .expect("at least one retraction");
        // The first home is true early, gone at the horizon.
        let early = s.oracle.truth_at(mover.day - 1);
        let late = s.oracle.truth_at(cfg.days);
        let key = (
            mover.subject.clone(),
            "isLocatedIn".to_owned(),
            mover.object.clone(),
        );
        assert!(early.contains(&key), "home true before the move");
        assert!(!late.contains(&key), "home retracted at the horizon");
        assert!(s.oracle.retracted_by(cfg.days).contains(&key));
        // Exactly one location per mover remains at the horizon.
        let subjects: BTreeSet<&String> = late
            .iter()
            .filter(|(_, p, _)| p == "isLocatedIn")
            .map(|(s, _, _)| s)
            .collect();
        for subj in subjects {
            let homes = late
                .iter()
                .filter(|(s, p, _)| s == subj && p == "isLocatedIn")
                .count();
            assert_eq!(homes, 1, "{subj} must have one true home");
        }
    }

    #[test]
    fn burst_skew_concentrates_arrival_and_subject() {
        let cfg = ScenarioConfig::smoke(Regime::BurstSkew);
        let s = generate(&cfg);
        let hot = s.hot_entity.as_deref().expect("hot entity");
        let burst_days = [cfg.days / 4, cfg.days / 2, 3 * cfg.days / 4];
        let on_burst = s
            .articles
            .iter()
            .filter(|a| burst_days.contains(&a.day))
            .count();
        assert!(
            on_burst * 2 > s.articles.len(),
            "bursts must carry most arrivals ({on_burst}/{})",
            s.articles.len()
        );
        let hot_facts = s
            .articles
            .iter()
            .flat_map(|a| &a.facts)
            .filter(|f| f.subject == hot || f.object == hot)
            .count();
        let total: usize = s.articles.iter().map(|a| a.facts.len()).sum();
        assert!(hot_facts * 2 > total, "hot key must dominate");
    }

    #[test]
    fn noisy_marks_malformed_docs_and_keeps_oracle_clean() {
        let s = generate(&ScenarioConfig::smoke(Regime::Noisy));
        assert!(!s.noisy_docs.is_empty());
        let noisy: BTreeSet<u64> = s.noisy_docs.iter().copied().collect();
        for a in &s.articles {
            if noisy.contains(&a.id) {
                assert!(a.facts.is_empty(), "noise docs carry no ground truth");
            } else {
                assert!(!a.facts.is_empty(), "clean docs narrate a fact");
            }
        }
        // Oracle truth equals the union of clean-article facts.
        let truth = s.oracle.truth_at(u64::MAX);
        for a in s.articles.iter().filter(|a| !noisy.contains(&a.id)) {
            for f in &a.facts {
                assert!(truth.contains(&(
                    f.subject.clone(),
                    f.predicate.name().to_owned(),
                    f.object.clone()
                )));
            }
        }
    }

    #[test]
    fn seed_env_helper_parses() {
        // No env manipulation (tests run in parallel): only check the
        // fallback path when the variable is absent or unparseable.
        if std::env::var("NOUS_SCENARIO_SEED").is_err() {
            assert_eq!(seed_from_env(42), 42);
        }
    }
}
