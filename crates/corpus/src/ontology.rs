//! The target ontology of the custom knowledge graph.
//!
//! §3.3: raw OpenIE predicates are mapped onto "the target ontology" — a
//! fixed inventory of curated relation types (YAGO-style camel-case names).
//! Each ontology predicate lists the verb-lemma surface forms the corpus
//! generator uses to express it; the predicate-mapping module has to
//! *learn* this table from seed examples (it never reads it).

use serde::{Deserialize, Serialize};

/// One relation type of the target ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OntologyPredicate {
    /// Organization → Location.
    IsLocatedIn,
    /// Organization → Person (inverse surface: "P founded O").
    FoundedBy,
    /// Organization → Product.
    Manufactures,
    /// Organization → Organization.
    Acquired,
    /// Organization → Organization.
    InvestedIn,
    /// Organization → Organization.
    CompetesWith,
    /// Organization → Organization.
    PartneredWith,
    /// Organization → Organization.
    SuppliesTo,
    /// Organization → Topic-ish noun phrase ("X deployed drones for Y").
    Deploys,
}

/// All ontology predicates in a stable order.
pub const ONTOLOGY: [OntologyPredicate; 9] = [
    OntologyPredicate::IsLocatedIn,
    OntologyPredicate::FoundedBy,
    OntologyPredicate::Manufactures,
    OntologyPredicate::Acquired,
    OntologyPredicate::InvestedIn,
    OntologyPredicate::CompetesWith,
    OntologyPredicate::PartneredWith,
    OntologyPredicate::SuppliesTo,
    OntologyPredicate::Deploys,
];

impl OntologyPredicate {
    /// Canonical YAGO-style name used as the KG predicate.
    pub fn name(self) -> &'static str {
        match self {
            OntologyPredicate::IsLocatedIn => "isLocatedIn",
            OntologyPredicate::FoundedBy => "foundedBy",
            OntologyPredicate::Manufactures => "manufactures",
            OntologyPredicate::Acquired => "acquired",
            OntologyPredicate::InvestedIn => "investedIn",
            OntologyPredicate::CompetesWith => "competesWith",
            OntologyPredicate::PartneredWith => "partneredWith",
            OntologyPredicate::SuppliesTo => "suppliesTo",
            OntologyPredicate::Deploys => "deploys",
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        ONTOLOGY.iter().copied().find(|p| p.name() == name)
    }

    /// Raw OpenIE predicates (normalised relation phrases from `nous-text`)
    /// that express this relation in the generated corpus. The boolean marks
    /// surface forms whose arguments are *inverted* with respect to the
    /// ontology direction ("P founded O" → `(O, foundedBy, P)`).
    pub fn surface_forms(self) -> &'static [(&'static str, bool)] {
        match self {
            OntologyPredicate::IsLocatedIn => &[
                ("base_in", false),
                ("headquarter_in", false),
                ("operate_in", false),
                ("locate_in", false),
            ],
            OntologyPredicate::FoundedBy => &[("found", true), ("create", true)],
            OntologyPredicate::Manufactures => &[
                ("manufacture", false),
                ("make", false),
                ("produce", false),
                ("build", false),
                ("ship", false),
            ],
            OntologyPredicate::Acquired => {
                &[("acquire", false), ("buy", false), ("purchase", false)]
            }
            OntologyPredicate::InvestedIn => &[("invest_in", false), ("fund", false)],
            OntologyPredicate::CompetesWith => &[("compete_with", false)],
            OntologyPredicate::PartneredWith => &[
                ("partner_with", false),
                ("join_with", false),
                ("sign_with", false),
            ],
            OntologyPredicate::SuppliesTo => &[
                ("supply_to", false),
                ("sell_to", false),
                ("deliver_to", false),
            ],
            OntologyPredicate::Deploys => &[("deploy", false), ("use", false), ("fly", false)],
        }
    }

    /// Is the relation plausibly time-stamped news (vs. static background)?
    /// Static relations dominate the curated KB; eventful ones dominate the
    /// article stream.
    pub fn is_eventful(self) -> bool {
        matches!(
            self,
            OntologyPredicate::Acquired
                | OntologyPredicate::InvestedIn
                | OntologyPredicate::PartneredWith
                | OntologyPredicate::SuppliesTo
                | OntologyPredicate::Deploys
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in ONTOLOGY {
            assert_eq!(OntologyPredicate::from_name(p.name()), Some(p));
        }
        assert_eq!(OntologyPredicate::from_name("noSuch"), None);
    }

    #[test]
    fn surface_forms_are_disjoint_across_predicates() {
        let mut seen = std::collections::HashMap::new();
        for p in ONTOLOGY {
            for (s, _) in p.surface_forms() {
                if let Some(prev) = seen.insert(*s, p) {
                    panic!("{s} maps to both {prev:?} and {p:?}");
                }
            }
        }
    }

    #[test]
    fn every_predicate_has_surface_forms() {
        for p in ONTOLOGY {
            assert!(!p.surface_forms().is_empty());
        }
    }

    #[test]
    fn eventful_split_is_sane() {
        assert!(OntologyPredicate::Acquired.is_eventful());
        assert!(!OntologyPredicate::IsLocatedIn.is_eventful());
    }
}
