//! Citation-analytics generator (the paper's third domain).
//!
//! §3.1: "Algorithms in NOUS are being used for developing custom
//! knowledge graphs for diverse domains: … 3) citation analytics from
//! bibliography databases." Bibliography records are structured, so — like
//! the insider-threat domain — they enter the dynamic KG through a direct
//! adapter: `authoredBy`, `publishedIn` and `cites` facts dated by
//! publication year.
//!
//! The generator plants a **seminal-paper burst**: one paper becomes a
//! field-defining reference, and in the following years a wave of new
//! papers cites it *and each other* — the citation-cluster motif the
//! streaming miner should surface as an emerging research topic, and the
//! hub structure the coherence-based path search has to see past when
//! explaining how two papers relate.

use crate::vocab::Topic;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relation types of the bibliography ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CitePredicate {
    AuthoredBy,
    PublishedIn,
    Cites,
}

impl CitePredicate {
    pub fn name(self) -> &'static str {
        match self {
            CitePredicate::AuthoredBy => "authoredBy",
            CitePredicate::PublishedIn => "publishedIn",
            CitePredicate::Cites => "cites",
        }
    }
}

/// Entity labels.
pub const PAPER_LABEL: &str = "Paper";
pub const AUTHOR_LABEL: &str = "Author";
pub const VENUE_LABEL: &str = "Venue";

/// One bibliography entity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BibEntity {
    pub name: String,
    pub label: &'static str,
    pub topic: Topic,
}

/// One dated bibliography fact (day = days since the 2010 epoch).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BibFact {
    pub day: u64,
    pub subject: String,
    pub predicate: CitePredicate,
    pub object: String,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct CitationConfig {
    pub seed: u64,
    pub authors: usize,
    pub venues: usize,
    /// Papers per year before the burst.
    pub papers_per_year: usize,
    pub years: u64,
    /// Year offset (0-based) at which the seminal paper appears.
    pub burst_year: u64,
    /// Extra burst papers per post-burst year.
    pub burst_papers_per_year: usize,
}

impl Default for CitationConfig {
    fn default() -> Self {
        Self {
            seed: 47,
            authors: 40,
            venues: 5,
            papers_per_year: 18,
            years: 6,
            burst_year: 3,
            burst_papers_per_year: 14,
        }
    }
}

/// The generated bibliography.
#[derive(Debug, Clone)]
pub struct CitationScenario {
    pub entities: Vec<BibEntity>,
    /// Facts sorted by day.
    pub facts: Vec<BibFact>,
    /// The field-defining paper's name.
    pub seminal: String,
    /// Names of the burst papers (the emerging-topic cluster).
    pub burst_papers: Vec<String>,
}

/// Generate the scenario (deterministic in the seed).
pub fn generate(cfg: &CitationConfig) -> CitationScenario {
    assert!(
        cfg.burst_year < cfg.years,
        "burst must happen inside the horizon"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5be0_cd19_137e_2179);

    let authors: Vec<String> = (0..cfg.authors).map(|i| format!("Author {i:02}")).collect();
    let venues: Vec<String> = (0..cfg.venues)
        .map(|i| format!("Conf-{}", ["KDD", "ICDE", "VLDB", "WWW", "CIKM"][i % 5]))
        .collect();

    let mut entities: Vec<BibEntity> = Vec::new();
    for a in &authors {
        entities.push(BibEntity {
            name: a.clone(),
            label: AUTHOR_LABEL,
            topic: *Topic::ALL.choose(&mut rng).expect("non-empty"),
        });
    }
    for v in &venues {
        entities.push(BibEntity {
            name: v.clone(),
            label: VENUE_LABEL,
            topic: Topic::Finance,
        });
    }

    let mut facts: Vec<BibFact> = Vec::new();
    let mut papers: Vec<(String, Topic, u64)> = Vec::new(); // (name, topic, day)
    let mut seminal = String::new();
    let mut burst_papers = Vec::new();
    let mut paper_no = 0usize;

    let publish = |rng: &mut StdRng,
                   facts: &mut Vec<BibFact>,
                   entities: &mut Vec<BibEntity>,
                   papers: &mut Vec<(String, Topic, u64)>,
                   paper_no: &mut usize,
                   day: u64,
                   topic: Topic,
                   cite_pool: &[String]| {
        let name = format!("Paper {:03}", *paper_no);
        *paper_no += 1;
        entities.push(BibEntity {
            name: name.clone(),
            label: PAPER_LABEL,
            topic,
        });
        // Authors and venue.
        let n_authors = rng.gen_range(1..=3);
        for a in authors.choose_multiple(rng, n_authors) {
            facts.push(BibFact {
                day,
                subject: name.clone(),
                predicate: CitePredicate::AuthoredBy,
                object: a.clone(),
            });
        }
        facts.push(BibFact {
            day,
            subject: name.clone(),
            predicate: CitePredicate::PublishedIn,
            object: venues.choose(rng).expect("non-empty").clone(),
        });
        // Background citations to papers already published by `day`
        // (the fact loop interleaves background and burst papers, so
        // the pool can contain same-year papers with later dates).
        let eligible: Vec<&String> = papers.iter().filter(|p| p.2 <= day).map(|p| &p.0).collect();
        let n_cites = rng.gen_range(0..=3.min(eligible.len()));
        let older_picks: Vec<String> = eligible
            .choose_multiple(rng, n_cites)
            .map(|p| (*p).clone())
            .collect();
        for older in older_picks {
            facts.push(BibFact {
                day,
                subject: name.clone(),
                predicate: CitePredicate::Cites,
                object: older,
            });
        }
        for extra in cite_pool.choose_multiple(rng, cite_pool.len().min(2)) {
            if *extra != name {
                facts.push(BibFact {
                    day,
                    subject: name.clone(),
                    predicate: CitePredicate::Cites,
                    object: extra.clone(),
                });
            }
        }
        papers.push((name.clone(), topic, day));
        name
    };

    for year in 0..cfg.years {
        let day0 = year * 365;
        // Background publications spread over the year.
        for i in 0..cfg.papers_per_year {
            let day = day0 + (i as u64 * 365) / cfg.papers_per_year as u64;
            let topic = *Topic::ALL.choose(&mut rng).expect("non-empty");
            let name = publish(
                &mut rng,
                &mut facts,
                &mut entities,
                &mut papers,
                &mut paper_no,
                day,
                topic,
                &[],
            );
            if year == cfg.burst_year && i == 0 {
                seminal = name;
            }
        }
        // Post-burst: the emerging-topic cluster cites the seminal paper
        // and its recent siblings.
        if year > cfg.burst_year {
            for i in 0..cfg.burst_papers_per_year {
                let day = day0 + 30 + (i as u64 * 300) / cfg.burst_papers_per_year as u64;
                let mut pool = vec![seminal.clone()];
                pool.extend(burst_papers.iter().rev().take(3).cloned());
                let name = publish(
                    &mut rng,
                    &mut facts,
                    &mut entities,
                    &mut papers,
                    &mut paper_no,
                    day,
                    Topic::ConsumerDrones, // the hot topic
                    &pool,
                );
                burst_papers.push(name);
            }
        }
    }

    facts.sort_by(|a, b| a.day.cmp(&b.day).then_with(|| a.subject.cmp(&b.subject)));
    CitationScenario {
        entities,
        facts,
        seminal,
        burst_papers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_day_sorted() {
        let a = generate(&CitationConfig::default());
        let b = generate(&CitationConfig::default());
        assert_eq!(a.facts, b.facts);
        assert!(a.facts.windows(2).all(|w| w[0].day <= w[1].day));
        assert!(!a.seminal.is_empty());
        assert!(!a.burst_papers.is_empty());
    }

    #[test]
    fn citations_point_backward_in_time() {
        let s = generate(&CitationConfig::default());
        let day_of: std::collections::HashMap<&str, u64> = s
            .facts
            .iter()
            .filter(|f| f.predicate == CitePredicate::PublishedIn)
            .map(|f| (f.subject.as_str(), f.day))
            .collect();
        for f in &s.facts {
            if f.predicate == CitePredicate::Cites {
                let citing = day_of[f.subject.as_str()];
                let cited = day_of[f.object.as_str()];
                assert!(
                    cited <= citing,
                    "{} cites the future {}",
                    f.subject,
                    f.object
                );
            }
        }
    }

    #[test]
    fn burst_cluster_cites_the_seminal_paper() {
        let s = generate(&CitationConfig::default());
        let citing_seminal: std::collections::HashSet<&str> = s
            .facts
            .iter()
            .filter(|f| f.predicate == CitePredicate::Cites && f.object == s.seminal)
            .map(|f| f.subject.as_str())
            .collect();
        let burst_hits = s
            .burst_papers
            .iter()
            .filter(|p| citing_seminal.contains(p.as_str()))
            .count();
        assert!(
            burst_hits * 2 >= s.burst_papers.len(),
            "most burst papers cite the seminal one ({burst_hits}/{})",
            s.burst_papers.len()
        );
    }

    #[test]
    fn every_paper_has_author_and_venue() {
        let s = generate(&CitationConfig::default());
        for e in s.entities.iter().filter(|e| e.label == PAPER_LABEL) {
            assert!(s
                .facts
                .iter()
                .any(|f| f.predicate == CitePredicate::AuthoredBy && f.subject == e.name));
            assert!(s
                .facts
                .iter()
                .any(|f| f.predicate == CitePredicate::PublishedIn && f.subject == e.name));
        }
    }

    #[test]
    fn entities_cover_fact_endpoints() {
        let s = generate(&CitationConfig::default());
        let names: std::collections::HashSet<&str> =
            s.entities.iter().map(|e| e.name.as_str()).collect();
        for f in &s.facts {
            assert!(names.contains(f.subject.as_str()));
            assert!(names.contains(f.object.as_str()));
        }
    }
}
