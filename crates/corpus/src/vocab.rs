//! Name parts and topic word banks for the generated world.
//!
//! Entity names are composed from these parts so the world scales to
//! hundreds of distinct entities while staying pronounceable and — more
//! importantly — *collidable*: first-word aliases ("Apex" for both "Apex
//! Robotics" and "Apex Aviation") are exactly the ambiguity entity
//! disambiguation has to resolve.

/// First words of company names. Reused across suffixes to create alias
/// ambiguity.
pub const COMPANY_HEADS: &[&str] = &[
    "Apex",
    "Skyward",
    "Aerial",
    "Vertex",
    "Falcon",
    "Condor",
    "Horizon",
    "Zenith",
    "Quantum",
    "Stratus",
    "Nimbus",
    "Vector",
    "Pinnacle",
    "Summit",
    "Orbit",
    "Galaxy",
    "Titan",
    "Atlas",
    "Meridian",
    "Polaris",
    "Vanguard",
    "Frontier",
    "Pioneer",
    "Catalyst",
    "Momentum",
    "Velocity",
    "Altitude",
    "Airborne",
    "Cloudline",
    "Thermal",
    "Glide",
    "Soar",
    "Swift",
    "Kestrel",
    "Osprey",
    "Harrier",
    "Raptor",
    "Talon",
    "Wing",
    "Rotor",
];

/// Second words of company names (sector suffixes).
pub const COMPANY_SUFFIXES: &[&str] = &[
    "Robotics",
    "Aviation",
    "Dynamics",
    "Systems",
    "Aerospace",
    "Technologies",
    "Industries",
    "Labs",
    "Analytics",
    "Imaging",
    "Logistics",
    "Agritech",
];

/// Given names for generated people.
pub const GIVEN_NAMES: &[&str] = &[
    "Frank", "Grace", "Henry", "Irene", "James", "Karen", "Louis", "Maria", "Nathan", "Olivia",
    "Peter", "Quinn", "Rachel", "Samuel", "Teresa", "Victor", "Wendy", "Xavier", "Yvonne",
    "Zachary", "Alice", "Brian", "Clara", "David", "Elena",
];

/// Family names for generated people.
pub const FAMILY_NAMES: &[&str] = &[
    "Wang", "Chen", "Martin", "Dubois", "Schmidt", "Rossi", "Tanaka", "Kim", "Novak", "Silva",
    "Johnson", "Williams", "Brown", "Davis", "Miller", "Wilson", "Moore", "Taylor", "Anderson",
    "Thomas", "Jackson", "White", "Harris", "Clark", "Lewis",
];

/// City names used as locations.
pub const CITIES: &[&str] = &[
    "Shenzhen",
    "Palo Alto",
    "Seattle",
    "Austin",
    "Boston",
    "Denver",
    "Toulouse",
    "Munich",
    "Zurich",
    "Singapore",
    "Tokyo",
    "Seoul",
    "Tel Aviv",
    "London",
    "Paris",
    "Dublin",
    "Vancouver",
    "Richland",
    "Portland",
    "Atlanta",
    "Chicago",
    "Phoenix",
    "Dallas",
    "Miami",
];

/// Product line names (combined with a model number).
pub const PRODUCT_LINES: &[&str] = &[
    "Phantom",
    "Mavic",
    "Raven",
    "Hornet",
    "Dragonfly",
    "Sparrow",
    "Eagle",
    "Albatross",
    "Heron",
    "Swallow",
    "Griffin",
    "Pegasus",
    "Comet",
    "Meteor",
    "Aurora",
    "Tempest",
    "Breeze",
    "Cyclone",
    "Monsoon",
    "Zephyr",
];

use serde::{Deserialize, Serialize};

/// Topical communities entities belong to; descriptions and article prose
/// draw from the matching word bank, giving LDA a recoverable structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topic {
    ConsumerDrones,
    Agriculture,
    Logistics,
    Finance,
    Regulation,
    Security,
}

impl Topic {
    pub const ALL: [Topic; 6] = [
        Topic::ConsumerDrones,
        Topic::Agriculture,
        Topic::Logistics,
        Topic::Finance,
        Topic::Regulation,
        Topic::Security,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Topic::ConsumerDrones => "consumer-drones",
            Topic::Agriculture => "agriculture",
            Topic::Logistics => "logistics",
            Topic::Finance => "finance",
            Topic::Regulation => "regulation",
            Topic::Security => "security",
        }
    }

    /// Content words characteristic of the topic.
    pub fn words(self) -> &'static [&'static str] {
        match self {
            Topic::ConsumerDrones => &[
                "camera",
                "hobbyist",
                "footage",
                "gimbal",
                "selfie",
                "video",
                "photography",
                "consumer",
                "retail",
                "battery",
                "propeller",
                "quadcopter",
                "aerial",
                "pilot",
            ],
            Topic::Agriculture => &[
                "crop",
                "farm",
                "field",
                "spraying",
                "irrigation",
                "harvest",
                "yield",
                "soil",
                "orchard",
                "livestock",
                "pesticide",
                "mapping",
                "farmer",
                "agronomy",
            ],
            Topic::Logistics => &[
                "delivery",
                "package",
                "warehouse",
                "route",
                "fleet",
                "parcel",
                "shipping",
                "courier",
                "depot",
                "payload",
                "corridor",
                "dispatch",
                "cargo",
                "lastmile",
            ],
            Topic::Finance => &[
                "valuation",
                "funding",
                "revenue",
                "investor",
                "shares",
                "portfolio",
                "equity",
                "margin",
                "earnings",
                "capital",
                "dividend",
                "acquisition",
                "merger",
                "ipo",
            ],
            Topic::Regulation => &[
                "airspace",
                "waiver",
                "compliance",
                "certification",
                "rulemaking",
                "permit",
                "registration",
                "exemption",
                "altitude",
                "restriction",
                "license",
                "faa",
                "safety",
                "enforcement",
            ],
            Topic::Security => &[
                "surveillance",
                "perimeter",
                "patrol",
                "intrusion",
                "detection",
                "threat",
                "reconnaissance",
                "counterdrone",
                "jamming",
                "defense",
                "border",
                "incident",
                "military",
                "tracking",
            ],
        }
    }
}

/// Distractor sentence templates (no extractable ground-truth fact, topical
/// filler). `{W}` slots are filled with topic words.
pub const DISTRACTORS: &[&str] = &[
    "Analysts expect steady growth in the {W} segment.",
    "The {W} market grew sharply.",
    "Industry observers report rising demand for {W} services.",
    "Several firms face new {W} concerns.",
    "Investors track the {W} sector closely.",
    "The quarter showed strong {W} momentum.",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parts_are_unique() {
        for list in [COMPANY_HEADS, COMPANY_SUFFIXES, CITIES, PRODUCT_LINES] {
            let set: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }

    #[test]
    fn topics_have_disjoint_enough_vocabularies() {
        // Each topic's bank must be mostly unique to it, or LDA cannot
        // recover the structure.
        for (i, a) in Topic::ALL.iter().enumerate() {
            for b in &Topic::ALL[i + 1..] {
                let av: std::collections::HashSet<_> = a.words().iter().collect();
                let shared = b.words().iter().filter(|w| av.contains(*w)).count();
                assert!(
                    shared <= 2,
                    "{} and {} share {shared} words",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn topic_words_are_lowercase_single_tokens() {
        for t in Topic::ALL {
            for w in t.words() {
                assert!(!w.contains(' '));
                assert_eq!(&w.to_lowercase(), w);
            }
        }
    }

    #[test]
    fn enough_name_material_for_large_worlds() {
        assert!(COMPANY_HEADS.len() * COMPANY_SUFFIXES.len() >= 400);
        assert!(GIVEN_NAMES.len() * FAMILY_NAMES.len() >= 500);
    }
}
