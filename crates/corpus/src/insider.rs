//! Insider-threat log-stream generator (the paper's second domain).
//!
//! §3.1: "Algorithms in NOUS are being used for developing custom
//! knowledge graphs for diverse domains: … 2) insider threat detection
//! using various log data sources from enterprises". Log data arrives as
//! structured events, not prose, so this domain skips the NLP stage and
//! feeds the dynamic KG directly — which is exactly what makes it a good
//! demonstration that the framework is domain-agnostic (§1.1: "custom
//! knowledge graph driven analytics for arbitrary application domains").
//!
//! The generator produces a benign background (users logging into their
//! assigned hosts and touching ordinary files) and plants, late in the
//! period, an **exfiltration motif** per malicious user:
//!
//! ```text
//! (User)-[loggedInto]->(Host)          ← off-profile host
//! (User)-[accessed]->(SensitiveFile)
//! (User)-[copiedTo]->(ExternalHost)
//! ```
//!
//! The motif is type-distinct (sensitive files and external hosts carry
//! their own labels), so the §3.5 streaming miner surfaces it as a closed
//! frequent pattern only while the attack is under way.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relation types of the insider-threat ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InsiderPredicate {
    LoggedInto,
    Accessed,
    CopiedTo,
    EmailedTo,
}

impl InsiderPredicate {
    pub fn name(self) -> &'static str {
        match self {
            InsiderPredicate::LoggedInto => "loggedInto",
            InsiderPredicate::Accessed => "accessed",
            InsiderPredicate::CopiedTo => "copiedTo",
            InsiderPredicate::EmailedTo => "emailedTo",
        }
    }
}

/// Entity labels of the domain.
pub const USER_LABEL: &str = "User";
pub const HOST_LABEL: &str = "Host";
pub const FILE_LABEL: &str = "File";
pub const SENSITIVE_FILE_LABEL: &str = "SensitiveFile";
pub const EXTERNAL_HOST_LABEL: &str = "ExternalHost";

/// One structured log event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEvent {
    pub day: u64,
    pub subject: String,
    pub predicate: InsiderPredicate,
    pub object: String,
}

/// A generated entity of the log domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogEntity {
    pub name: String,
    pub label: &'static str,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct InsiderConfig {
    pub seed: u64,
    pub users: usize,
    pub hosts: usize,
    pub files: usize,
    pub sensitive_files: usize,
    pub external_hosts: usize,
    /// Benign events per day.
    pub events_per_day: usize,
    pub days: u64,
    /// Users who turn malicious.
    pub exfiltrators: usize,
    /// Attack window (inclusive).
    pub attack_start: u64,
    pub attack_end: u64,
}

impl Default for InsiderConfig {
    fn default() -> Self {
        Self {
            seed: 31,
            users: 30,
            hosts: 12,
            files: 40,
            sensitive_files: 6,
            external_hosts: 3,
            events_per_day: 12,
            days: 120,
            exfiltrators: 3,
            attack_start: 80,
            attack_end: 110,
        }
    }
}

/// The generated log world + event stream.
#[derive(Debug, Clone)]
pub struct InsiderScenario {
    pub entities: Vec<LogEntity>,
    /// Events sorted by day.
    pub events: Vec<LogEvent>,
    /// Ground truth: the malicious user names.
    pub exfiltrators: Vec<String>,
}

/// Generate the scenario (deterministic in the seed).
pub fn generate(cfg: &InsiderConfig) -> InsiderScenario {
    assert!(cfg.users > cfg.exfiltrators, "need benign users too");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1f83_d9ab_fb41_bd6b);

    let users: Vec<String> = (0..cfg.users).map(|i| format!("user{i:02}")).collect();
    let hosts: Vec<String> = (0..cfg.hosts).map(|i| format!("host-{i:02}")).collect();
    let files: Vec<String> = (0..cfg.files).map(|i| format!("doc-{i:03}.txt")).collect();
    let sensitive: Vec<String> = (0..cfg.sensitive_files)
        .map(|i| format!("secret-{i:02}.dat"))
        .collect();
    let external: Vec<String> = (0..cfg.external_hosts)
        .map(|i| format!("ext-drive-{i}"))
        .collect();

    let mut entities = Vec::new();
    for u in &users {
        entities.push(LogEntity {
            name: u.clone(),
            label: USER_LABEL,
        });
    }
    for h in &hosts {
        entities.push(LogEntity {
            name: h.clone(),
            label: HOST_LABEL,
        });
    }
    for f in &files {
        entities.push(LogEntity {
            name: f.clone(),
            label: FILE_LABEL,
        });
    }
    for f in &sensitive {
        entities.push(LogEntity {
            name: f.clone(),
            label: SENSITIVE_FILE_LABEL,
        });
    }
    for h in &external {
        entities.push(LogEntity {
            name: h.clone(),
            label: EXTERNAL_HOST_LABEL,
        });
    }

    // Each user has a home host (their benign login target).
    let home: Vec<usize> = (0..cfg.users)
        .map(|_| rng.gen_range(0..cfg.hosts))
        .collect();
    let mut exfiltrators: Vec<String> = users
        .choose_multiple(&mut rng, cfg.exfiltrators)
        .cloned()
        .collect();
    exfiltrators.sort();

    let mut events = Vec::new();
    for day in 0..cfg.days {
        // Benign background.
        for _ in 0..cfg.events_per_day {
            let u = rng.gen_range(0..cfg.users);
            let user = users[u].clone();
            match rng.gen_range(0..3) {
                0 => events.push(LogEvent {
                    day,
                    subject: user,
                    predicate: InsiderPredicate::LoggedInto,
                    object: hosts[home[u]].clone(),
                }),
                1 => events.push(LogEvent {
                    day,
                    subject: user,
                    predicate: InsiderPredicate::Accessed,
                    object: files.choose(&mut rng).expect("non-empty").clone(),
                }),
                _ => {
                    let other = users.choose(&mut rng).expect("non-empty").clone();
                    if other != user {
                        events.push(LogEvent {
                            day,
                            subject: user,
                            predicate: InsiderPredicate::EmailedTo,
                            object: other,
                        });
                    }
                }
            }
        }
        // The attack: each exfiltrator runs the motif most attack days.
        if (cfg.attack_start..=cfg.attack_end).contains(&day) {
            for bad in &exfiltrators {
                if rng.gen_bool(0.7) {
                    let off_host = hosts.choose(&mut rng).expect("non-empty").clone();
                    events.push(LogEvent {
                        day,
                        subject: bad.clone(),
                        predicate: InsiderPredicate::LoggedInto,
                        object: off_host,
                    });
                    events.push(LogEvent {
                        day,
                        subject: bad.clone(),
                        predicate: InsiderPredicate::Accessed,
                        object: sensitive.choose(&mut rng).expect("non-empty").clone(),
                    });
                    events.push(LogEvent {
                        day,
                        subject: bad.clone(),
                        predicate: InsiderPredicate::CopiedTo,
                        object: external.choose(&mut rng).expect("non-empty").clone(),
                    });
                }
            }
        }
    }

    InsiderScenario {
        entities,
        events,
        exfiltrators,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let a = generate(&InsiderConfig::default());
        let b = generate(&InsiderConfig::default());
        assert_eq!(a.events, b.events);
        assert_eq!(a.exfiltrators, b.exfiltrators);
        assert!(a.events.windows(2).all(|w| w[0].day <= w[1].day));
    }

    #[test]
    fn attack_events_only_in_window() {
        let cfg = InsiderConfig::default();
        let s = generate(&cfg);
        for e in &s.events {
            if e.predicate == InsiderPredicate::CopiedTo {
                assert!((cfg.attack_start..=cfg.attack_end).contains(&e.day));
                assert!(
                    s.exfiltrators.contains(&e.subject),
                    "only exfiltrators copy out"
                );
            }
        }
    }

    #[test]
    fn sensitive_access_is_malicious_only() {
        let s = generate(&InsiderConfig::default());
        for e in &s.events {
            if e.predicate == InsiderPredicate::Accessed && e.object.starts_with("secret-") {
                assert!(s.exfiltrators.contains(&e.subject));
            }
        }
    }

    #[test]
    fn entities_cover_all_event_endpoints() {
        let s = generate(&InsiderConfig::default());
        let names: std::collections::HashSet<&str> =
            s.entities.iter().map(|e| e.name.as_str()).collect();
        for e in &s.events {
            assert!(
                names.contains(e.subject.as_str()),
                "unknown subject {}",
                e.subject
            );
            assert!(
                names.contains(e.object.as_str()),
                "unknown object {}",
                e.object
            );
        }
    }

    #[test]
    fn exfiltrator_count_matches_config() {
        let cfg = InsiderConfig {
            exfiltrators: 5,
            ..Default::default()
        };
        let s = generate(&cfg);
        assert_eq!(s.exfiltrators.len(), 5);
    }
}
