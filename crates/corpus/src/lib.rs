//! # nous-corpus — synthetic data substrates for the NOUS reproduction
//!
//! The paper's evaluation runs on two inputs this reproduction cannot ship:
//! the Wall Street Journal 2010–2015 corpus (342,411 articles, proprietary)
//! and the YAGO2 curated knowledge base. This crate generates the closest
//! synthetic equivalents, deterministic from a seed:
//!
//! - [`curated::CuratedKb`] — a YAGO-style KB over a generated entity world
//!   ([`world::World`]): typed entities with aliases and description text,
//!   plus ontology triples. Controllable alias ambiguity exercises entity
//!   disambiguation exactly where AIDA is needed (§3.3).
//! - [`articles::ArticleStream`] — a dated stream of WSJ-style articles.
//!   Each article *narrates* a sampled fact timeline through sentence
//!   templates (active/passive/appositive/pronoun-coref variants) mixed
//!   with distractor prose, and carries its ground-truth facts so
//!   extraction, mapping and linking can all be scored.
//! - Trend waves ([`articles::TrendWave`]) modulate per-predicate frequency
//!   over time — the signal the streaming graph miner (§3.5) must discover.
//! - [`explain`] — planted multi-hop explanation paths with topically
//!   coherent vs. incoherent alternatives, the ground truth for §3.6's
//!   coherence-ranked path search.
//! - [`presets`] — the parameter sets used by examples, tests and benches.
//!
//! Everything is reproducible: same seed, same world, same articles.

pub mod articles;
pub mod citations;
pub mod curated;
pub mod explain;
pub mod insider;
pub mod ontology;
pub mod presets;
pub mod scenarios;
pub mod vocab;
pub mod world;

pub use articles::{Article, ArticleStream, StreamConfig, TrendWave};
pub use citations::{CitationConfig, CitationScenario};
pub use curated::{CuratedKb, CuratedTriple};
pub use explain::{plant_explanations, Explanation};
pub use insider::{InsiderConfig, InsiderScenario, LogEvent};
pub use ontology::{OntologyPredicate, ONTOLOGY};
pub use presets::Preset;
pub use scenarios::{Oracle, OracleEvent, Regime, Scenario, ScenarioConfig};
pub use world::{EntitySpec, World, WorldConfig};
