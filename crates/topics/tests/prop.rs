//! Property tests: LDA outputs are always valid distributions; divergences
//! respect their mathematical bounds.

use nous_text::bow::BagOfWords;
use nous_topics::{js_divergence, kl_divergence, LdaConfig, LdaModel};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<(u8, u8)>>> {
    // Each doc: list of (word id, count).
    prop::collection::vec(prop::collection::vec((0u8..30, 1u8..5), 0..12), 0..10)
}

fn to_docs(spec: &[Vec<(u8, u8)>]) -> Vec<BagOfWords> {
    spec.iter()
        .map(|doc| {
            let mut b = BagOfWords::new();
            for (w, n) in doc {
                b.add(&format!("word{w}"), *n as u32);
            }
            b
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Training on arbitrary corpora yields normalised distributions and
    /// fold-in inference stays normalised too.
    #[test]
    fn lda_outputs_are_distributions(spec in corpus_strategy(), k in 1usize..5) {
        let docs = to_docs(&spec);
        let cfg = LdaConfig { topics: k, iterations: 10, ..Default::default() };
        let model = LdaModel::fit(&docs, &cfg);
        for d in 0..docs.len() {
            let p = model.doc_distribution(d);
            prop_assert_eq!(p.len(), k);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| x > 0.0 && x < 1.0 || k == 1));
        }
        let mut unseen = BagOfWords::new();
        unseen.add("word0", 3);
        unseen.add("zzz-not-in-vocab", 2);
        let q = model.infer(&unseen, 10, 7);
        prop_assert_eq!(q.len(), k);
        prop_assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// KL is non-negative; JS symmetric and within [0, ln 2].
    #[test]
    fn divergence_bounds(
        p_raw in prop::collection::vec(0.001f64..1.0, 2..8),
    ) {
        let k = p_raw.len();
        let sp: f64 = p_raw.iter().sum();
        let p: Vec<f64> = p_raw.iter().map(|x| x / sp).collect();
        // A shifted second distribution of the same dimension.
        let mut q = p.clone();
        q.rotate_right(1);
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        let js = js_divergence(&p, &q);
        prop_assert!((0.0..=std::f64::consts::LN_2 + 1e-9).contains(&js));
        prop_assert!((js - js_divergence(&q, &p)).abs() < 1e-12);
        prop_assert!(js_divergence(&p, &p).abs() < 1e-12);
        let _ = k;
    }
}
