//! Divergence measures between discrete topic distributions.

/// Kullback–Leibler divergence `KL(p || q)` in nats.
///
/// Zero-probability cells in `q` are smoothed with `1e-12` so the result is
/// finite (entities with sparse text produce spiky distributions).
/// Panics if the slices differ in length.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution dimensionality mismatch");
    let eps = 1e-12;
    p.iter()
        .zip(q)
        .filter(|(pi, _)| **pi > 0.0)
        .map(|(pi, qi)| pi * (pi / qi.max(eps)).ln())
        .sum()
}

/// Jensen–Shannon divergence: symmetric, bounded by `ln 2`.
///
/// This is the "coherence"-friendly divergence used for path scoring: the
/// paper asks for "least amount of divergence" along the path, and JS keeps
/// that comparable in both directions.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution dimensionality mismatch");
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_is_zero() {
        let p = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_is_positive_and_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let pq = kl_divergence(&p, &q);
        let qp = kl_divergence(&q, &p);
        assert!(pq > 0.0 && qp > 0.0);
        assert!((pq - qp).abs() > 1e-6);
    }

    #[test]
    fn kl_handles_zeros_in_q() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.1, 0.8];
        let a = js_divergence(&p, &q);
        let b = js_divergence(&q, &p);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0);
        assert!(a <= std::f64::consts::LN_2 + 1e-9);
    }

    #[test]
    fn js_of_disjoint_is_ln2() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((js_divergence(&p, &q) - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dimension_mismatch_panics() {
        kl_divergence(&[1.0], &[0.5, 0.5]);
    }
}
