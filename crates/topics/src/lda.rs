//! Collapsed-Gibbs Latent Dirichlet Allocation.
//!
//! A standard collapsed Gibbs sampler (Griffiths & Steyvers 2004) over
//! bag-of-words documents: per-token topic assignments `z` are resampled
//! from `p(z=k) ∝ (n_dk + α)(n_kw + β)/(n_k + Vβ)`. The paper ran Spark's
//! LDA over per-entity text; at the scales of this reproduction (hundreds
//! of entities, thousands of tokens) a single-threaded sampler converges in
//! well under a second.
//!
//! New entities join the knowledge graph continuously, so the model also
//! supports **fold-in inference**: sampling topic assignments for an unseen
//! document against frozen topic-term counts.

use nous_text::bow::BagOfWords;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sampler hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of latent topics `K`.
    pub topics: usize,
    /// Symmetric document–topic prior.
    pub alpha: f64,
    /// Symmetric topic–term prior.
    pub beta: f64,
    /// Gibbs sweeps over the corpus.
    pub iterations: usize,
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            topics: 6,
            alpha: 0.5,
            beta: 0.01,
            iterations: 120,
            seed: 42,
        }
    }
}

/// A trained LDA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    cfg: LdaConfig,
    vocab: Vec<String>,
    term_index: HashMap<String, usize>,
    /// `K × V` topic-term counts.
    topic_term: Vec<Vec<u32>>,
    /// Per-topic totals (`Σ_w topic_term[k][w]`).
    topic_totals: Vec<u32>,
    /// Per-training-document topic distributions.
    doc_topics: Vec<Vec<f64>>,
}

impl LdaModel {
    /// Train on `docs` (one bag per document/entity).
    pub fn fit(docs: &[BagOfWords], cfg: &LdaConfig) -> LdaModel {
        assert!(cfg.topics > 0, "need at least one topic");
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Build vocabulary.
        let mut term_index: HashMap<String, usize> = HashMap::new();
        let mut vocab: Vec<String> = Vec::new();
        for d in docs {
            for (t, _) in d.iter() {
                if !term_index.contains_key(t) {
                    term_index.insert(t.to_owned(), vocab.len());
                    vocab.push(t.to_owned());
                }
            }
        }
        let v = vocab.len().max(1);
        let k = cfg.topics;

        // Expand documents into token instances.
        let tokens: Vec<Vec<usize>> = docs
            .iter()
            .map(|d| {
                let mut ts = Vec::with_capacity(d.total() as usize);
                for (t, n) in d.iter() {
                    let w = term_index[t];
                    ts.extend(std::iter::repeat_n(w, n as usize));
                }
                ts
            })
            .collect();

        // Random init.
        let mut topic_term = vec![vec![0u32; v]; k];
        let mut topic_totals = vec![0u32; k];
        let mut doc_topic = vec![vec![0u32; k]; docs.len()];
        let mut z: Vec<Vec<usize>> = tokens
            .iter()
            .enumerate()
            .map(|(d, ts)| {
                ts.iter()
                    .map(|&w| {
                        let t = rng.gen_range(0..k);
                        topic_term[t][w] += 1;
                        topic_totals[t] += 1;
                        doc_topic[d][t] += 1;
                        t
                    })
                    .collect()
            })
            .collect();

        // Gibbs sweeps.
        let vbeta = v as f64 * cfg.beta;
        let mut probs = vec![0.0f64; k];
        for _ in 0..cfg.iterations {
            for d in 0..tokens.len() {
                for (i, &w) in tokens[d].iter().enumerate() {
                    let old = z[d][i];
                    topic_term[old][w] -= 1;
                    topic_totals[old] -= 1;
                    doc_topic[d][old] -= 1;

                    let mut total = 0.0;
                    for (t, p) in probs.iter_mut().enumerate() {
                        *p = (doc_topic[d][t] as f64 + cfg.alpha)
                            * (topic_term[t][w] as f64 + cfg.beta)
                            / (topic_totals[t] as f64 + vbeta);
                        total += *p;
                    }
                    let mut x = rng.gen_range(0.0..total);
                    let mut new = k - 1;
                    for (t, p) in probs.iter().enumerate() {
                        if x < *p {
                            new = t;
                            break;
                        }
                        x -= p;
                    }
                    z[d][i] = new;
                    topic_term[new][w] += 1;
                    topic_totals[new] += 1;
                    doc_topic[d][new] += 1;
                }
            }
        }

        let doc_topics = doc_topic
            .iter()
            .map(|counts| normalise(counts, cfg.alpha))
            .collect();

        LdaModel {
            cfg: cfg.clone(),
            vocab,
            term_index,
            topic_term,
            topic_totals,
            doc_topics,
        }
    }

    pub fn num_topics(&self) -> usize {
        self.cfg.topics
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Topic distribution of training document `d`.
    pub fn doc_distribution(&self, d: usize) -> &[f64] {
        &self.doc_topics[d]
    }

    /// Fold-in inference for an unseen document: Gibbs-sample its topic
    /// assignments against frozen topic-term counts.
    pub fn infer(&self, doc: &BagOfWords, iterations: usize, seed: u64) -> Vec<f64> {
        let k = self.cfg.topics;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xda3e_39cb_94b9_5bdb);
        let words: Vec<usize> = doc
            .iter()
            .flat_map(|(t, n)| {
                let w = self.term_index.get(t).copied();
                std::iter::repeat_n(w, n as usize)
            })
            .flatten()
            .collect();
        if words.is_empty() {
            // No overlap with the training vocabulary: uniform.
            return vec![1.0 / k as f64; k];
        }
        let vbeta = self.vocab.len() as f64 * self.cfg.beta;
        let mut counts = vec![0u32; k];
        let mut z: Vec<usize> = words
            .iter()
            .map(|_| {
                let t = rng.gen_range(0..k);
                counts[t] += 1;
                t
            })
            .collect();
        let mut probs = vec![0.0f64; k];
        for _ in 0..iterations.max(1) {
            for (i, &w) in words.iter().enumerate() {
                let old = z[i];
                counts[old] -= 1;
                let mut total = 0.0;
                for (t, p) in probs.iter_mut().enumerate() {
                    *p = (counts[t] as f64 + self.cfg.alpha)
                        * (self.topic_term[t][w] as f64 + self.cfg.beta)
                        / (self.topic_totals[t] as f64 + vbeta);
                    total += *p;
                }
                let mut x = rng.gen_range(0.0..total);
                let mut new = k - 1;
                for (t, p) in probs.iter().enumerate() {
                    if x < *p {
                        new = t;
                        break;
                    }
                    x -= p;
                }
                z[i] = new;
                counts[new] += 1;
            }
        }
        normalise(&counts, self.cfg.alpha)
    }

    /// The `n` highest-probability terms of topic `k`.
    pub fn topic_terms(&self, k: usize, n: usize) -> Vec<(&str, f64)> {
        let total = self.topic_totals[k] as f64 + self.vocab.len() as f64 * self.cfg.beta;
        let mut terms: Vec<(&str, f64)> = self.topic_term[k]
            .iter()
            .enumerate()
            .map(|(w, &c)| (self.vocab[w].as_str(), (c as f64 + self.cfg.beta) / total))
            .collect();
        terms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probs"));
        terms.truncate(n);
        terms
    }
}

fn normalise(counts: &[u32], alpha: f64) -> Vec<f64> {
    let total: f64 = counts.iter().map(|&c| c as f64 + alpha).sum();
    counts.iter().map(|&c| (c as f64 + alpha) / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::js_divergence;

    /// Two crisply-separated synthetic topics.
    fn two_topic_corpus() -> Vec<BagOfWords> {
        let farm_words = ["crop", "farm", "harvest", "soil", "irrigation"];
        let fin_words = ["valuation", "funding", "equity", "earnings", "capital"];
        let mut docs = Vec::new();
        for i in 0..12 {
            let mut b = BagOfWords::new();
            let bank = if i % 2 == 0 { &farm_words } else { &fin_words };
            for (j, w) in bank.iter().enumerate() {
                b.add(w, 2 + ((i + j) % 3) as u32);
            }
            docs.push(b);
        }
        docs
    }

    #[test]
    fn distributions_are_normalised() {
        let docs = two_topic_corpus();
        let model = LdaModel::fit(
            &docs,
            &LdaConfig {
                topics: 2,
                ..Default::default()
            },
        );
        for d in 0..docs.len() {
            let p = model.doc_distribution(d);
            assert_eq!(p.len(), 2);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn recovers_two_topic_structure() {
        let docs = two_topic_corpus();
        let model = LdaModel::fit(
            &docs,
            &LdaConfig {
                topics: 2,
                ..Default::default()
            },
        );
        // Same-class documents must be closer than cross-class ones.
        let d_same = js_divergence(model.doc_distribution(0), model.doc_distribution(2));
        let d_cross = js_divergence(model.doc_distribution(0), model.doc_distribution(1));
        assert!(
            d_same < d_cross,
            "same-topic divergence {d_same:.3} should be below cross-topic {d_cross:.3}"
        );
    }

    #[test]
    fn fold_in_matches_training_class() {
        let docs = two_topic_corpus();
        let model = LdaModel::fit(
            &docs,
            &LdaConfig {
                topics: 2,
                ..Default::default()
            },
        );
        let mut unseen = BagOfWords::new();
        for w in ["crop", "farm", "harvest"] {
            unseen.add(w, 3);
        }
        let p = model.infer(&unseen, 50, 1);
        let to_farm = js_divergence(&p, model.doc_distribution(0));
        let to_fin = js_divergence(&p, model.doc_distribution(1));
        assert!(to_farm < to_fin);
    }

    #[test]
    fn infer_with_unknown_vocab_is_uniform() {
        let docs = two_topic_corpus();
        let model = LdaModel::fit(
            &docs,
            &LdaConfig {
                topics: 2,
                ..Default::default()
            },
        );
        let mut unseen = BagOfWords::new();
        unseen.add("zzzzz", 5);
        let p = model.infer(&unseen, 20, 1);
        assert!((p[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let docs = two_topic_corpus();
        let cfg = LdaConfig {
            topics: 3,
            ..Default::default()
        };
        let a = LdaModel::fit(&docs, &cfg);
        let b = LdaModel::fit(&docs, &cfg);
        assert_eq!(a.doc_distribution(0), b.doc_distribution(0));
    }

    #[test]
    fn topic_terms_are_sorted_and_probabilistic() {
        let docs = two_topic_corpus();
        let model = LdaModel::fit(
            &docs,
            &LdaConfig {
                topics: 2,
                ..Default::default()
            },
        );
        for k in 0..2 {
            let terms = model.topic_terms(k, 5);
            assert_eq!(terms.len(), 5);
            assert!(terms.windows(2).all(|w| w[0].1 >= w[1].1));
            assert!(terms.iter().all(|(_, p)| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn empty_corpus_trains_trivially() {
        let model = LdaModel::fit(
            &[],
            &LdaConfig {
                topics: 2,
                ..Default::default()
            },
        );
        assert_eq!(model.vocab_size(), 0);
        let p = model.infer(&BagOfWords::new(), 10, 0);
        assert_eq!(p, vec![0.5, 0.5]);
    }
}
