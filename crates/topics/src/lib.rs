//! # nous-topics — Latent Dirichlet Allocation and divergence metrics
//!
//! §3.6 of the paper: "we … assign a topic distribution to every entity by
//! executing the Latent Dirichlet Allocation (LDA) algorithm on the
//! 'document-term' matrix constructed from the text. During the graph walk,
//! we perform a look-ahead search at every hop and select nodes with least
//! topic divergence to the target node."
//!
//! This crate provides the two halves of that sentence:
//!
//! - [`lda`] — a collapsed-Gibbs LDA trainer over
//!   [`nous_text::bow::BagOfWords`] documents, with fold-in inference for
//!   entities that join the graph after training (the dynamic-KG case), and
//! - [`divergence`] — KL and Jensen–Shannon divergence between topic
//!   distributions, the quantity the path search minimises.

pub mod divergence;
pub mod lda;

pub use divergence::{js_divergence, kl_divergence};
pub use lda::{LdaConfig, LdaModel};
