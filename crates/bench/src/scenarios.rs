//! Scenario harness: drive a workload regime (`nous_corpus::scenarios`)
//! through the full ingest → publish → query stack and score it.
//!
//! One [`run_regime`] call owns the whole lifecycle:
//!
//! 1. bootstrap a KG from the scenario's curated KB, with the revision
//!    policy enabled (the contradiction regime is meaningless without it);
//! 2. attach a [`DurableStore`] (WAL + checkpoint) whose journal acks
//!    every durable document into a ledger;
//! 3. ingest the article stream one document at a time through
//!    [`SharedSession::ingest_batch`] — each call covers extract, admit
//!    and snapshot publication, so its wall time is the *update latency*:
//!    the delay from article arrival until queries reflect it;
//! 4. at evenly spaced checkpoint days, score precision/recall of the
//!    served extracted triples (via the real `MATCH` query path) against
//!    the oracle's evolving truth set, and probe degradation with
//!    tight-deadline and already-expired queries;
//! 5. crash (drop the store), recover from checkpoint + WAL, and count
//!    acked documents the recovery failed to replay — the zero-acked-loss
//!    criterion, meaningful with or without injected faults.
//!
//! The same entry point serves `benches/scenarios.rs` (which writes
//! `BENCH_scenarios.json`) and the root `tests/scenarios.rs` smoke tests.

use nous_core::{
    IngestPipeline, IngestReport, KnowledgeGraph, PipelineConfig, RevisionPolicy, SharedSession,
    TrendMonitor,
};
use nous_corpus::scenarios::{self, ScenarioConfig};
use nous_fault::{Deadline, Faults};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::MetricsRegistry;
use nous_persist::{DocRecord, DurabilityConfig, DurableStore, FsyncPolicy, RetryPolicy};
use nous_qa::TopicIndex;
use nous_query::{execute_shared, execute_shared_deadline, parse, QueryResult};
use serde::Serialize;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Correctness at one timed checkpoint: the served extracted triples
/// (restricted to the predicates the oracle makes claims about) compared
/// against the truth set as of that day.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointScore {
    pub day: u64,
    /// Triples true in the oracle at this day.
    pub truth: usize,
    /// Extracted triples the query path served.
    pub predicted: usize,
    /// Intersection of the two.
    pub matched: usize,
    pub precision: f64,
    pub recall: f64,
}

/// Graceful-degradation counters for one regime run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Degradation {
    /// Documents parked in the dead-letter quarantine.
    pub quarantined: u64,
    /// Tight-deadline query probes issued at checkpoints.
    pub deadline_probes: u64,
    /// Probes that came back partial (deadline expired mid-scan).
    pub partial_responses: u64,
    /// Zero-budget probes shed at arrival (never scanned to completion).
    pub shed_responses: u64,
    /// Revision outcomes (see `nous_core::RevisionCounters`).
    pub revision_superseded: u64,
    pub revision_decayed: u64,
    pub revision_reinforced: u64,
    /// Documents the journal acked as durable.
    pub acked_docs: u64,
    /// Documents recovery replayed after the crash.
    pub replayed_docs: u64,
    /// Acked documents missing after recovery — must be 0.
    pub lost_acked_docs: u64,
}

/// The full scorecard of one regime run.
#[derive(Debug, Clone, Serialize)]
pub struct RegimeScore {
    pub regime: String,
    pub seed: u64,
    pub articles: usize,
    pub admitted: u64,
    /// Per-article ingest→publish wall time, milliseconds.
    pub update_latency_p50_ms: f64,
    pub update_latency_p99_ms: f64,
    pub checkpoints: Vec<CheckpointScore>,
    pub degradation: Degradation,
}

impl RegimeScore {
    /// Every metric the CI gate requires, present and finite.
    pub fn validate(&self) -> Result<(), String> {
        if self.checkpoints.len() < 3 {
            return Err(format!(
                "{}: {} checkpoints (need >= 3)",
                self.regime,
                self.checkpoints.len()
            ));
        }
        let finite = [
            ("update_latency_p50_ms", self.update_latency_p50_ms),
            ("update_latency_p99_ms", self.update_latency_p99_ms),
        ];
        for (name, v) in finite {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{}: {name} = {v}", self.regime));
            }
        }
        for c in &self.checkpoints {
            for (name, v) in [("precision", c.precision), ("recall", c.recall)] {
                if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                    return Err(format!("{}: day {} {name} = {v}", self.regime, c.day));
                }
            }
        }
        if self.degradation.lost_acked_docs != 0 {
            return Err(format!(
                "{}: {} acked documents lost",
                self.regime, self.degradation.lost_acked_docs
            ));
        }
        Ok(())
    }
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("nous-scn-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn percentile(sorted_ms: &[f64], p: usize) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    sorted_ms[(sorted_ms.len() - 1) * p / 100]
}

/// Parse one rendered MATCH sample line
/// (`"src -[pred]-> dst (0.85, extracted)"`) into its triple and
/// whether the edge is extracted (vs curated).
pub fn parse_match_line(line: &str) -> Option<(String, String, String, bool)> {
    let (src, rest) = line.split_once(" -[")?;
    let (pred, rest) = rest.split_once("]-> ")?;
    let (dst, meta) = rest.rsplit_once(" (")?;
    let meta = meta.strip_suffix(')')?;
    let (_conf, tag) = meta.rsplit_once(", ")?;
    Some((
        src.to_owned(),
        pred.to_owned(),
        dst.to_owned(),
        tag == "extracted",
    ))
}

/// The extracted triples the live session serves for `predicate`,
/// collected through the real query path (parse → execute → render).
pub fn served_extracted(
    session: &SharedSession,
    predicate: &str,
) -> BTreeSet<(String, String, String)> {
    let q = parse(&format!("MATCH (*)-[{predicate}]->(*) LIMIT 1000000")).expect("query parses");
    let mut triples = BTreeSet::new();
    if let QueryResult::Matches { sample, .. } = execute_shared(session, &q) {
        for line in &sample {
            if let Some((s, p, o, extracted)) = parse_match_line(line) {
                if extracted {
                    triples.insert((s, p, o));
                }
            }
        }
    }
    triples
}

fn score_checkpoint(
    session: &SharedSession,
    oracle: &scenarios::Oracle,
    day: u64,
    degradation: &mut Degradation,
) -> CheckpointScore {
    let truth = oracle.truth_at(day);
    let mut predicted = BTreeSet::new();
    for pred in oracle.predicates() {
        predicted.extend(served_extracted(session, &pred));

        // Degradation probes through the same query: a tight budget may
        // go partial mid-scan; a zero budget is shed at arrival.
        let q = parse(&format!("MATCH (*)-[{pred}]->(*) LIMIT 1000000")).expect("query parses");
        let tight =
            execute_shared_deadline(session, &q, &Deadline::within(Duration::from_micros(50)));
        degradation.deadline_probes += 1;
        if tight.partial {
            degradation.partial_responses += 1;
        }
        let shed = execute_shared_deadline(session, &q, &Deadline::expired_now());
        degradation.deadline_probes += 1;
        if shed.partial {
            degradation.shed_responses += 1;
        }
    }
    let matched = predicted.intersection(&truth).count();
    let precision = if predicted.is_empty() {
        1.0
    } else {
        matched as f64 / predicted.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        matched as f64 / truth.len() as f64
    };
    CheckpointScore {
        day,
        truth: truth.len(),
        predicted: predicted.len(),
        matched,
        precision,
        recall,
    }
}

/// Drive one regime end-to-end and score it. `faults` arms the pipeline,
/// WAL and checkpoint failpoints (no-op unless the `fault-injection`
/// feature is compiled in); pass [`Faults::disabled`] for a clean run.
pub fn run_regime(cfg: &ScenarioConfig, faults: Faults, checkpoints: usize) -> RegimeScore {
    let scenario = scenarios::generate(cfg);
    let mut kg = KnowledgeGraph::from_curated(&scenario.world, &scenario.kb);
    kg.set_revision_policy(RevisionPolicy::enabled());
    kg.train_predictor();

    let registry = MetricsRegistry::new();
    let dir = scratch(cfg.regime.name());
    let store = DurableStore::create_with_faults(
        &dir,
        DurabilityConfig {
            fsync: FsyncPolicy::EveryN(8),
            checkpoint_every_facts: 0,
            keep_generations: 2,
            retry: RetryPolicy::default(),
        },
        &kg,
        &IngestReport::default(),
        &registry,
        faults.clone(),
    )
    .expect("generation-0 baseline is not failpointed");

    let session = SharedSession::with_registry(
        kg,
        TopicIndex::new(2),
        TrendMonitor::new(
            WindowKind::Count { n: 200 },
            MinerConfig {
                k_max: 2,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        ),
        registry.clone(),
    );
    let mut pipeline = IngestPipeline::with_registry(
        PipelineConfig {
            batch_size: 1,
            faults: faults.clone(),
            ..Default::default()
        },
        registry.clone(),
    );
    let acked: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let ack_sink = acked.clone();
    pipeline.set_journal(store.journal_with_ack(Arc::new(move |rec: &DocRecord| {
        ack_sink.lock().expect("ack ledger").push(rec.doc_id);
    })));

    let checkpoint_days = scenarios::checkpoints(cfg.days, checkpoints.max(3));
    let mut scores = Vec::with_capacity(checkpoint_days.len());
    let mut degradation = Degradation::default();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(scenario.articles.len());

    // One document per ingest_batch call: its wall time spans extract,
    // admit and snapshot publication — the update latency from arrival
    // to queryability.
    let mut next_ckpt = 0usize;
    for a in &scenario.articles {
        while next_ckpt < checkpoint_days.len() && a.day > checkpoint_days[next_ckpt] {
            scores.push(score_checkpoint(
                &session,
                &scenario.oracle,
                checkpoint_days[next_ckpt],
                &mut degradation,
            ));
            next_ckpt += 1;
        }
        let t0 = Instant::now();
        session.ingest_batch(&mut pipeline, std::slice::from_ref(a));
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    while next_ckpt < checkpoint_days.len() {
        scores.push(score_checkpoint(
            &session,
            &scenario.oracle,
            checkpoint_days[next_ckpt],
            &mut degradation,
        ));
        next_ckpt += 1;
    }

    let report = pipeline.report();
    degradation.quarantined = pipeline.dead_letters().len() as u64;
    let rev = session.read(|kg, _| kg.revision_counters());
    degradation.revision_superseded = rev.superseded;
    degradation.revision_decayed = rev.decayed;
    degradation.revision_reinforced = rev.reinforced;

    // Crash without a final checkpoint, recover from the gen-0 baseline +
    // WAL, and account for every acked document.
    drop(pipeline);
    let acked = Arc::try_unwrap(acked)
        .expect("all journal clones dropped")
        .into_inner()
        .expect("ack ledger");
    drop(store);
    let recovery_registry = MetricsRegistry::new();
    let (recovered_store, recovered) =
        DurableStore::open(&dir, DurabilityConfig::default(), &recovery_registry)
            .expect("recovery after crash");
    degradation.acked_docs = acked.len() as u64;
    degradation.replayed_docs = recovered.replayed_docs;
    degradation.lost_acked_docs = (acked.len() as u64).saturating_sub(recovered.replayed_docs);
    drop(recovered_store);
    std::fs::remove_dir_all(&dir).ok();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    RegimeScore {
        regime: cfg.regime.name().to_owned(),
        seed: cfg.seed,
        articles: scenario.articles.len(),
        admitted: report.admitted as u64,
        update_latency_p50_ms: percentile(&latencies_ms, 50),
        update_latency_p99_ms: percentile(&latencies_ms, 99),
        checkpoints: scores,
        degradation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_line_roundtrip() {
        let line = "Apex Robotics -[isLocatedIn]-> Palo Alto (0.85, extracted)";
        let (s, p, o, ext) = parse_match_line(line).expect("parses");
        assert_eq!(s, "Apex Robotics");
        assert_eq!(p, "isLocatedIn");
        assert_eq!(o, "Palo Alto");
        assert!(ext);
        // Curated tag is excluded from the predicted set.
        let curated = "A -[p]-> B (1.00, curated)";
        assert!(!parse_match_line(curated).expect("parses").3);
        // Entity names containing " (" still split on the *last* marker.
        let tricky = "Aerial (HK) Ltd -[acquired]-> Vertex (EU) Labs (0.50, extracted)";
        let (s, _, o, _) = parse_match_line(tricky).expect("parses");
        assert_eq!(s, "Aerial (HK) Ltd");
        assert_eq!(o, "Vertex (EU) Labs");
    }

    #[test]
    fn percentiles_of_small_samples() {
        assert_eq!(percentile(&[], 50), 0.0);
        assert_eq!(percentile(&[3.0], 99), 3.0);
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50), 2.0);
        assert_eq!(percentile(&v, 99), 3.0);
    }
}
