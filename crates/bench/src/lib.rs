//! Shared builders for the benchmark harnesses.
//!
//! Every bench in `benches/` regenerates one experiment from
//! EXPERIMENTS.md. The builders here construct the systems under test once
//! per bench process so criterion's timing loops measure only the operation
//! of interest, and the quality tables (accuracy, AUC, speedup factors) are
//! printed once before timing starts.

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig};
use nous_corpus::{Article, CuratedKb, Preset, World};
use nous_mining::MinerEdge;

pub mod scenarios;

/// A fully-built system: world + curated KB + stream + populated KG.
pub struct System {
    pub world: World,
    pub kb: CuratedKb,
    pub articles: Vec<Article>,
    pub kg: KnowledgeGraph,
}

/// Build and populate a system at the given preset.
pub fn build_system(preset: Preset) -> System {
    let (world, kb, articles) = preset.build();
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let mut pipeline = IngestPipeline::new(PipelineConfig::default());
    pipeline.ingest_all(&mut kg, &articles);
    System {
        world,
        kb,
        articles,
        kg,
    }
}

/// The miner's typed-edge view of a knowledge graph's live edges.
pub fn miner_edges(kg: &KnowledgeGraph) -> Vec<MinerEdge> {
    let mut labels = nous_graph::ids::Interner::new();
    kg.kg_edges_with(&mut labels)
}

/// Internal helper trait so the closure borrows cleanly.
trait KgEdges {
    fn kg_edges_with(&self, labels: &mut nous_graph::ids::Interner) -> Vec<MinerEdge>;
}

impl KgEdges for KnowledgeGraph {
    fn kg_edges_with(&self, labels: &mut nous_graph::ids::Interner) -> Vec<MinerEdge> {
        self.graph
            .iter_edges()
            .map(|(id, e)| {
                let sl = labels.intern(self.graph.label(e.src).unwrap_or("Entity"));
                let dl = labels.intern(self.graph.label(e.dst).unwrap_or("Entity"));
                MinerEdge::new(
                    id.0 as u64,
                    e.src.0 as u64,
                    e.dst.0 as u64,
                    e.pred.0,
                    sl,
                    dl,
                )
            })
            .collect()
    }
}

/// Print a fixed-width table row (benches print paper-style tables).
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Header + separator for a printed table.
pub fn table_header(title: &str, cols: &[&str], widths: &[usize]) {
    println!("\n== {title} ==");
    println!(
        "{}",
        row(
            &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
            widths
        )
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}
