//! Experiment E10 (§3.3): AIDA-adapted entity disambiguation accuracy
//! against the popularity-only and exact-match baselines, across corpus
//! ambiguity levels; plus resolution throughput vs KG size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nous_bench::{row, table_header};
use nous_core::KnowledgeGraph;
use nous_corpus::{ArticleStream, CuratedKb, Preset, StreamConfig, World, WorldConfig};
use nous_link::LinkMode;
use nous_text::bow::BagOfWords;

struct Case {
    surface: String,
    expected: String,
    context: BagOfWords,
}

fn build(ambiguity: f64) -> (KnowledgeGraph, Vec<Case>) {
    let wc = WorldConfig {
        ambiguity,
        companies: 60,
        ..Preset::Demo.world_config()
    };
    let world = World::generate(&wc);
    let kb = CuratedKb::generate(&world, 7);
    let sc = StreamConfig {
        articles: 400,
        alias_usage: 0.9,
        ..Preset::Demo.stream_config()
    };
    let articles = ArticleStream::generate(&world, &kb, &sc);
    let kg = KnowledgeGraph::from_curated(&world, &kb);
    let mut cases = Vec::new();
    for a in &articles {
        for f in &a.facts {
            let idx = world.by_name(&f.subject).expect("canonical");
            let e = &world.entities[idx];
            if e.aliases.len() < 2 {
                continue;
            }
            let alias = &e.aliases[1];
            if world.candidates(alias).len() > 1
                && a.body.contains(alias.as_str())
                && !a.body.contains(&e.name)
            {
                cases.push(Case {
                    surface: alias.clone(),
                    expected: e.name.clone(),
                    context: BagOfWords::from_text(&a.body),
                });
            }
        }
    }
    (kg, cases)
}

fn accuracy(kg: &KnowledgeGraph, cases: &[Case], mode: LinkMode) -> (f64, f64) {
    let mut correct = 0usize;
    let mut answered = 0usize;
    for c in cases {
        if let Some(r) = kg.disambiguator.resolve(&c.surface, &c.context, mode) {
            answered += 1;
            if r.name == c.expected {
                correct += 1;
            }
        }
    }
    (
        correct as f64 / cases.len().max(1) as f64,
        answered as f64 / cases.len().max(1) as f64,
    )
}

fn quality() {
    table_header(
        "E10: ambiguous-mention disambiguation accuracy (short aliases, 0.9 alias usage)",
        &[
            "ambiguity",
            "cases",
            "AIDA-adapted",
            "popularity",
            "exact(ans.rate)",
        ],
        &[9, 7, 13, 11, 16],
    );
    for ambiguity in [0.2, 0.4, 0.6, 0.8] {
        let (kg, cases) = build(ambiguity);
        let (full, _) = accuracy(&kg, &cases, LinkMode::Full);
        let (pop, _) = accuracy(&kg, &cases, LinkMode::PopularityOnly);
        let (_, exact_rate) = accuracy(&kg, &cases, LinkMode::ExactOnly);
        println!(
            "{}",
            row(
                &[
                    format!("{ambiguity:.1}"),
                    cases.len().to_string(),
                    format!("{full:.2}"),
                    format!("{pop:.2}"),
                    format!("{exact_rate:.2}"),
                ],
                &[9, 7, 13, 11, 16]
            )
        );
    }
}

fn bench(c: &mut Criterion) {
    quality();
    let mut group = c.benchmark_group("entity_linking");
    for companies in [40usize, 80, 160] {
        let wc = WorldConfig {
            ambiguity: 0.5,
            companies,
            ..Preset::Demo.world_config()
        };
        let world = World::generate(&wc);
        let kb = CuratedKb::generate(&world, 7);
        let kg = KnowledgeGraph::from_curated(&world, &kb);
        let surfaces: Vec<String> = world
            .companies
            .iter()
            .map(|&i| world.entities[i].aliases[1].clone())
            .collect();
        let ctx = BagOfWords::from_text(
            "the crop spraying farm harvest irrigation company announced results",
        );
        group.bench_with_input(
            BenchmarkId::new("resolve_all_companies", companies),
            &kg,
            |b, kg| {
                b.iter(|| {
                    surfaces
                        .iter()
                        .filter_map(|s| kg.disambiguator.resolve(s, &ctx, LinkMode::Full))
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
