//! Substrate bench: the dynamic property-graph engine underneath every
//! experiment (the GraphX stand-in). Measures edge-append throughput,
//! traversal, PageRank, snapshot round trips and the parallel-scan
//! speedup, and prints the snapshot size comparison (JSON vs binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nous_bench::build_system;
use nous_corpus::Preset;
use nous_graph::{algo, parallel, snapshot, DynamicGraph, Provenance, VertexId};

/// A synthetic scale-free-ish graph: preferential chains plus random
/// shortcuts.
fn synth_graph(n_vertices: usize, n_edges: usize) -> DynamicGraph {
    let mut g = DynamicGraph::new();
    let p = g.intern_predicate("rel");
    let q = g.intern_predicate("link");
    for i in 0..n_vertices {
        g.ensure_vertex(&format!("v{i}"));
    }
    let mut x = 0x2545f4914f6cdd1du64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for t in 0..n_edges {
        let a = VertexId((rnd() % n_vertices as u64) as u32);
        let b = VertexId((rnd() % n_vertices as u64) as u32);
        let pred = if t % 3 == 0 { q } else { p };
        g.add_edge_at(a, pred, b, t as u64, 0.8, Provenance::Curated);
    }
    g
}

fn snapshot_size_table() {
    let system = build_system(Preset::Demo);
    let g = &system.kg.graph;
    let json = snapshot::to_json(g).expect("serializable");
    let binary = snapshot::to_binary(g).expect("encodable");
    println!(
        "\n== substrate: snapshot sizes (demo KG: {} edges) ==",
        g.edge_count()
    );
    println!("  JSON (lossless): {:>9} bytes", json.len());
    println!(
        "  binary (heads):  {:>9} bytes ({:.1}x smaller)",
        binary.len(),
        json.len() as f64 / binary.len() as f64
    );
}

fn bench(c: &mut Criterion) {
    snapshot_size_table();

    let mut group = c.benchmark_group("graph_ops");

    // Edge append throughput.
    for edges in [10_000usize, 50_000] {
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::new("append_edges", edges), &edges, |b, &n| {
            b.iter(|| synth_graph(2_000, n).edge_count())
        });
    }

    let g = synth_graph(5_000, 50_000);

    // Traversals.
    group.throughput(Throughput::Elements(1));
    group.bench_function("bfs_4hop_from_hub", |b| {
        b.iter(|| algo::bfs_distances(&g, VertexId(0), algo::Direction::Both, 4).len())
    });
    group.bench_function("connected_components", |b| {
        b.iter(|| algo::connected_components(&g).len())
    });
    group.bench_function("pagerank_50iter", |b| {
        b.iter(|| algo::pagerank(&g, &algo::PageRankConfig::default()).len())
    });

    // Parallel vs sequential degree scan.
    group.bench_function("degree_scan_sequential", |b| {
        b.iter(|| g.iter_vertices().map(|v| g.degree(v)).sum::<usize>())
    });
    group.bench_function("degree_scan_parallel", |b| {
        b.iter(|| {
            parallel::par_map_vertices(&g, |v| g.degree(v))
                .into_iter()
                .sum::<usize>()
        })
    });

    // Snapshot round trips.
    group.bench_function("snapshot_binary_roundtrip", |b| {
        b.iter(|| {
            let blob = snapshot::to_binary(&g).expect("encodable");
            snapshot::from_binary(blob).expect("decodable").edge_count()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
