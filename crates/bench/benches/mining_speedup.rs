//! Experiment E7 (§3.5 claim): "initial benchmarking of our work against
//! distributed graph mining systems such as Arabesque suggests 3x speedup
//! on selected datasets."
//!
//! Comparison: process a sliding window over a KG edge stream and keep the
//! frequent-pattern table current at every slide. The streaming miner
//! updates incrementally; the Arabesque-style baseline re-enumerates the
//! whole window per slide; the gSpan-style baseline re-grows per slide.
//! The printed table reports wall-clock per processed edge and the speedup
//! factor — the paper's "3x" is the expected order of magnitude, growing
//! with window size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nous_bench::{build_system, miner_edges, row, table_header};
use nous_corpus::Preset;
use nous_mining::baselines::{EmbeddingEnumMiner, PatternGrowthMiner};
use nous_mining::{EvictionStrategy, MinerConfig, MinerEdge, StreamingMiner};
use std::time::Instant;

const K_MAX: usize = 2;
const MIN_SUPPORT: u32 = 4;
/// Report the support table every SLIDE_EVERY edges (each such point is a
/// "window slide" a batch system must re-mine at).
const SLIDE_EVERY: usize = 10;

fn run_streaming(edges: &[MinerEdge], window: usize) -> usize {
    let mut miner = StreamingMiner::new(MinerConfig {
        k_max: K_MAX,
        min_support: MIN_SUPPORT,
        eviction: EvictionStrategy::Eager,
    });
    let mut patterns = 0usize;
    for (i, e) in edges.iter().enumerate() {
        miner.add_edge(*e);
        if i >= window {
            miner.remove_edge(edges[i - window].id);
        }
        if i % SLIDE_EVERY == 0 {
            patterns += miner.frequent_patterns().len();
        }
    }
    patterns
}

fn run_batch(edges: &[MinerEdge], window: usize, mine: impl Fn(&[MinerEdge]) -> usize) -> usize {
    let mut patterns = 0usize;
    for i in 0..edges.len() {
        if i % SLIDE_EVERY == 0 {
            // Same active set as the streaming window: the last `window`
            // edges inclusive of i.
            let lo = (i + 1).saturating_sub(window);
            patterns += mine(&edges[lo..=i]);
        }
    }
    patterns
}

fn quality_table(edges: &[MinerEdge]) {
    table_header(
        "E7: streaming vs batch per-slide cost (k=2, support=4)",
        &[
            "window",
            "stream ms",
            "arabesque ms",
            "gspan ms",
            "speedup(vs arab.)",
        ],
        &[8, 12, 14, 10, 18],
    );
    for window in [100usize, 200, 400, 800] {
        let t0 = Instant::now();
        let a = run_streaming(edges, window);
        let stream_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let b = run_batch(edges, window, |w| {
            EmbeddingEnumMiner::mine(w, K_MAX, MIN_SUPPORT).len()
        });
        let arab_ms = t1.elapsed().as_secs_f64() * 1e3;
        let t2 = Instant::now();
        let _c = run_batch(edges, window, |w| {
            PatternGrowthMiner::mine(w, K_MAX, MIN_SUPPORT).len()
        });
        let gspan_ms = t2.elapsed().as_secs_f64() * 1e3;
        assert_eq!(a, b, "streaming and batch disagree");
        println!(
            "{}",
            row(
                &[
                    window.to_string(),
                    format!("{stream_ms:.1}"),
                    format!("{arab_ms:.1}"),
                    format!("{gspan_ms:.1}"),
                    format!("{:.1}x", arab_ms / stream_ms),
                ],
                &[8, 12, 14, 10, 18]
            )
        );
    }
}

fn bench(c: &mut Criterion) {
    let system = build_system(Preset::Demo);
    let edges = miner_edges(&system.kg);
    println!("\nedge stream: {} typed edges", edges.len());
    quality_table(&edges);

    let mut group = c.benchmark_group("mining_speedup");
    group.sample_size(10);
    for window in [200usize, 400] {
        group.bench_with_input(BenchmarkId::new("streaming", window), &window, |b, &w| {
            b.iter(|| run_streaming(&edges, w))
        });
        group.bench_with_input(
            BenchmarkId::new("arabesque_style", window),
            &window,
            |b, &w| {
                b.iter(|| {
                    run_batch(&edges, w, |win| {
                        EmbeddingEnumMiner::mine(win, K_MAX, MIN_SUPPORT).len()
                    })
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("gspan_style", window), &window, |b, &w| {
            b.iter(|| {
                run_batch(&edges, w, |win| {
                    PatternGrowthMiner::mine(win, K_MAX, MIN_SUPPORT).len()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
