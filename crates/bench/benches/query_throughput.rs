//! Query serving throughput: locked baseline vs. lock-free frozen snapshots.
//!
//! Builds a Demo-preset session, then measures a multi-threaded mixed read
//! workload (one query per lock-free class, round-robin) while a background
//! writer keeps ingesting micro-batches — the paper's long-running demo
//! shape, analysts querying against a live stream. Two serving modes:
//!
//! - `locked`: every query takes the session read-lock
//!   (`execute_shared_locked`), contending with the writer's exclusive
//!   merge windows.
//! - `snapshot`: every query runs against the epoch-swapped frozen
//!   snapshot (`execute_shared`) — no KG lock on the read path.
//!
//! Prints the comparison table and records `BENCH_query.json` at the
//! repository root. Plain `main` harness (`harness = false`): wall-clock
//! queries/sec over a fixed duration is the honest unit, and the JSON
//! artifact needs exactly one run per configuration.
//!
//! ```sh
//! cargo bench -p nous-bench --features bench --bench query_throughput
//! ```
//!
//! The JSON records `host_cpus`: on a single core the reader threads
//! time-slice, so the parallel win of never blocking on the write lock
//! cannot show up directly — read the measured ratios together with the
//! Amdahl-style projection fields (`write_hold_fraction` is the fraction
//! of wall time the writer held the KG write-lock; locked readers stall
//! for that window, snapshot readers do not).

use nous_bench::{row, table_header};
use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, SharedSession, TrendMonitor};
use nous_corpus::{Article, ArticleStream, CuratedKb, Preset, World};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::MetricsRegistry;
use nous_query::{execute_shared, execute_shared_locked, parse, Query};
use nous_topics::LdaConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WARM_ARTICLES: usize = 200;
const RUN_SECS: f64 = 1.5;
const THREADS: [usize; 3] = [1, 2, 4];

/// Flight-recorder shape used for the tracing-overhead run: production
/// defaults (256 retained traces, 10ms slow threshold), so the measured
/// tax is what an operator would actually pay.
const TRACE_CAPACITY: usize = 256;
const TRACE_SLOW_NANOS: u64 = 10_000_000;

fn build_session(tracing: bool) -> (SharedSession, Vec<Query>, Vec<Article>) {
    let world = World::generate(&Preset::Demo.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let stream_cfg = nous_corpus::StreamConfig {
        articles: WARM_ARTICLES,
        ..Preset::Demo.stream_config()
    };
    let articles = ArticleStream::generate(&world, &kb, &stream_cfg);
    // Warm the graph with half the corpus; the writer replays the rest.
    let (warm, live) = articles.split_at(WARM_ARTICLES / 2);
    IngestPipeline::new(PipelineConfig::default()).ingest_all(&mut kg, warm);
    let topics = kg.build_topic_index(&LdaConfig {
        iterations: 20,
        ..Default::default()
    });
    let a = world.entities[world.companies[0]].name.clone();
    let b = world.entities[world.companies[1]].name.clone();
    let queries = [
        format!("ABOUT {a}"),
        "MATCH (Company)-[isLocatedIn]->(Location) LIMIT 3".to_owned(),
        format!("TIMELINE {a} LIMIT 5"),
        format!("WHY {a} -> {b} LIMIT 3"),
        format!("PATHS {a} TO {b} MAX 3 LIMIT 5"),
    ]
    .iter()
    .map(|q| parse(q).expect("query parses"))
    .collect();
    let trends = TrendMonitor::new(
        WindowKind::Count { n: 200 },
        MinerConfig {
            k_max: 1,
            min_support: 3,
            eviction: EvictionStrategy::Eager,
        },
    );
    let registry = MetricsRegistry::new();
    if tracing {
        registry.enable_tracing(42, TRACE_CAPACITY, TRACE_SLOW_NANOS);
    }
    let session = SharedSession::with_registry(kg, topics, trends, registry);
    (session, queries, live.to_vec())
}

struct Measurement {
    mode: &'static str,
    threads: usize,
    writer: bool,
    secs: f64,
    queries: u64,
    qps: f64,
    /// Largest snapshot staleness any reader observed (snapshot mode
    /// under a live writer; 0 elsewhere) — the serving-freshness bound
    /// the incremental publish path is supposed to keep tight.
    max_age_nanos: u64,
}

fn run(mode: &'static str, threads: usize, with_writer: bool) -> (Measurement, f64) {
    run_traced(mode, threads, with_writer, false)
}

/// Paired tracing-overhead measurement: two identically-built sessions
/// (tracing off/on), exercised in alternating fixed-count batches on one
/// thread. Alternation means slow host drift (noisy neighbours on a
/// shared core, thermal throttling) lands on both modes roughly equally,
/// so the ratio isolates the tracing tax itself. Returns
/// `(qps_untraced, qps_traced)`.
fn measure_tracing_overhead() -> (f64, f64) {
    let (s_off, q_off, _) = build_session(false);
    let (s_on, q_on, _) = build_session(true);
    const BATCH: usize = 1_000;
    let batch = |session: &SharedSession, queries: &[Query], offset: usize| {
        let t = Instant::now();
        for i in 0..BATCH {
            let _ = execute_shared(session, &queries[(offset + i) % queries.len()]);
        }
        t.elapsed()
    };
    // Warm both sides (JIT-free, but pages, caches and the flight ring).
    batch(&s_off, &q_off, 0);
    batch(&s_on, &q_on, 0);
    let mut t_off = Duration::ZERO;
    let mut t_on = Duration::ZERO;
    let mut rounds = 0usize;
    let wall = Instant::now();
    // Interleave until both modes have about RUN_SECS of measured work.
    while t_off + t_on < Duration::from_secs_f64(2.0 * RUN_SECS)
        && wall.elapsed() < Duration::from_secs_f64(6.0 * RUN_SECS)
    {
        t_off += batch(&s_off, &q_off, rounds * BATCH);
        t_on += batch(&s_on, &q_on, rounds * BATCH);
        rounds += 1;
    }
    let total = (rounds * BATCH) as f64;
    (total / t_off.as_secs_f64(), total / t_on.as_secs_f64())
}

fn run_traced(
    mode: &'static str,
    threads: usize,
    with_writer: bool,
    tracing: bool,
) -> (Measurement, f64) {
    let (session, queries, live) = build_session(tracing);
    let stop = Arc::new(AtomicBool::new(false));

    // Background writer: replay the live tail in micro-batches until the
    // readers finish, so every query contends with real ingestion. The
    // no-writer runs isolate per-query cost from that contention.
    let writer = with_writer.then(|| {
        let session = session.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut pipe = IngestPipeline::new(PipelineConfig {
                batch_size: 16,
                extract_workers: 1,
                ..Default::default()
            });
            while !stop.load(Ordering::Relaxed) {
                for chunk in live.chunks(16) {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    session.ingest_batch(&mut pipe, chunk);
                }
            }
        })
    });

    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(RUN_SECS);
    let readers: Vec<_> = (0..threads)
        .map(|tid| {
            let session = session.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut max_age = 0u64;
                let mut i = tid; // stagger the round-robin start per thread
                while Instant::now() < deadline {
                    let q = &queries[i % queries.len()];
                    match mode {
                        "locked" => {
                            let _ = execute_shared_locked(&session, q);
                        }
                        _ => {
                            // Sample staleness the way a reader sees it:
                            // acquisition time minus publish time of the
                            // epoch actually served.
                            let snap = session.frozen();
                            let age = session
                                .metrics()
                                .now_nanos()
                                .saturating_sub(snap.published_at_nanos);
                            max_age = max_age.max(age);
                            let _ = execute_shared(&session, q);
                        }
                    };
                    served += 1;
                    i += 1;
                }
                (served, max_age)
            })
        })
        .collect();
    let mut queries_served = 0u64;
    let mut max_age_nanos = 0u64;
    for r in readers {
        let (served, max_age) = r.join().expect("reader");
        queries_served += served;
        max_age_nanos = max_age_nanos.max(max_age);
    }
    if !with_writer {
        max_age_nanos = 0; // nothing publishes; age just measures idle time
    }
    let secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(writer) = writer {
        writer.join().expect("writer");
    }

    // Fraction of the measured window the writer held the KG write-lock —
    // the window locked-mode readers stall in and snapshot readers ignore.
    let write_hold_fraction = session
        .metrics()
        .latency_with(
            "nous_session_lock_hold_seconds",
            "Time a session lock was held by one operation",
            &[("lock", "write")],
        )
        .sum() as f64
        / 1e9
        / secs;
    (
        Measurement {
            mode,
            threads,
            writer: with_writer,
            secs,
            queries: queries_served,
            qps: queries_served as f64 / secs,
            max_age_nanos,
        },
        write_hold_fraction,
    )
}

/// Publish-latency measurement (ISSUE 6): full snapshot rebuild vs the
/// incremental delta-overlay publish, over a graph warmed to `scale`×
/// the bench corpus. The full rebuild is O(graph); the delta publish
/// must stay O(micro-batch), i.e. flat as `scale` grows.
struct PublishRow {
    scale: usize,
    live_edges: usize,
    full_p50_us: f64,
    full_p99_us: f64,
    delta_p50_us: f64,
    delta_p99_us: f64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn publish_latency(scale: usize) -> PublishRow {
    use nous_graph::{GraphView, LayeredSnapshot, Provenance};

    const SAMPLES: usize = 40;
    /// Facts per simulated micro-batch — the steady-state delta a
    /// publish freezes (matches the writer's `batch_size: 16` above).
    const BATCH_EDGES: usize = 16;

    let world = World::generate(&Preset::Demo.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let stream_cfg = nous_corpus::StreamConfig {
        articles: WARM_ARTICLES * scale,
        ..Preset::Demo.stream_config()
    };
    let articles = ArticleStream::generate(&world, &kb, &stream_cfg);
    IngestPipeline::new(PipelineConfig::default()).ingest_all(&mut kg, &articles);

    // Full rebuild: what every publish used to cost.
    let mut full_ns: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(LayeredSnapshot::freeze(&kg.graph));
            t.elapsed().as_nanos() as u64
        })
        .collect();

    // Delta publish: chain one micro-batch of new facts per sample onto
    // the live stack, compacting off the timed path the way the
    // background compactor does.
    let vcount = kg.graph.vertex_count() as u32;
    let pred = kg.graph.intern_predicate("benchPublish");
    let mut snap = LayeredSnapshot::freeze(&kg.graph);
    let mut t = kg.graph.now();
    let mut delta_ns: Vec<u64> = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        for j in 0..BATCH_EDGES {
            let k = (i * BATCH_EDGES + j) as u32;
            t += 1;
            kg.graph.add_edge_at(
                nous_graph::VertexId(k % vcount),
                pred,
                nous_graph::VertexId((k * 7 + 3) % vcount),
                t,
                0.9,
                Provenance::Extracted { doc_id: k as u64 },
            );
        }
        let t0 = Instant::now();
        let overlay = snap.capture_delta(&kg.graph).expect("history intact");
        snap = snap.with_overlay(overlay).expect("watermark chains");
        delta_ns.push(t0.elapsed().as_nanos() as u64);
        if snap.layer_count() >= 8 {
            snap = LayeredSnapshot::freeze(&kg.graph);
        }
    }

    full_ns.sort_unstable();
    delta_ns.sort_unstable();
    PublishRow {
        scale,
        live_edges: GraphView::live_edge_count(&snap),
        full_p50_us: percentile(&full_ns, 0.50),
        full_p99_us: percentile(&full_ns, 0.99),
        delta_p50_us: percentile(&delta_ns, 0.50),
        delta_p99_us: percentile(&delta_ns, 0.99),
    }
}

fn main() {
    let mut runs: Vec<Measurement> = Vec::new();
    let mut write_hold_fraction = 0.0f64;
    // Clean per-query cost, no ingestion running.
    for mode in ["locked", "snapshot"] {
        runs.push(run(mode, 1, false).0);
    }
    // Contended serving, live writer in the background.
    for mode in ["locked", "snapshot"] {
        for threads in THREADS {
            let (m, whf) = run(mode, threads, true);
            if mode == "locked" {
                write_hold_fraction = write_hold_fraction.max(whf);
            }
            runs.push(m);
        }
    }

    let locked_qps = |threads: usize, writer: bool| {
        runs.iter()
            .find(|m| m.mode == "locked" && m.threads == threads && m.writer == writer)
            .map(|m| m.qps)
            .unwrap_or(f64::NAN)
    };
    table_header(
        &format!("query throughput ({RUN_SECS}s mixed workload)"),
        &[
            "mode",
            "writer",
            "threads",
            "secs",
            "queries",
            "qps",
            "vs locked",
        ],
        &[9, 7, 8, 7, 9, 10, 10],
    );
    for m in &runs {
        println!(
            "{}",
            row(
                &[
                    m.mode.to_owned(),
                    if m.writer { "live" } else { "none" }.to_owned(),
                    m.threads.to_string(),
                    format!("{:.2}", m.secs),
                    m.queries.to_string(),
                    format!("{:.0}", m.qps),
                    format!("{:.2}x", m.qps / locked_qps(m.threads, m.writer)),
                ],
                &[9, 7, 8, 7, 9, 10, 10],
            )
        );
    }

    // Publish latency: the cost of making new facts visible to readers,
    // full rebuild vs delta overlay, at 1x and 10x the bench corpus. The
    // delta column must stay flat while the full column scales with the
    // graph — that flatness is the whole point of layered publication.
    let publish_rows: Vec<PublishRow> = [1usize, 10].iter().map(|&s| publish_latency(s)).collect();
    println!();
    table_header(
        "snapshot publish latency (full rebuild vs delta overlay)",
        &[
            "scale",
            "edges",
            "full p50us",
            "full p99us",
            "delta p50us",
            "delta p99us",
            "speedup p99",
        ],
        &[7, 9, 11, 11, 12, 12, 11],
    );
    for r in &publish_rows {
        println!(
            "{}",
            row(
                &[
                    format!("{}x", r.scale),
                    r.live_edges.to_string(),
                    format!("{:.1}", r.full_p50_us),
                    format!("{:.1}", r.full_p99_us),
                    format!("{:.1}", r.delta_p50_us),
                    format!("{:.1}", r.delta_p99_us),
                    format!("{:.1}x", r.full_p99_us / r.delta_p99_us),
                ],
                &[7, 9, 11, 11, 12, 12, 11],
            )
        );
    }

    // Observability tax: the same clean single-thread snapshot workload,
    // tracing disabled vs enabled (production flight-recorder shape).
    // Paired design: two identically-built sessions, alternating
    // fixed-count query batches, so host drift hits both modes equally
    // instead of masquerading as overhead. The recorded fraction is the
    // guardrail future PRs compare against — the acceptance bound is
    // ≤ 0.05.
    let (qps_off, qps_on) = measure_tracing_overhead();
    let tracing_overhead_fraction = 1.0 - qps_on / qps_off;
    println!(
        "\ntracing overhead: {qps_off:.0} qps untraced vs {qps_on:.0} qps traced \
         ({:+.1}% — every request builds a span tree into a {TRACE_CAPACITY}-trace ring)",
        tracing_overhead_fraction * 100.0
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Amdahl-style projection. `r1` is the clean (no-writer) per-query
    // cost ratio — everything the frozen indexes buy on a single thread.
    // On a multi-core host, locked readers additionally stall for the
    // writer's exclusive window (`write_hold_fraction` of wall time)
    // while snapshot readers never do, so the projected saturation ratio
    // is r1 / (1 - write_hold_fraction). On a single-core container the
    // live-writer rows also under-report the snapshot side: an unblocked
    // writer freezes + merges far more often, and that work time-slices
    // against the readers instead of running on its own core.
    let r1 = runs
        .iter()
        .find(|m| m.mode == "snapshot" && m.threads == 1 && !m.writer)
        .map(|m| m.qps / locked_qps(1, false))
        .unwrap_or(f64::NAN);
    let projected = r1 / (1.0 - write_hold_fraction).max(0.05);
    println!(
        "\nhost cpus: {host_cpus}; write-lock held {:.1}% of wall time; \
         clean single-thread snapshot/locked ratio {r1:.2}x; \
         projected multi-core ratio {projected:.2}x",
        write_hold_fraction * 100.0
    );

    let entries: Vec<String> = runs
        .iter()
        .map(|m| {
            format!(
                "    {{\"mode\": \"{}\", \"writer\": {}, \"threads\": {}, \"secs\": {:.3}, \
                 \"queries\": {}, \"qps\": {:.1}, \"speedup_vs_locked\": {:.2}, \
                 \"max_snapshot_age_ms\": {:.2}}}",
                m.mode,
                m.writer,
                m.threads,
                m.secs,
                m.queries,
                m.qps,
                m.qps / locked_qps(m.threads, m.writer),
                m.max_age_nanos as f64 / 1e6
            )
        })
        .collect();
    let publish_entries: Vec<String> = publish_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"scale\": {}, \"live_edges\": {}, \"full_p50_us\": {:.1}, \
                 \"full_p99_us\": {:.1}, \"delta_p50_us\": {:.1}, \"delta_p99_us\": {:.1}, \
                 \"delta_speedup_p99\": {:.1}}}",
                r.scale,
                r.live_edges,
                r.full_p50_us,
                r.full_p99_us,
                r.delta_p50_us,
                r.delta_p99_us,
                r.full_p99_us / r.delta_p99_us
            )
        })
        .collect();
    let max_age_ms = runs
        .iter()
        .filter(|m| m.mode == "snapshot" && m.writer)
        .map(|m| m.max_age_nanos as f64 / 1e6)
        .fold(0.0f64, f64::max);
    let json = format!(
        "{{\n  \"run_secs\": {RUN_SECS},\n  \"host_cpus\": {host_cpus},\n  \
         \"write_hold_fraction\": {write_hold_fraction:.3},\n  \
         \"snapshot_vs_locked_single_thread_clean\": {r1:.2},\n  \
         \"projected_snapshot_vs_locked_multicore\": {projected:.2},\n  \
         \"max_snapshot_age_ms_under_writer\": {max_age_ms:.2},\n  \
         \"tracing_qps_disabled\": {:.1},\n  \
         \"tracing_qps_enabled\": {:.1},\n  \
         \"tracing_overhead_fraction\": {tracing_overhead_fraction:.4},\n  \"runs\": [\n{}\n  ],\n  \
         \"publish\": [\n{}\n  ]\n}}\n",
        qps_off,
        qps_on,
        entries.join(",\n"),
        publish_entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
