//! Experiments E3 (Figure 3: extraction throughput) and E11 (demo feature
//! 1: "develop custom relation extractors and illustrate the trade-off
//! from various heuristics"). Prints a precision/recall/yield table across
//! heuristic configurations, then times the text pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nous_bench::{row, table_header};
use nous_corpus::{Preset, World};
use nous_extract::evaluate_stream;
use nous_text::ner::{EntityType, Gazetteer};
use nous_text::openie::ExtractorConfig;

fn gazetteer(world: &World) -> Gazetteer {
    let mut gaz = Gazetteer::new();
    for e in &world.entities {
        let ty = match e.kind {
            nous_corpus::world::Kind::Company => EntityType::Organization,
            nous_corpus::world::Kind::Person => EntityType::Person,
            nous_corpus::world::Kind::Location => EntityType::Location,
            nous_corpus::world::Kind::Product => EntityType::Product,
        };
        for a in &e.aliases {
            gaz.insert(a, ty);
        }
    }
    gaz
}

fn quality_table() {
    let (world, kb, _) = Preset::Demo.build();
    let mut sc = Preset::Demo.stream_config();
    sc.articles = 200;
    let articles = nous_corpus::ArticleStream::generate(&world, &kb, &sc);
    let gaz = gazetteer(&world);

    let configs: Vec<(&str, ExtractorConfig)> = vec![
        ("all heuristics", ExtractorConfig::default()),
        (
            "no appositives",
            ExtractorConfig {
                appositives: false,
                ..Default::default()
            },
        ),
        (
            "no possessives",
            ExtractorConfig {
                possessives: false,
                ..Default::default()
            },
        ),
        (
            "no n-ary",
            ExtractorConfig {
                nary: false,
                ..Default::default()
            },
        ),
        (
            "no passive inversion",
            ExtractorConfig {
                passive_inversion: false,
                ..Default::default()
            },
        ),
        (
            "conf >= 0.7 only",
            ExtractorConfig {
                min_confidence: 0.7,
                ..Default::default()
            },
        ),
        (
            "minimal (SVO only)",
            ExtractorConfig {
                appositives: false,
                possessives: false,
                nary: false,
                passive_inversion: false,
                min_confidence: 0.0,
            },
        ),
    ];
    table_header(
        "E11: heuristic trade-off (200 articles)",
        &["configuration", "recall", "precision", "yield"],
        &[22, 8, 10, 8],
    );
    for (name, cfg) in &configs {
        let q = evaluate_stream(&world, &articles, &gaz, cfg);
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{:.2}", q.recall()),
                    format!("{:.2}", q.precision()),
                    q.yielded.to_string(),
                ],
                &[22, 8, 10, 8]
            )
        );
    }
}

fn bench(c: &mut Criterion) {
    quality_table();

    let (world, _, articles) = Preset::Demo.build();
    let gaz = gazetteer(&world);
    let cfg = ExtractorConfig::default();
    let total_bytes: usize = articles.iter().map(|a| a.body.len()).sum();
    println!(
        "\nE3 throughput corpus: {} articles, {} KiB",
        articles.len(),
        total_bytes / 1024
    );

    let mut group = c.benchmark_group("extraction");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.sample_size(20);
    group.bench_function("full_text_pipeline", |b| {
        b.iter(|| {
            articles
                .iter()
                .map(|a| nous_text::analyze(&a.body, &gaz, &cfg).sentences.len())
                .sum::<usize>()
        })
    });
    group.bench_function("tokenize_only", |b| {
        b.iter(|| {
            articles
                .iter()
                .map(|a| nous_text::tokenize(&a.body).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
