//! Experiment E1 (Figure 1): end-to-end construction throughput — articles
//! per second through extract → map → disambiguate → score → admit — and
//! the per-stage accounting table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nous_bench::{row, table_header};
use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig};
use nous_corpus::Preset;

fn stage_table() {
    let (world, kb, articles) = Preset::Demo.build();
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let mut pipe = IngestPipeline::new(PipelineConfig::default());
    let t0 = std::time::Instant::now();
    let r = pipe.ingest_all(&mut kg, &articles);
    let secs = t0.elapsed().as_secs_f64();
    table_header(
        "E1: end-to-end pipeline accounting (demo preset)",
        &["stage", "count"],
        &[22, 10],
    );
    for (stage, count) in [
        ("documents", r.documents),
        ("sentences", r.sentences),
        ("raw triples", r.raw_triples),
        ("mapped", r.mapped),
        ("unmapped", r.unmapped),
        ("unresolved entity", r.unresolved_entity),
        ("admitted", r.admitted),
        ("rejected", r.rejected),
        ("new entities", r.new_entities),
    ] {
        println!(
            "{}",
            row(&[stage.to_string(), count.to_string()], &[22, 10])
        );
    }
    println!(
        "\nthroughput: {:.0} docs/s, {:.0} facts/s admitted",
        r.documents as f64 / secs,
        r.admitted as f64 / secs
    );
    let stats = kg.graph.stats();
    println!(
        "graph: {} vertices, {} curated + {} extracted edges",
        stats.vertices, stats.curated_edges, stats.extracted_edges
    );
}

fn bench(c: &mut Criterion) {
    stage_table();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for preset in [Preset::Smoke, Preset::Demo] {
        let (world, kb, articles) = preset.build();
        group.throughput(Throughput::Elements(articles.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("ingest_stream", format!("{preset:?}")),
            &(world, kb, articles),
            |b, (world, kb, articles)| {
                b.iter(|| {
                    let mut kg = KnowledgeGraph::from_curated(world, kb);
                    kg.train_predictor();
                    let mut pipe = IngestPipeline::new(PipelineConfig::default());
                    pipe.ingest_all(&mut kg, articles).admitted
                })
            },
        );
    }
    // Curated load alone (the KB bootstrap step).
    let (world, kb, _) = Preset::Large.build();
    group.bench_function("curated_load_large", |b| {
        b.iter(|| KnowledgeGraph::from_curated(&world, &kb).graph.edge_count())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
