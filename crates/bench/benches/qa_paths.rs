//! Experiment E9 (§3.6): coherence-ranked path search quality vs the
//! path-ranking baselines on planted explanations, the look-ahead ablation,
//! and search latency vs graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nous_bench::{row, table_header};
use nous_core::KnowledgeGraph;
use nous_corpus::{plant_explanations, CuratedKb, Explanation, Preset, World, WorldConfig};
use nous_graph::VertexId;
use nous_qa::baselines::{degree_salience_paths, random_walk_paths, shortest_paths};
use nous_qa::{coherent_paths, PathConstraint, QaConfig, RankedPath, TopicIndex};
use nous_topics::LdaConfig;

struct Instance {
    kg: KnowledgeGraph,
    topics: TopicIndex,
    explanations: Vec<Explanation>,
}

fn build(companies: usize) -> Instance {
    let world = World::generate(&WorldConfig {
        companies,
        ..Preset::Demo.world_config()
    });
    let mut kb = CuratedKb::generate(&world, 7);
    let explanations = plant_explanations(&world, &mut kb, 15, 99);
    let kg = KnowledgeGraph::from_curated(&world, &kb);
    let topics = kg.build_topic_index(&LdaConfig::default());
    Instance {
        kg,
        topics,
        explanations,
    }
}

type Ranker<'a> = dyn Fn(&Instance, VertexId, VertexId) -> Vec<RankedPath> + 'a;

fn accuracy_and_mrr(inst: &Instance, ranker: &Ranker) -> (f64, f64) {
    let mut hits = 0usize;
    let mut rr = 0f64;
    for e in &inst.explanations {
        let src = inst.kg.graph.vertex_id(&e.source).expect("exists");
        let dst = inst.kg.graph.vertex_id(&e.target).expect("exists");
        let paths = ranker(inst, src, dst);
        let expected: Vec<&str> = e.expected_path.iter().map(String::as_str).collect();
        let pos = paths.iter().position(|p| {
            p.vertices
                .iter()
                .map(|&v| inst.kg.graph.vertex_name(v))
                .eq(expected.iter().copied())
        });
        if pos == Some(0) {
            hits += 1;
        }
        if let Some(i) = pos {
            rr += 1.0 / (i + 1) as f64;
        }
    }
    let n = inst.explanations.len() as f64;
    (hits as f64 / n, rr / n)
}

fn quality(inst: &Instance) {
    let cfg = QaConfig {
        max_hops: 2,
        k: 5,
        ..Default::default()
    };
    let no_beam = QaConfig {
        beam: usize::MAX,
        ..cfg.clone()
    };
    let rankers: Vec<(&str, Box<Ranker>)> = vec![
        (
            "coherence (paper)",
            Box::new(move |i: &Instance, s, d| {
                coherent_paths(
                    &i.kg.graph,
                    &i.topics,
                    s,
                    d,
                    &PathConstraint::default(),
                    &cfg,
                )
            }),
        ),
        (
            "coherence no-lookahead",
            Box::new(move |i: &Instance, s, d| {
                coherent_paths(
                    &i.kg.graph,
                    &i.topics,
                    s,
                    d,
                    &PathConstraint::default(),
                    &no_beam,
                )
            }),
        ),
        (
            "shortest (BFS ties)",
            Box::new(|i: &Instance, s, d| {
                shortest_paths(
                    &i.kg.graph,
                    s,
                    d,
                    &PathConstraint::default(),
                    &QaConfig {
                        max_hops: 2,
                        k: 5,
                        ..Default::default()
                    },
                )
            }),
        ),
        (
            "degree salience",
            Box::new(|i: &Instance, s, d| {
                degree_salience_paths(
                    &i.kg.graph,
                    s,
                    d,
                    &PathConstraint::default(),
                    &QaConfig {
                        max_hops: 2,
                        k: 5,
                        ..Default::default()
                    },
                )
            }),
        ),
        (
            "random walk (PRA)",
            Box::new(|i: &Instance, s, d| {
                random_walk_paths(
                    &i.kg.graph,
                    s,
                    d,
                    &PathConstraint::default(),
                    &QaConfig {
                        max_hops: 2,
                        k: 5,
                        ..Default::default()
                    },
                )
            }),
        ),
    ];
    table_header(
        "E9: why-question ranking on planted explanations",
        &["ranker", "Acc@1", "MRR"],
        &[24, 7, 7],
    );
    for (name, ranker) in &rankers {
        let (acc, mrr) = accuracy_and_mrr(inst, ranker.as_ref());
        println!(
            "{}",
            row(
                &[name.to_string(), format!("{acc:.2}"), format!("{mrr:.2}")],
                &[24, 7, 7]
            )
        );
    }
}

fn bench(c: &mut Criterion) {
    let inst = build(60);
    println!(
        "\nQA instance: {} vertices, {} edges, {} planted questions",
        inst.kg.graph.vertex_count(),
        inst.kg.graph.edge_count(),
        inst.explanations.len()
    );
    quality(&inst);

    let mut group = c.benchmark_group("qa_paths");
    group.sample_size(20);
    for companies in [40usize, 80, 160] {
        let inst = build(companies);
        let e = &inst.explanations[0];
        let src = inst.kg.graph.vertex_id(&e.source).unwrap();
        let dst = inst.kg.graph.vertex_id(&e.target).unwrap();
        group.bench_with_input(
            BenchmarkId::new("coherent_paths", companies),
            &inst,
            |b, inst| {
                let cfg = QaConfig {
                    max_hops: 3,
                    k: 5,
                    ..Default::default()
                };
                b.iter(|| {
                    coherent_paths(
                        &inst.kg.graph,
                        &inst.topics,
                        src,
                        dst,
                        &PathConstraint::default(),
                        &cfg,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("shortest_paths", companies),
            &inst,
            |b, inst| {
                let cfg = QaConfig {
                    max_hops: 3,
                    k: 5,
                    ..Default::default()
                };
                b.iter(|| {
                    shortest_paths(&inst.kg.graph, src, dst, &PathConstraint::default(), &cfg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
