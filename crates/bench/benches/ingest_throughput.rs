//! Ingestion throughput: sequential vs. micro-batched parallel extraction.
//!
//! Measures docs/sec over a generated 500-article corpus for the
//! sequential `ingest_all` loop and for `ingest_batch` at 1/2/4/8
//! extraction workers, prints the comparison table, and records the
//! numbers in `BENCH_ingest.json` at the repository root. Plain `main`
//! harness (`harness = false`): wall-clock on a fixed corpus is the
//! honest unit here, and the JSON artifact needs exactly one run per
//! configuration set.
//!
//! ```sh
//! cargo bench -p nous-bench --bench ingest_throughput
//! ```
//!
//! The JSON records `host_cpus`: parallel extraction cannot beat sequential
//! on fewer cores than workers, so read speedups relative to that field.

use nous_bench::{row, table_header};
use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig};
use nous_corpus::{Article, ArticleStream, CuratedKb, Preset, World};
use std::time::Instant;

const CORPUS_ARTICLES: usize = 500;
const BATCH_SIZE: usize = 32;

fn corpus() -> (World, CuratedKb, Vec<Article>) {
    let world = World::generate(&Preset::Demo.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let stream_cfg = nous_corpus::StreamConfig {
        articles: CORPUS_ARTICLES,
        ..Preset::Demo.stream_config()
    };
    let articles = ArticleStream::generate(&world, &kb, &stream_cfg);
    (world, kb, articles)
}

struct Measurement {
    label: String,
    secs: f64,
    docs_per_sec: f64,
    admitted: usize,
    /// Extraction worker slots that actually received documents, read back
    /// from the pipeline's `nous_ingest_worker_docs_total` fan-out counters
    /// (sequential ingestion never fans out, so it reports 1).
    workers_used: usize,
}

fn run(
    world: &World,
    kb: &CuratedKb,
    articles: &[Article],
    label: &str,
    cfg: PipelineConfig,
    batched: bool,
) -> Measurement {
    let mut kg = KnowledgeGraph::from_curated(world, kb);
    kg.train_predictor();
    let mut pipe = IngestPipeline::new(cfg);
    let t0 = Instant::now();
    let report = if batched {
        pipe.ingest_batch(&mut kg, articles)
    } else {
        pipe.ingest_all(&mut kg, articles)
    };
    let secs = t0.elapsed().as_secs_f64();
    let workers_used = pipe
        .metrics()
        .counter_family("nous_ingest_worker_docs_total")
        .len()
        .max(1);
    Measurement {
        label: label.to_owned(),
        secs,
        docs_per_sec: articles.len() as f64 / secs,
        admitted: report.admitted,
        workers_used,
    }
}

/// Fraction of sequential ingestion wall-time spent in the extraction
/// stage — the stage `ingest_batch` parallelizes. This is the Amdahl bound
/// on attainable speedup: on hosts with more cores than this bench machine,
/// expected speedup at w workers is `1 / ((1 - f) + f / w)`.
fn extract_fraction(world: &World, kb: &CuratedKb, articles: &[Article]) -> f64 {
    use nous_extract::{extract_document, Document};
    let mut kg = KnowledgeGraph::from_curated(world, kb);
    kg.train_predictor();
    let cfg = PipelineConfig::default();
    let docs: Vec<Document> = articles.iter().map(Document::from).collect();
    let t0 = Instant::now();
    let extracted: Vec<_> = docs
        .iter()
        .map(|d| extract_document(d, &kg.gazetteer, &cfg.extractor))
        .collect();
    let extract_secs = t0.elapsed().as_secs_f64();
    let mut pipe = IngestPipeline::new(cfg);
    let t1 = Instant::now();
    for ext in &extracted {
        pipe.merge_extraction(&mut kg, ext);
    }
    let merge_secs = t1.elapsed().as_secs_f64();
    extract_secs / (extract_secs + merge_secs)
}

fn main() {
    let (world, kb, articles) = corpus();
    let mut runs: Vec<Measurement> = Vec::new();

    runs.push(run(
        &world,
        &kb,
        &articles,
        "sequential",
        PipelineConfig::default(),
        false,
    ));
    for workers in [1usize, 2, 4, 8] {
        let cfg = PipelineConfig {
            batch_size: BATCH_SIZE,
            extract_workers: workers,
            ..Default::default()
        };
        runs.push(run(
            &world,
            &kb,
            &articles,
            &format!("batched_w{workers}"),
            cfg,
            true,
        ));
    }

    let baseline = runs[0].docs_per_sec;
    table_header(
        &format!("ingest throughput ({CORPUS_ARTICLES}-article corpus, batch size {BATCH_SIZE})"),
        &[
            "configuration",
            "secs",
            "docs/s",
            "speedup",
            "admitted",
            "workers",
        ],
        &[14, 8, 10, 8, 9, 7],
    );
    for m in &runs {
        println!(
            "{}",
            row(
                &[
                    m.label.clone(),
                    format!("{:.2}", m.secs),
                    format!("{:.0}", m.docs_per_sec),
                    format!("{:.2}x", m.docs_per_sec / baseline),
                    m.admitted.to_string(),
                    m.workers_used.to_string(),
                ],
                &[14, 8, 10, 8, 9, 7],
            )
        );
    }

    // Record the numbers for the repo (hand-rendered: stable key order).
    let entries: Vec<String> = runs
        .iter()
        .map(|m| {
            format!(
                "    {{\"config\": \"{}\", \"secs\": {:.3}, \"docs_per_sec\": {:.1}, \
                 \"speedup_vs_sequential\": {:.2}, \"admitted\": {}, \"workers_used\": {}}}",
                m.label,
                m.secs,
                m.docs_per_sec,
                m.docs_per_sec / baseline,
                m.admitted,
                m.workers_used
            )
        })
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let frac = extract_fraction(&world, &kb, &articles);
    println!("\nextraction fraction of sequential wall-time: {frac:.3} (host cpus: {host_cpus})");
    let json = format!(
        "{{\n  \"corpus_articles\": {CORPUS_ARTICLES},\n  \"batch_size\": {BATCH_SIZE},\n  \
         \"host_cpus\": {host_cpus},\n  \"extract_fraction\": {frac:.3},\n  \"runs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
