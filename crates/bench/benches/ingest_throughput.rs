//! Ingestion throughput: sequential vs. micro-batched parallel extraction.
//!
//! Measures docs/sec over a generated 500-article corpus for the
//! sequential `ingest_all` loop and for `ingest_batch` at 1/2/4/8
//! extraction workers, prints the comparison table, and records the
//! numbers in `BENCH_ingest.json` at the repository root. Plain `main`
//! harness (`harness = false`): wall-clock on a fixed corpus is the
//! honest unit here, and the JSON artifact needs exactly one run per
//! configuration set.
//!
//! ```sh
//! cargo bench -p nous-bench --bench ingest_throughput
//! ```
//!
//! The JSON records `host_cpus`: parallel extraction cannot beat sequential
//! on fewer cores than workers, so read speedups relative to that field.

use nous_bench::{row, table_header};
use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, SharedSession, TrendMonitor};
use nous_corpus::{Article, ArticleStream, CuratedKb, Preset, World};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::MetricsRegistry;
use nous_qa::TopicIndex;
use std::time::Instant;

const CORPUS_ARTICLES: usize = 500;
const BATCH_SIZE: usize = 32;

fn corpus() -> (World, CuratedKb, Vec<Article>) {
    let world = World::generate(&Preset::Demo.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let stream_cfg = nous_corpus::StreamConfig {
        articles: CORPUS_ARTICLES,
        ..Preset::Demo.stream_config()
    };
    let articles = ArticleStream::generate(&world, &kb, &stream_cfg);
    (world, kb, articles)
}

struct Measurement {
    label: String,
    secs: f64,
    docs_per_sec: f64,
    admitted: usize,
    /// Extraction worker slots that actually received documents, read back
    /// from the pipeline's `nous_ingest_worker_docs_total` fan-out counters
    /// (sequential ingestion never fans out, so it reports 1).
    workers_used: usize,
}

fn run(
    world: &World,
    kb: &CuratedKb,
    articles: &[Article],
    label: &str,
    cfg: PipelineConfig,
    batched: bool,
) -> Measurement {
    let mut kg = KnowledgeGraph::from_curated(world, kb);
    kg.train_predictor();
    let mut pipe = IngestPipeline::new(cfg);
    let t0 = Instant::now();
    let report = if batched {
        pipe.ingest_batch(&mut kg, articles)
    } else {
        pipe.ingest_all(&mut kg, articles)
    };
    let secs = t0.elapsed().as_secs_f64();
    let workers_used = pipe
        .metrics()
        .counter_family("nous_ingest_worker_docs_total")
        .len()
        .max(1);
    Measurement {
        label: label.to_owned(),
        secs,
        docs_per_sec: articles.len() as f64 / secs,
        admitted: report.admitted,
        workers_used,
    }
}

/// Fraction of sequential ingestion wall-time spent in the extraction
/// stage — the stage `ingest_batch` parallelizes. This is the Amdahl bound
/// on attainable speedup: on hosts with more cores than this bench machine,
/// expected speedup at w workers is `1 / ((1 - f) + f / w)`.
fn extract_fraction(world: &World, kb: &CuratedKb, articles: &[Article]) -> f64 {
    use nous_extract::{extract_document, Document};
    let mut kg = KnowledgeGraph::from_curated(world, kb);
    kg.train_predictor();
    let cfg = PipelineConfig::default();
    let docs: Vec<Document> = articles.iter().map(Document::from).collect();
    let t0 = Instant::now();
    let extracted: Vec<_> = docs
        .iter()
        .map(|d| extract_document(d, &kg.gazetteer, &cfg.extractor))
        .collect();
    let extract_secs = t0.elapsed().as_secs_f64();
    let mut pipe = IngestPipeline::new(cfg);
    let t1 = Instant::now();
    for ext in &extracted {
        pipe.merge_extraction(&mut kg, ext);
    }
    let merge_secs = t1.elapsed().as_secs_f64();
    extract_secs / (extract_secs + merge_secs)
}

struct ShardRun {
    shards: usize,
    secs: f64,
    docs_per_sec: f64,
    /// Nanoseconds spent in the admit stage, read back from the
    /// `nous_ingest_stage_seconds{stage="admit"}` histogram.
    admit_nanos: u64,
}

/// One full session-level ingest (`SharedSession::ingest_batch`, which is
/// what sharding accelerates: per-shard replicas sync on every publish)
/// at the given shard count.
fn run_sharded(world: &World, kb: &CuratedKb, articles: &[Article], shards: usize) -> ShardRun {
    let mut kg = KnowledgeGraph::from_curated(world, kb);
    kg.train_predictor();
    let registry = MetricsRegistry::new();
    let session = SharedSession::with_registry(
        kg,
        TopicIndex::new(2),
        TrendMonitor::new(
            WindowKind::Count { n: 500 },
            MinerConfig {
                k_max: 2,
                min_support: 4,
                eviction: EvictionStrategy::Eager,
            },
        ),
        registry.clone(),
    );
    session.enable_sharding(shards);
    let mut pipe = IngestPipeline::with_registry(
        PipelineConfig {
            batch_size: BATCH_SIZE,
            ..Default::default()
        },
        registry.clone(),
    );
    let t0 = Instant::now();
    session.ingest_batch(&mut pipe, articles);
    let secs = t0.elapsed().as_secs_f64();
    ShardRun {
        shards,
        secs,
        docs_per_sec: articles.len() as f64 / secs,
        admit_nanos: registry
            .histogram_sum("nous_ingest_stage_seconds", &[("stage", "admit")])
            .unwrap_or(0),
    }
}

fn main() {
    let (world, kb, articles) = corpus();
    let mut runs: Vec<Measurement> = Vec::new();

    runs.push(run(
        &world,
        &kb,
        &articles,
        "sequential",
        PipelineConfig::default(),
        false,
    ));
    for workers in [1usize, 2, 4, 8] {
        let cfg = PipelineConfig {
            batch_size: BATCH_SIZE,
            extract_workers: workers,
            ..Default::default()
        };
        runs.push(run(
            &world,
            &kb,
            &articles,
            &format!("batched_w{workers}"),
            cfg,
            true,
        ));
    }

    let baseline = runs[0].docs_per_sec;
    table_header(
        &format!("ingest throughput ({CORPUS_ARTICLES}-article corpus, batch size {BATCH_SIZE})"),
        &[
            "configuration",
            "secs",
            "docs/s",
            "speedup",
            "admitted",
            "workers",
        ],
        &[14, 8, 10, 8, 9, 7],
    );
    for m in &runs {
        println!(
            "{}",
            row(
                &[
                    m.label.clone(),
                    format!("{:.2}", m.secs),
                    format!("{:.0}", m.docs_per_sec),
                    format!("{:.2}x", m.docs_per_sec / baseline),
                    m.admitted.to_string(),
                    m.workers_used.to_string(),
                ],
                &[14, 8, 10, 8, 9, 7],
            )
        );
    }

    // Record the numbers for the repo (hand-rendered: stable key order).
    let entries: Vec<String> = runs
        .iter()
        .map(|m| {
            format!(
                "    {{\"config\": \"{}\", \"secs\": {:.3}, \"docs_per_sec\": {:.1}, \
                 \"speedup_vs_sequential\": {:.2}, \"admitted\": {}, \"workers_used\": {}}}",
                m.label,
                m.secs,
                m.docs_per_sec,
                m.docs_per_sec / baseline,
                m.admitted,
                m.workers_used
            )
        })
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let frac = extract_fraction(&world, &kb, &articles);
    println!("\nextraction fraction of sequential wall-time: {frac:.3} (host cpus: {host_cpus})");

    // Entity-shard sweep: the full session-level path (admission +
    // per-publish shard sync + snapshot publication) at 1/2/4/8 shards.
    let shard_runs: Vec<ShardRun> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| run_sharded(&world, &kb, &articles, n))
        .collect();
    let one_shard = &shard_runs[0];
    // Fraction of 1-shard session wall-time spent admitting facts — the
    // stage the per-shard fabric parallelizes — measured from the admit
    // stage histogram, not assumed.
    let admission_fraction = (one_shard.admit_nanos as f64 / 1e9) / one_shard.secs;
    // Amdahl projection for 4 shards + 4 extract workers on a host with
    // >=4 cores: both the extract and admit fractions parallelize, the
    // rest (disambiguation, gates, merge bookkeeping, publish) is serial.
    let parallel_fraction = (frac + admission_fraction).min(0.999);
    let amdahl_projection_4 = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 4.0);

    table_header(
        &format!("entity-shard sweep ({CORPUS_ARTICLES}-article corpus, session ingest)"),
        &["shards", "secs", "docs/s", "speedup_vs_1shard"],
        &[7, 8, 10, 18],
    );
    for s in &shard_runs {
        println!(
            "{}",
            row(
                &[
                    s.shards.to_string(),
                    format!("{:.2}", s.secs),
                    format!("{:.0}", s.docs_per_sec),
                    format!("{:.2}x", s.docs_per_sec / one_shard.docs_per_sec),
                ],
                &[7, 8, 10, 18],
            )
        );
    }
    println!(
        "\nadmission fraction of 1-shard wall-time: {admission_fraction:.3}; \
         Amdahl projection at 4 shards + 4 workers: {amdahl_projection_4:.2}x \
         (measured on {host_cpus} cpu(s) — read speedups relative to host_cpus)"
    );

    let shard_entries: Vec<String> = shard_runs
        .iter()
        .map(|s| {
            format!(
                "    {{\"shards\": {}, \"secs\": {:.3}, \"docs_per_sec\": {:.1}, \
                 \"shard_speedup_vs_1shard\": {:.2}}}",
                s.shards,
                s.secs,
                s.docs_per_sec,
                s.docs_per_sec / one_shard.docs_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"corpus_articles\": {CORPUS_ARTICLES},\n  \"batch_size\": {BATCH_SIZE},\n  \
         \"host_cpus\": {host_cpus},\n  \"extract_fraction\": {frac:.3},\n  \
         \"admission_fraction\": {admission_fraction:.3},\n  \
         \"amdahl_projection_4shards\": {amdahl_projection_4:.2},\n  \"runs\": [\n{}\n  ],\n  \
         \"shard_sweep\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        shard_entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
