//! Experiment E8 (§3.4): BPR link-prediction confidence quality and
//! throughput. Prints the quality table (AUC / MRR / Hits@K) for the
//! paper's per-predicate BPR against the global-model ablation, a TransE
//! baseline and random scoring; then times training and scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use nous_bench::{row, table_header};
use nous_corpus::{CuratedKb, Preset, World};
use nous_embed::{
    auc, hits_at_k, mean_reciprocal_rank, BprConfig, LinkPredictor, PredictorMode, RankedEval,
    TransEConfig, TransEModel,
};

struct Data {
    n: usize,
    /// `(predicate name, predicate id, subject, object)`.
    triples: Vec<(String, u32, u32, u32)>,
    preds: Vec<String>,
}

fn data() -> Data {
    let world = World::generate(&Preset::Demo.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let mut preds: Vec<String> = Vec::new();
    let mut triples = Vec::new();
    for t in &kb.triples {
        let name = t.predicate.name().to_owned();
        let pid = match preds.iter().position(|p| *p == name) {
            Some(i) => i as u32,
            None => {
                preds.push(name.clone());
                (preds.len() - 1) as u32
            }
        };
        triples.push((name, pid, t.subject as u32, t.object as u32));
    }
    Data {
        n: world.entities.len(),
        triples,
        preds,
    }
}

/// Rank every true triple against `k` corrupted objects.
fn ranked_evals(d: &Data, score: impl Fn(&str, u32, u32, u32) -> f32) -> Vec<RankedEval> {
    d.triples
        .iter()
        .map(|(p, pid, s, o)| {
            let corrupted = (1..=20u32)
                .map(|delta| {
                    let fake = (o + delta * 7) % d.n as u32;
                    score(p, *pid, *s, fake)
                })
                .collect();
            RankedEval {
                true_score: score(p, *pid, *s, *o),
                corrupted_scores: corrupted,
            }
        })
        .collect()
}

fn quality(d: &Data) {
    // Per-predicate BPR (the paper).
    let mut per = LinkPredictor::new(PredictorMode::PerPredicate, BprConfig::default());
    let flat: Vec<(String, u32, u32)> = d
        .triples
        .iter()
        .map(|(p, _, s, o)| (p.clone(), *s, *o))
        .collect();
    per.fit(d.n, &flat);
    // Global ablation.
    let mut global = LinkPredictor::new(PredictorMode::Global, BprConfig::default());
    global.fit(d.n, &flat);
    // TransE baseline.
    let te_triples: Vec<(u32, u32, u32)> = d
        .triples
        .iter()
        .map(|(_, pid, s, o)| (*s, *pid, *o))
        .collect();
    let te = TransEModel::train(d.n, d.preds.len(), &te_triples, &TransEConfig::default());
    // Random baseline.
    let mut seed = 0x12345u64;
    let mut rand01 = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 33) as f32) / (u32::MAX >> 1) as f32
    };
    let rand_evals: Vec<RankedEval> = d
        .triples
        .iter()
        .map(|_| RankedEval {
            true_score: rand01(),
            corrupted_scores: (0..20).map(|_| rand01()).collect(),
        })
        .collect();

    let models: Vec<(&str, Vec<RankedEval>)> = vec![
        (
            "BPR per-pred",
            ranked_evals(d, |p, _, s, o| per.score(p, s, o)),
        ),
        (
            "BPR global",
            ranked_evals(d, |p, _, s, o| global.score(p, s, o)),
        ),
        (
            "TransE",
            ranked_evals(d, |_, pid, s, o| te.score(s, pid, o)),
        ),
        ("random", rand_evals),
    ];
    table_header(
        "E8: confidence quality over curated KG (20 corruptions per fact)",
        &["model", "AUC", "MRR", "Hits@1", "Hits@10"],
        &[14, 7, 7, 7, 8],
    );
    for (name, evals) in &models {
        let pos: Vec<f32> = evals.iter().map(|e| e.true_score).collect();
        let neg: Vec<f32> = evals
            .iter()
            .flat_map(|e| e.corrupted_scores.iter().copied())
            .collect();
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{:.3}", auc(&pos, &neg)),
                    format!("{:.3}", mean_reciprocal_rank(evals)),
                    format!("{:.3}", hits_at_k(evals, 1)),
                    format!("{:.3}", hits_at_k(evals, 10)),
                ],
                &[14, 7, 7, 7, 8]
            )
        );
    }
}

fn bench(c: &mut Criterion) {
    let d = data();
    println!(
        "\ncurated KG: {} triples, {} predicates, {} entities",
        d.triples.len(),
        d.preds.len(),
        d.n
    );
    quality(&d);

    let flat: Vec<(String, u32, u32)> = d
        .triples
        .iter()
        .map(|(p, _, s, o)| (p.clone(), *s, *o))
        .collect();
    let mut group = c.benchmark_group("link_prediction");
    group.sample_size(10);
    group.bench_function("train_per_predicate", |b| {
        b.iter(|| {
            let mut lp = LinkPredictor::new(PredictorMode::PerPredicate, BprConfig::default());
            lp.fit(d.n, &flat);
            lp
        })
    });
    let mut lp = LinkPredictor::new(PredictorMode::PerPredicate, BprConfig::default());
    lp.fit(d.n, &flat);
    group.bench_function("score_1k_candidates", |b| {
        b.iter(|| {
            let mut acc = 0f32;
            for i in 0..1000u32 {
                acc += lp.score("isLocatedIn", i % d.n as u32, (i * 13) % d.n as u32);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
