//! HTTP serving latency and load-shed behaviour (ISSUE 8 tentpole).
//!
//! Two arrival disciplines against a live `nous-serve` instance over
//! real sockets:
//!
//! - **Closed loop** — N clients, each with one keep-alive connection,
//!   issuing the five query classes round-robin and waiting for every
//!   response: per-request p50/p99 wall latency and aggregate QPS as
//!   concurrency scales.
//! - **Open burst** — a thundering herd of one-shot connections against
//!   a deliberately small server (1 worker, short admission queue): the
//!   shed rate is the fraction refused with 429 instead of queued — the
//!   bounded-latency contract under overload (DESIGN.md §8).
//!
//! Splices a `"serving"` section into `BENCH_query.json` (run after
//! `query_throughput`, which rewrites that file wholesale).
//!
//! ```sh
//! cargo bench -p nous-bench --features bench --bench serving
//! ```

use nous_bench::{row, table_header};
use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, SharedSession, TrendMonitor};
use nous_corpus::{ArticleStream, CuratedKb, Preset, World};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::MetricsRegistry;
use nous_serve::{Server, ServerConfig};
use nous_topics::LdaConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RUN_SECS: f64 = 1.0;
const CLIENTS: [usize; 3] = [1, 2, 4];
const BURST_THREADS: usize = 16;
const BURST_CONNS_PER_THREAD: usize = 8;

fn start_server(cfg: ServerConfig) -> Server {
    let world = World::generate(&Preset::Smoke.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());
    let registry = MetricsRegistry::new();
    let session = Arc::new(SharedSession::with_registry(
        kg,
        nous_qa::TopicIndex::new(2),
        TrendMonitor::new(
            WindowKind::Count { n: 200 },
            MinerConfig {
                k_max: 2,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        ),
        registry.clone(),
    ));
    let mut pipeline = IngestPipeline::with_registry(PipelineConfig::default(), registry.clone());
    session.ingest_batch(&mut pipeline, &articles);
    let topics = session.read(|kg, _| kg.build_topic_index(&LdaConfig::default()));
    session.set_topics(topics);
    session.with_trends(|trends, kg| trends.observe(kg));
    Server::start(session, pipeline, "127.0.0.1:0", cfg).expect("bind")
}

fn query_bodies() -> Vec<String> {
    [
        "TRENDING LIMIT 5",
        "ABOUT Apex Robotics",
        "WHY Apex Robotics -> Condor Labs LIMIT 3",
        "MATCH (*)-[acquired]->(*) LIMIT 5",
        "PATHS Apex Robotics TO Condor Labs MAX 3",
    ]
    .iter()
    .map(|q| format!("{{\"query\":\"{q}\"}}"))
    .collect()
}

/// One keep-alive request/response exchange; returns the status code.
fn exchange(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, body: &str) -> Option<u16> {
    // One write per request: fragmented writes trip Nagle + delayed-ACK.
    let req = format!(
        "POST /query HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    writer.write_all(req.as_bytes()).ok()?;
    writer.flush().ok()?;
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok())
        {
            content_length = v;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(status)
}

struct ClosedLoop {
    clients: usize,
    requests: usize,
    secs: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

fn closed_loop(addr: SocketAddr, clients: usize) -> ClosedLoop {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let bodies = query_bodies();
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let _ = stream.set_nodelay(true);
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::new(stream);
                let mut latencies_nanos: Vec<u64> = Vec::new();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let body = &bodies[i % bodies.len()];
                    i += 1;
                    let t0 = Instant::now();
                    match exchange(&mut reader, &mut writer, body) {
                        Some(200) => latencies_nanos.push(t0.elapsed().as_nanos() as u64),
                        _ => break,
                    }
                }
                latencies_nanos
            })
        })
        .collect();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(RUN_SECS));
    stop.store(true, Ordering::Relaxed);
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let secs = t0.elapsed().as_secs_f64();
    all.sort_unstable();
    ClosedLoop {
        clients,
        requests: all.len(),
        secs,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
    }
}

struct Burst {
    connections: usize,
    ok: usize,
    shed: usize,
    errors: usize,
}

/// Open arrival: every connection fires immediately regardless of
/// completions; a small server must shed the overflow with 429.
fn open_burst(addr: SocketAddr) -> Burst {
    let handles: Vec<_> = (0..BURST_THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let body = "{\"query\":\"MATCH (*)-[acquired]->(*) LIMIT 5\"}";
                let (mut ok, mut shed, mut errors) = (0usize, 0usize, 0usize);
                for _ in 0..BURST_CONNS_PER_THREAD {
                    let Ok(mut stream) = TcpStream::connect(addr) else {
                        errors += 1;
                        continue;
                    };
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                    let req = format!(
                        "POST /query HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\
                         content-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    if stream.write_all(req.as_bytes()).is_err() {
                        errors += 1;
                        continue;
                    }
                    let mut raw = Vec::new();
                    if stream.read_to_end(&mut raw).is_err() || raw.is_empty() {
                        errors += 1;
                        continue;
                    }
                    let status = String::from_utf8_lossy(&raw)
                        .split_whitespace()
                        .nth(1)
                        .and_then(|s| s.parse::<u16>().ok());
                    match status {
                        Some(200) => ok += 1,
                        Some(429) => shed += 1,
                        _ => errors += 1,
                    }
                }
                (ok, shed, errors)
            })
        })
        .collect();
    let mut burst = Burst {
        connections: BURST_THREADS * BURST_CONNS_PER_THREAD,
        ok: 0,
        shed: 0,
        errors: 0,
    };
    for h in handles {
        let (ok, shed, errors) = h.join().expect("burst thread");
        burst.ok += ok;
        burst.shed += shed;
        burst.errors += errors;
    }
    burst
}

/// Insert/replace the `"serving"` section of BENCH_query.json without
/// disturbing the sections `query_throughput` wrote.
fn splice_serving_section(path: &str, serving_json: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_owned());
    let head = match existing.find(",\n  \"serving\"") {
        Some(pos) => existing[..pos].to_owned(),
        None => {
            let trimmed = existing.trim_end().trim_end_matches('}').trim_end();
            let t = trimmed.trim_end_matches(',');
            if t.trim() == "{" {
                "{".to_owned()
            } else {
                t.to_owned()
            }
        }
    };
    let sep = if head.trim() == "{" { "\n" } else { ",\n" };
    let json = format!("{head}{sep}  \"serving\": {serving_json}\n}}\n");
    match std::fs::write(path, json) {
        Ok(()) => println!("\nrecorded {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

fn main() {
    // Closed loop against a default-sized server.
    let server = start_server(ServerConfig::default());
    let addr = server.local_addr();
    table_header(
        "closed-loop serving latency (keep-alive, 5-class round-robin)",
        &["clients", "requests", "qps", "p50 µs", "p99 µs"],
        &[8, 10, 10, 10, 10],
    );
    let mut closed = Vec::new();
    for clients in CLIENTS {
        let m = closed_loop(addr, clients);
        println!(
            "{}",
            row(
                &[
                    m.clients.to_string(),
                    m.requests.to_string(),
                    format!("{:.1}", m.requests as f64 / m.secs),
                    format!("{:.1}", m.p50_us),
                    format!("{:.1}", m.p99_us),
                ],
                &[8, 10, 10, 10, 10],
            )
        );
        closed.push(m);
    }
    server.shutdown();

    // Open burst against a deliberately tiny server: 1 worker, queue of 2.
    let small = start_server(ServerConfig {
        workers: 1,
        max_in_flight: 2,
        ..ServerConfig::default()
    });
    let burst = open_burst(small.local_addr());
    small.shutdown();
    let shed_rate = burst.shed as f64 / burst.connections.max(1) as f64;
    println!(
        "\nopen burst: {} conns → {} ok, {} shed (429), {} errors; shed rate {:.2}",
        burst.connections, burst.ok, burst.shed, burst.errors, shed_rate
    );

    let closed_entries: Vec<String> = closed
        .iter()
        .map(|m| {
            format!(
                "      {{\"clients\": {}, \"requests\": {}, \"qps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
                m.clients,
                m.requests,
                m.requests as f64 / m.secs,
                m.p50_us,
                m.p99_us
            )
        })
        .collect();
    let serving = format!(
        "{{\n    \"run_secs\": {RUN_SECS},\n    \"closed_loop\": [\n{}\n    ],\n    \
         \"open_burst\": {{\"connections\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
         \"shed_rate\": {:.3}}}\n  }}",
        closed_entries.join(",\n"),
        burst.connections,
        burst.ok,
        burst.shed,
        burst.errors,
        shed_rate
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    splice_serving_section(path, &serving);
}
