//! Experiment E6 (Figure 7): streaming miner throughput and the eviction
//! ablation (eager decrement vs rebuild-on-query), plus the support-sweep
//! shape of discovered closed patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nous_bench::{build_system, miner_edges, row, table_header};
use nous_corpus::Preset;
use nous_mining::{EvictionStrategy, MinerConfig, MinerEdge, StreamingMiner};

fn slide_through(
    edges: &[MinerEdge],
    window: usize,
    eviction: EvictionStrategy,
    query_every: usize,
) -> usize {
    let mut miner = StreamingMiner::new(MinerConfig {
        k_max: 2,
        min_support: 4,
        eviction,
    });
    let mut total = 0usize;
    for (i, e) in edges.iter().enumerate() {
        miner.add_edge(*e);
        if i >= window {
            miner.remove_edge(edges[i - window].id);
        }
        if query_every != usize::MAX && i % query_every == 0 {
            total += miner.closed_frequent().len();
        }
    }
    total
}

fn support_sweep(edges: &[MinerEdge]) {
    table_header(
        "E6: closed frequent patterns vs min support (window = full stream, k=2)",
        &["support", "frequent", "closed", "closed/frequent"],
        &[8, 10, 8, 16],
    );
    for support in [2u32, 4, 8, 16, 32] {
        let mut miner = StreamingMiner::new(MinerConfig {
            k_max: 2,
            min_support: support,
            eviction: EvictionStrategy::Eager,
        });
        for e in edges {
            miner.add_edge(*e);
        }
        let frequent = miner.frequent_patterns().len();
        let closed = miner.closed_frequent().len();
        println!(
            "{}",
            row(
                &[
                    support.to_string(),
                    frequent.to_string(),
                    closed.to_string(),
                    format!("{:.2}", closed as f64 / frequent.max(1) as f64),
                ],
                &[8, 10, 8, 16]
            )
        );
    }
}

fn bench(c: &mut Criterion) {
    let system = build_system(Preset::Demo);
    let edges = miner_edges(&system.kg);
    support_sweep(&edges);

    table_header(
        "E6 ablation: eviction strategy (query every 10 edges)",
        &["window", "eager ms", "rebuild ms"],
        &[8, 10, 12],
    );
    for window in [200usize, 400] {
        let t0 = std::time::Instant::now();
        let a = slide_through(&edges, window, EvictionStrategy::Eager, 10);
        let eager = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let b = slide_through(&edges, window, EvictionStrategy::Rebuild, 10);
        let rebuild = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(a, b, "strategies must agree on output");
        println!(
            "{}",
            row(
                &[
                    window.to_string(),
                    format!("{eager:.1}"),
                    format!("{rebuild:.1}")
                ],
                &[8, 10, 12]
            )
        );
    }

    let mut group = c.benchmark_group("mining_stream");
    group.sample_size(10);
    for (name, ev) in [
        ("eager", EvictionStrategy::Eager),
        ("rebuild", EvictionStrategy::Rebuild),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 300), &ev, |b, &ev| {
            b.iter(|| slide_through(&edges, 300, ev, 10))
        });
    }
    // Pure ingestion throughput (no queries): edges/sec into the window.
    group.bench_function("ingest_only_window300", |b| {
        b.iter(|| slide_through(&edges, 300, EvictionStrategy::Eager, usize::MAX))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
