//! Experiment E4 (Figure 5): latency of each of the five query classes
//! against a pipeline-built knowledge graph, plus a correctness smoke table.

use criterion::{criterion_group, criterion_main, Criterion};
use nous_bench::{build_system, table_header};
use nous_core::TrendMonitor;
use nous_corpus::Preset;
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_query::{execute, parse, QueryResult};
use nous_topics::LdaConfig;

fn bench(c: &mut Criterion) {
    let system = build_system(Preset::Demo);
    let kg = system.kg;
    let topics = kg.build_topic_index(&LdaConfig::default());
    let mut trends = TrendMonitor::new(
        WindowKind::Count { n: 400 },
        MinerConfig {
            k_max: 2,
            min_support: 8,
            eviction: EvictionStrategy::Eager,
        },
    );
    trends.observe(&kg);

    let a = system.world.entities[system.world.companies[0]]
        .name
        .clone();
    let b = system.world.entities[system.world.companies[1]]
        .name
        .clone();
    let queries: Vec<(&str, String)> = vec![
        ("trending", "TRENDING LIMIT 5".to_owned()),
        ("entity", format!("ABOUT {a}")),
        ("why", format!("WHY {a} -> {b} LIMIT 3")),
        (
            "match",
            "MATCH (Company)-[acquired]->(Company) LIMIT 5".to_owned(),
        ),
        ("paths", format!("PATHS {a} TO {b} MAX 3 LIMIT 5")),
    ];

    table_header(
        "E4: query classes smoke results",
        &["class", "result summary"],
        &[10, 48],
    );
    for (name, q) in &queries {
        let r = execute(&parse(q).expect("valid query"), &kg, &topics, &mut trends);
        let summary = match &r {
            QueryResult::Trending(v) => format!("{} patterns", v.len()),
            QueryResult::Entity { facts, .. } => format!("{} facts", facts.len()),
            QueryResult::Paths(p) => format!("{} paths", p.len()),
            QueryResult::Matches { total, .. } => format!("{total} matches"),
            QueryResult::Timeline(items) => format!("{} dated facts", items.len()),
            QueryResult::NotFound(w) => format!("NOT FOUND: {w}"),
        };
        println!("{name:>10}  {summary}");
        assert!(
            !matches!(r, QueryResult::NotFound(_)),
            "query class {name} failed to answer"
        );
    }

    let mut group = c.benchmark_group("query_classes");
    for (name, q) in &queries {
        let parsed = parse(q).expect("valid query");
        group.bench_function(*name, |bch| {
            bch.iter(|| execute(&parsed, &kg, &topics, &mut trends))
        });
    }
    group.bench_function("parse_only", |bch| {
        bch.iter(|| {
            queries
                .iter()
                .map(|(_, q)| parse(q).is_ok())
                .filter(|x| *x)
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
