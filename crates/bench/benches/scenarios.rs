//! Adversarial-regime scenario suite (ROADMAP item 5).
//!
//! Drives each workload regime — emerging entities, contradiction/
//! revision, burst/skew arrival, noisy extraction — through the full
//! ingest → publish → query stack via `nous_bench::scenarios::run_regime`
//! and records `BENCH_scenarios.json` at the repo root with per-regime
//! update-latency percentiles, checkpointed precision/recall against the
//! evolving oracle, and graceful-degradation counters (including the
//! zero-acked-loss crash/recovery check).
//!
//! Knobs:
//! - `NOUS_SCENARIO_SEED=n` — regenerate every regime from seed `n`.
//! - `NOUS_SCENARIO_MODE=demo` — bench-sized corpora (default: smoke,
//!   the CI size).
//!
//! With the `fault-injection` feature compiled in, the noisy regime runs
//! under a seeded fault plan (extractor poison + WAL append/fsync
//! faults); the zero-acked-loss criterion must hold regardless.
//!
//! Exits non-zero if any regime's scorecard is missing a metric or
//! carries a NaN — the CI gate.

use nous_bench::scenarios::{run_regime, RegimeScore};
use nous_bench::{row, table_header};
use nous_corpus::scenarios::{seed_from_env, Regime, ScenarioConfig};
use nous_fault::Faults;

/// The noisy regime's fault plan: extraction poison plus WAL faults, all
/// seeded — a no-op unless `fault-injection` is compiled in.
fn noisy_faults(seed: u64) -> Faults {
    #[cfg(feature = "fault-injection")]
    {
        use nous_fault::{FaultPlan, SitePlan};
        FaultPlan::from_seed(seed)
            .site(nous_extract::FP_EXTRACT_POISON, SitePlan::probability(0.08))
            .site(nous_persist::FP_WAL_APPEND, SitePlan::probability(0.05))
            .site(nous_persist::FP_WAL_FSYNC, SitePlan::probability(0.05))
            .arm()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = seed;
        Faults::disabled()
    }
}

fn main() {
    let seed = seed_from_env(11);
    let demo = std::env::var("NOUS_SCENARIO_MODE").is_ok_and(|m| m == "demo");
    let mode = if demo { "demo" } else { "smoke" };
    println!("scenario suite: mode={mode} seed={seed}");

    let mut scores: Vec<RegimeScore> = Vec::new();
    for regime in Regime::ALL {
        let cfg = if demo {
            ScenarioConfig::demo(regime)
        } else {
            ScenarioConfig::smoke(regime)
        }
        .with_seed(seed);
        let faults = if regime == Regime::Noisy {
            noisy_faults(seed)
        } else {
            Faults::disabled()
        };
        scores.push(run_regime(&cfg, faults, 4));
    }

    let widths = [13usize, 8, 8, 10, 10, 9, 9, 7, 6, 6];
    table_header(
        "Scenario regimes (final checkpoint)",
        &[
            "regime",
            "articles",
            "admitted",
            "p50 ms",
            "p99 ms",
            "precision",
            "recall",
            "quarant",
            "supers",
            "lost",
        ],
        &widths,
    );
    for s in &scores {
        let last = s.checkpoints.last().expect("checkpoints");
        println!(
            "{}",
            row(
                &[
                    s.regime.clone(),
                    s.articles.to_string(),
                    s.admitted.to_string(),
                    format!("{:.2}", s.update_latency_p50_ms),
                    format!("{:.2}", s.update_latency_p99_ms),
                    format!("{:.2}", last.precision),
                    format!("{:.2}", last.recall),
                    s.degradation.quarantined.to_string(),
                    s.degradation.revision_superseded.to_string(),
                    s.degradation.lost_acked_docs.to_string(),
                ],
                &widths
            )
        );
    }

    let mut failures = Vec::new();
    for s in &scores {
        if let Err(e) = s.validate() {
            failures.push(e);
        }
    }

    #[derive(serde::Serialize)]
    struct Suite<'a> {
        mode: &'a str,
        seed: u64,
        fault_injection: bool,
        regimes: &'a [RegimeScore],
    }
    let suite = Suite {
        mode,
        seed,
        fault_injection: cfg!(feature = "fault-injection"),
        regimes: &scores,
    };
    let json = serde_json::to_string_pretty(&suite).expect("scores serialize");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenarios.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nrecorded {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("scenario gate failure: {f}");
        }
        std::process::exit(1);
    }
}
