//! Document model and document-level extraction.

use nous_text::bow::BagOfWords;
use nous_text::ner::{EntityType, Gazetteer};
use nous_text::openie::ExtractorConfig;
use serde::{Deserialize, Serialize};

/// One input document of the stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    pub id: u64,
    /// Logical publication day (days since the corpus epoch).
    pub day: u64,
    pub text: String,
}

impl From<&nous_corpus::Article> for Document {
    fn from(a: &nous_corpus::Article) -> Self {
        Document {
            id: a.id,
            day: a.day,
            text: a.body.clone(),
        }
    }
}

/// One candidate fact extracted from a document, with full provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    pub doc_id: u64,
    pub day: u64,
    /// Sentence index within the document.
    pub sentence: usize,
    /// Subject surface (coreference already substituted).
    pub subject: String,
    /// NER type hint for the subject mention, when one matched.
    pub subject_type: Option<EntityType>,
    /// Normalised raw predicate (verb lemma, possibly `lemma_prep`).
    pub predicate: String,
    pub object: String,
    pub object_type: Option<EntityType>,
    /// N-ary `(preposition, argument surface)` pairs.
    pub extra_args: Vec<(String, String)>,
    pub negated: bool,
    /// Extractor-heuristic confidence in `[0.05, 0.95]`.
    pub confidence: f32,
}

impl Extraction {
    /// The dedup key: one fact per `(subject, predicate, object)` per doc.
    fn key(&self) -> (String, String, String) {
        (
            self.subject.to_lowercase(),
            self.predicate.clone(),
            self.object.to_lowercase(),
        )
    }
}

/// Everything extracted from one document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DocExtraction {
    pub doc_id: u64,
    pub sentences: usize,
    /// Deduplicated extractions in reading order.
    pub extractions: Vec<Extraction>,
    /// Count before within-document dedup (over-generation diagnostics).
    pub raw_count: usize,
    /// Bag-of-words of the whole document (the disambiguation context).
    pub context: BagOfWords,
}

/// Run the §3.2 pipeline over a document and flatten to extractions.
///
/// A repeated statement inside one document ("X bought Y. … X bought Y
/// for $2M.") collapses to the higher-confidence copy — cross-document
/// repetition is evidence (corroboration), within-document repetition is
/// just prose.
pub fn extract_document(
    doc: &Document,
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
) -> DocExtraction {
    let analyzed = nous_text::analyze(&doc.text, gazetteer, cfg);
    let mut extractions: Vec<Extraction> = Vec::new();
    let mut raw_count = 0usize;

    for (sidx, sentence) in analyzed.sentences.iter().enumerate() {
        let type_of = |surface: &str| {
            sentence
                .mentions
                .iter()
                .find(|m| m.text.eq_ignore_ascii_case(surface))
                .map(|m| m.entity_type)
        };
        for t in &sentence.triples {
            raw_count += 1;
            let candidate = Extraction {
                doc_id: doc.id,
                day: doc.day,
                sentence: sidx,
                subject: t.subject.text.clone(),
                subject_type: type_of(&t.subject.text),
                predicate: t.predicate.clone(),
                object: t.object.text.clone(),
                object_type: type_of(&t.object.text),
                extra_args: t
                    .extra_args
                    .iter()
                    .map(|(prep, arg)| (prep.clone(), arg.text.clone()))
                    .collect(),
                negated: t.negated,
                confidence: t.confidence,
            };
            match extractions.iter_mut().find(|e| e.key() == candidate.key()) {
                Some(existing) => {
                    if candidate.confidence > existing.confidence {
                        *existing = candidate;
                    }
                }
                None => extractions.push(candidate),
            }
        }
    }

    DocExtraction {
        doc_id: doc.id,
        sentences: analyzed.sentences.len(),
        extractions,
        raw_count,
        context: BagOfWords::from_text(&doc.text),
    }
}

/// Extract a batch of documents on parallel worker threads (`workers == 0`
/// means auto — `NOUS_THREADS` or the hardware parallelism).
///
/// Extraction is stateless with respect to the knowledge graph: every
/// document in the batch reads the same immutable gazetteer snapshot, so
/// the fan-out is embarrassingly parallel and the output is the exact
/// sequence `docs.iter().map(|d| extract_document(d, ..))` would produce —
/// input order is preserved for the downstream sequential merge stage.
pub fn extract_documents(
    docs: &[Document],
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
    workers: usize,
) -> Vec<DocExtraction> {
    extract_documents_counted(docs, gazetteer, cfg, workers).0
}

/// [`extract_documents`] plus per-worker document counts: the second
/// return value has one entry per worker thread actually used, holding how
/// many documents that worker extracted. Telemetry reads it to report the
/// realised (not merely configured) fan-out width.
pub fn extract_documents_counted(
    docs: &[Document],
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
    workers: usize,
) -> (Vec<DocExtraction>, Vec<usize>) {
    nous_graph::parallel::par_map_chunks_counted(docs, workers, |d| {
        extract_document(d, gazetteer, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.insert("Apex Robotics", EntityType::Organization);
        g.insert("Condor Labs", EntityType::Organization);
        g.insert("Shenzhen", EntityType::Location);
        g
    }

    fn doc(text: &str) -> Document {
        Document {
            id: 9,
            day: 120,
            text: text.to_owned(),
        }
    }

    #[test]
    fn provenance_is_stamped() {
        let d = extract_document(
            &doc("Apex Robotics acquired Condor Labs."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        assert_eq!(d.doc_id, 9);
        assert_eq!(d.sentences, 1);
        let e = d
            .extractions
            .iter()
            .find(|e| e.predicate == "acquire")
            .unwrap();
        assert_eq!(e.doc_id, 9);
        assert_eq!(e.day, 120);
        assert_eq!(e.sentence, 0);
        assert_eq!(e.subject_type, Some(EntityType::Organization));
        assert_eq!(e.object_type, Some(EntityType::Organization));
    }

    #[test]
    fn within_document_repeats_collapse() {
        let d = extract_document(
            &doc("Apex Robotics acquired Condor Labs. Apex Robotics acquired Condor Labs."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        let acquires: Vec<_> = d
            .extractions
            .iter()
            .filter(|e| e.predicate == "acquire")
            .collect();
        assert_eq!(acquires.len(), 1, "deduped: {acquires:?}");
        assert!(
            d.raw_count >= 2,
            "raw count keeps the over-generation signal"
        );
    }

    #[test]
    fn dedup_keeps_highest_confidence_copy() {
        // Same fact, once with a pronoun subject (penalised) and once named.
        let d = extract_document(
            &doc("Apex Robotics announced a deal. It acquired Condor Labs. \
                  Apex Robotics acquired Condor Labs."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        let e = d
            .extractions
            .iter()
            .find(|e| e.predicate == "acquire")
            .unwrap();
        // Coref rewrote the pronoun, so both copies share the key; the
        // named-subject copy has the higher confidence.
        assert!(e.confidence >= 0.7, "kept the stronger copy: {e:?}");
    }

    #[test]
    fn extra_args_flattened() {
        let d = extract_document(
            &doc("Apex Robotics launched the Phantom 9 in Shenzhen in March."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        let e = d
            .extractions
            .iter()
            .find(|e| e.predicate == "launch")
            .unwrap();
        assert_eq!(e.extra_args.len(), 2);
        assert_eq!(e.extra_args[0].0, "in");
    }

    #[test]
    fn document_from_article() {
        let (_, kb, articles) = nous_corpus::Preset::Smoke.build();
        let _ = kb;
        let d = Document::from(&articles[0]);
        assert_eq!(d.id, articles[0].id);
        assert_eq!(d.day, articles[0].day);
        assert_eq!(d.text, articles[0].body);
    }

    #[test]
    fn empty_document() {
        let d = extract_document(&doc(""), &gaz(), &ExtractorConfig::default());
        assert_eq!(d.sentences, 0);
        assert!(d.extractions.is_empty());
        assert_eq!(d.raw_count, 0);
    }

    #[test]
    fn batch_extraction_matches_per_document_calls() {
        let g = gaz();
        let cfg = ExtractorConfig::default();
        let docs: Vec<Document> = (0..24)
            .map(|i| Document {
                id: i,
                day: 100 + i,
                text: format!(
                    "Apex Robotics acquired Condor Labs. \
                     Condor Labs launched the Falcon {i} in Shenzhen."
                ),
            })
            .collect();
        let seq: Vec<DocExtraction> = docs.iter().map(|d| extract_document(d, &g, &cfg)).collect();
        for workers in [0, 1, 4] {
            let par = extract_documents(&docs, &g, &cfg, workers);
            assert_eq!(par.len(), seq.len());
            for (p, s) in par.iter().zip(&seq) {
                assert_eq!(p.doc_id, s.doc_id, "order preserved (workers={workers})");
                assert_eq!(p.extractions, s.extractions);
                assert_eq!(p.raw_count, s.raw_count);
            }
        }
    }
}
