//! Document model and document-level extraction.

use nous_fault::Faults;
use nous_text::bow::BagOfWords;
use nous_text::ner::{EntityType, Gazetteer};
use nous_text::openie::ExtractorConfig;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Failpoint keyed by document id: when it fires, the document fails
/// extraction with an injected error (no panic) and is quarantined.
pub const FP_EXTRACT_POISON: &str = "extract.poison";
/// Failpoint keyed by document id: when it fires, the extraction worker
/// *panics* mid-document — exercising the `catch_unwind` isolation that
/// also guards against real extractor bugs.
pub const FP_EXTRACT_PANIC: &str = "extract.panic";

/// One input document of the stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    pub id: u64,
    /// Logical publication day (days since the corpus epoch).
    pub day: u64,
    pub text: String,
}

impl From<&nous_corpus::Article> for Document {
    fn from(a: &nous_corpus::Article) -> Self {
        Document {
            id: a.id,
            day: a.day,
            text: a.body.clone(),
        }
    }
}

/// One candidate fact extracted from a document, with full provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    pub doc_id: u64,
    pub day: u64,
    /// Sentence index within the document.
    pub sentence: usize,
    /// Subject surface (coreference already substituted).
    pub subject: String,
    /// NER type hint for the subject mention, when one matched.
    pub subject_type: Option<EntityType>,
    /// Normalised raw predicate (verb lemma, possibly `lemma_prep`).
    pub predicate: String,
    pub object: String,
    pub object_type: Option<EntityType>,
    /// N-ary `(preposition, argument surface)` pairs.
    pub extra_args: Vec<(String, String)>,
    pub negated: bool,
    /// Extractor-heuristic confidence in `[0.05, 0.95]`.
    pub confidence: f32,
}

impl Extraction {
    /// The dedup key: one fact per `(subject, predicate, object)` per doc.
    fn key(&self) -> (String, String, String) {
        (
            self.subject.to_lowercase(),
            self.predicate.clone(),
            self.object.to_lowercase(),
        )
    }
}

/// Everything extracted from one document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DocExtraction {
    pub doc_id: u64,
    pub sentences: usize,
    /// Deduplicated extractions in reading order.
    pub extractions: Vec<Extraction>,
    /// Count before within-document dedup (over-generation diagnostics).
    pub raw_count: usize,
    /// Bag-of-words of the whole document (the disambiguation context).
    pub context: BagOfWords,
}

/// Run the §3.2 pipeline over a document and flatten to extractions.
///
/// A repeated statement inside one document ("X bought Y. … X bought Y
/// for $2M.") collapses to the higher-confidence copy — cross-document
/// repetition is evidence (corroboration), within-document repetition is
/// just prose.
pub fn extract_document(
    doc: &Document,
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
) -> DocExtraction {
    let analyzed = nous_text::analyze(&doc.text, gazetteer, cfg);
    let mut extractions: Vec<Extraction> = Vec::new();
    let mut raw_count = 0usize;

    for (sidx, sentence) in analyzed.sentences.iter().enumerate() {
        let type_of = |surface: &str| {
            sentence
                .mentions
                .iter()
                .find(|m| m.text.eq_ignore_ascii_case(surface))
                .map(|m| m.entity_type)
        };
        for t in &sentence.triples {
            raw_count += 1;
            let candidate = Extraction {
                doc_id: doc.id,
                day: doc.day,
                sentence: sidx,
                subject: t.subject.text.clone(),
                subject_type: type_of(&t.subject.text),
                predicate: t.predicate.clone(),
                object: t.object.text.clone(),
                object_type: type_of(&t.object.text),
                extra_args: t
                    .extra_args
                    .iter()
                    .map(|(prep, arg)| (prep.clone(), arg.text.clone()))
                    .collect(),
                negated: t.negated,
                confidence: t.confidence,
            };
            match extractions.iter_mut().find(|e| e.key() == candidate.key()) {
                Some(existing) => {
                    if candidate.confidence > existing.confidence {
                        *existing = candidate;
                    }
                }
                None => extractions.push(candidate),
            }
        }
    }

    DocExtraction {
        doc_id: doc.id,
        sentences: analyzed.sentences.len(),
        extractions,
        raw_count,
        context: BagOfWords::from_text(&doc.text),
    }
}

/// Extract a batch of documents on parallel worker threads (`workers == 0`
/// means auto — `NOUS_THREADS` or the hardware parallelism).
///
/// Extraction is stateless with respect to the knowledge graph: every
/// document in the batch reads the same immutable gazetteer snapshot, so
/// the fan-out is embarrassingly parallel and the output is the exact
/// sequence `docs.iter().map(|d| extract_document(d, ..))` would produce —
/// input order is preserved for the downstream sequential merge stage.
pub fn extract_documents(
    docs: &[Document],
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
    workers: usize,
) -> Vec<DocExtraction> {
    extract_documents_counted(docs, gazetteer, cfg, workers).0
}

/// [`extract_documents`] plus per-worker document counts: the second
/// return value has one entry per worker thread actually used, holding how
/// many documents that worker extracted. Telemetry reads it to report the
/// realised (not merely configured) fan-out width.
pub fn extract_documents_counted(
    docs: &[Document],
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
    workers: usize,
) -> (Vec<DocExtraction>, Vec<usize>) {
    nous_graph::parallel::par_map_chunks_counted(docs, workers, |d| {
        extract_document(d, gazetteer, cfg)
    })
}

/// A document that failed extraction: the input's identity plus the error
/// that took it out, parked for offline inspection / reprocessing instead
/// of poisoning the whole micro-batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedDoc {
    pub doc_id: u64,
    pub day: u64,
    pub error: String,
}

/// [`extract_document`] hardened for fleet use: the extractor runs under
/// `catch_unwind`, so a panicking document (extractor bug, or the
/// [`FP_EXTRACT_PANIC`] failpoint) comes back as `Err` instead of killing
/// the worker thread. The [`FP_EXTRACT_POISON`] failpoint injects a
/// non-panicking failure the same way. Both failpoints are keyed by the
/// document id, so which documents fail is a pure function of the fault
/// seed — independent of worker count and scheduling.
pub fn try_extract_document(
    doc: &Document,
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
    faults: &Faults,
) -> Result<DocExtraction, String> {
    if faults.hit_keyed(FP_EXTRACT_POISON, doc.id) {
        return Err(format!("injected fault: {FP_EXTRACT_POISON}"));
    }
    catch_unwind(AssertUnwindSafe(|| {
        if faults.hit_keyed(FP_EXTRACT_PANIC, doc.id) {
            panic!("injected fault: {FP_EXTRACT_PANIC}");
        }
        extract_document(doc, gazetteer, cfg)
    }))
    .map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked (non-string payload)".to_owned());
        format!("extraction panicked: {msg}")
    })
}

/// [`extract_documents_counted`] with poison-document quarantine: failed
/// documents (panic or injected fault) are diverted into the third return
/// value instead of aborting the batch; the first holds the surviving
/// extractions in input order. With no faults armed and no panics this is
/// exactly `extract_documents_counted` plus an empty quarantine, so the
/// batch_size=1 determinism contract is unchanged for surviving docs.
pub fn extract_documents_quarantined(
    docs: &[Document],
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
    workers: usize,
    faults: &Faults,
) -> (Vec<DocExtraction>, Vec<usize>, Vec<QuarantinedDoc>) {
    let (results, worker_docs) = nous_graph::parallel::par_map_chunks_counted(docs, workers, |d| {
        try_extract_document(d, gazetteer, cfg, faults).map_err(|error| QuarantinedDoc {
            doc_id: d.id,
            day: d.day,
            error,
        })
    });
    let mut ok = Vec::with_capacity(results.len());
    let mut quarantined = Vec::new();
    for r in results {
        match r {
            Ok(ext) => ok.push(ext),
            Err(q) => quarantined.push(q),
        }
    }
    (ok, worker_docs, quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.insert("Apex Robotics", EntityType::Organization);
        g.insert("Condor Labs", EntityType::Organization);
        g.insert("Shenzhen", EntityType::Location);
        g
    }

    fn doc(text: &str) -> Document {
        Document {
            id: 9,
            day: 120,
            text: text.to_owned(),
        }
    }

    #[test]
    fn provenance_is_stamped() {
        let d = extract_document(
            &doc("Apex Robotics acquired Condor Labs."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        assert_eq!(d.doc_id, 9);
        assert_eq!(d.sentences, 1);
        let e = d
            .extractions
            .iter()
            .find(|e| e.predicate == "acquire")
            .unwrap();
        assert_eq!(e.doc_id, 9);
        assert_eq!(e.day, 120);
        assert_eq!(e.sentence, 0);
        assert_eq!(e.subject_type, Some(EntityType::Organization));
        assert_eq!(e.object_type, Some(EntityType::Organization));
    }

    #[test]
    fn within_document_repeats_collapse() {
        let d = extract_document(
            &doc("Apex Robotics acquired Condor Labs. Apex Robotics acquired Condor Labs."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        let acquires: Vec<_> = d
            .extractions
            .iter()
            .filter(|e| e.predicate == "acquire")
            .collect();
        assert_eq!(acquires.len(), 1, "deduped: {acquires:?}");
        assert!(
            d.raw_count >= 2,
            "raw count keeps the over-generation signal"
        );
    }

    #[test]
    fn dedup_keeps_highest_confidence_copy() {
        // Same fact, once with a pronoun subject (penalised) and once named.
        let d = extract_document(
            &doc("Apex Robotics announced a deal. It acquired Condor Labs. \
                  Apex Robotics acquired Condor Labs."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        let e = d
            .extractions
            .iter()
            .find(|e| e.predicate == "acquire")
            .unwrap();
        // Coref rewrote the pronoun, so both copies share the key; the
        // named-subject copy has the higher confidence.
        assert!(e.confidence >= 0.7, "kept the stronger copy: {e:?}");
    }

    #[test]
    fn extra_args_flattened() {
        let d = extract_document(
            &doc("Apex Robotics launched the Phantom 9 in Shenzhen in March."),
            &gaz(),
            &ExtractorConfig::default(),
        );
        let e = d
            .extractions
            .iter()
            .find(|e| e.predicate == "launch")
            .unwrap();
        assert_eq!(e.extra_args.len(), 2);
        assert_eq!(e.extra_args[0].0, "in");
    }

    #[test]
    fn document_from_article() {
        let (_, kb, articles) = nous_corpus::Preset::Smoke.build();
        let _ = kb;
        let d = Document::from(&articles[0]);
        assert_eq!(d.id, articles[0].id);
        assert_eq!(d.day, articles[0].day);
        assert_eq!(d.text, articles[0].body);
    }

    #[test]
    fn empty_document() {
        let d = extract_document(&doc(""), &gaz(), &ExtractorConfig::default());
        assert_eq!(d.sentences, 0);
        assert!(d.extractions.is_empty());
        assert_eq!(d.raw_count, 0);
    }

    #[test]
    fn quarantined_batch_without_faults_matches_plain_extraction() {
        let g = gaz();
        let cfg = ExtractorConfig::default();
        let docs: Vec<Document> = (0..8)
            .map(|i| Document {
                id: i,
                day: i,
                text: format!("Apex Robotics acquired Condor Labs in round {i}."),
            })
            .collect();
        let plain = extract_documents(&docs, &g, &cfg, 2);
        let (ok, _, quarantined) =
            extract_documents_quarantined(&docs, &g, &cfg, 2, &Faults::disabled());
        assert!(quarantined.is_empty());
        assert_eq!(ok.len(), plain.len());
        for (a, b) in ok.iter().zip(&plain) {
            assert_eq!(a.doc_id, b.doc_id);
            assert_eq!(a.extractions, b.extractions);
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn poison_failpoint_quarantines_exactly_the_keyed_docs() {
        use nous_fault::{FaultPlan, SitePlan};
        let g = gaz();
        let cfg = ExtractorConfig::default();
        let docs: Vec<Document> = (0..16)
            .map(|i| Document {
                id: 100 + i,
                day: i,
                text: "Apex Robotics acquired Condor Labs.".to_owned(),
            })
            .collect();
        let plan = FaultPlan::from_seed(42).site(FP_EXTRACT_POISON, SitePlan::probability(0.3));
        // The pure preview predicts exactly which doc ids fail, regardless
        // of worker count/scheduling (keyed decisions are order-free).
        let expect: Vec<u64> = docs
            .iter()
            .map(|d| d.id)
            .filter(|id| plan.would_fire_keyed(FP_EXTRACT_POISON, *id))
            .collect();
        assert!(!expect.is_empty(), "seed 42 must poison at least one doc");
        assert!(expect.len() < docs.len(), "and spare at least one");
        for workers in [1, 4] {
            let faults = plan.clone().arm();
            let (ok, _, quarantined) =
                extract_documents_quarantined(&docs, &g, &cfg, workers, &faults);
            let got: Vec<u64> = quarantined.iter().map(|q| q.doc_id).collect();
            assert_eq!(got, expect, "workers={workers}");
            assert_eq!(ok.len() + quarantined.len(), docs.len());
            assert!(quarantined.iter().all(|q| q.error.contains("injected")));
            // Survivors keep input order and skip the poisoned ids.
            let ok_ids: Vec<u64> = ok.iter().map(|e| e.doc_id).collect();
            let expect_ok: Vec<u64> = docs
                .iter()
                .map(|d| d.id)
                .filter(|id| !expect.contains(id))
                .collect();
            assert_eq!(ok_ids, expect_ok);
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn worker_panic_is_caught_and_quarantined() {
        use nous_fault::{FaultPlan, SitePlan};
        let g = gaz();
        let cfg = ExtractorConfig::default();
        let docs: Vec<Document> = (0..4)
            .map(|i| Document {
                id: i,
                day: i,
                text: "Apex Robotics acquired Condor Labs.".to_owned(),
            })
            .collect();
        let faults = FaultPlan::from_seed(1)
            .site(FP_EXTRACT_PANIC, SitePlan::schedule(vec![2]))
            .arm();
        // Silence the default hook for the duration: the panic is expected.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (ok, _, quarantined) = extract_documents_quarantined(&docs, &g, &cfg, 2, &faults);
        std::panic::set_hook(prev);
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].doc_id, 2);
        assert!(
            quarantined[0].error.contains("panicked"),
            "{}",
            quarantined[0].error
        );
        assert_eq!(ok.len(), 3, "batch survives a panicking worker doc");
    }

    #[test]
    fn batch_extraction_matches_per_document_calls() {
        let g = gaz();
        let cfg = ExtractorConfig::default();
        let docs: Vec<Document> = (0..24)
            .map(|i| Document {
                id: i,
                day: 100 + i,
                text: format!(
                    "Apex Robotics acquired Condor Labs. \
                     Condor Labs launched the Falcon {i} in Shenzhen."
                ),
            })
            .collect();
        let seq: Vec<DocExtraction> = docs.iter().map(|d| extract_document(d, &g, &cfg)).collect();
        for workers in [0, 1, 4] {
            let par = extract_documents(&docs, &g, &cfg, workers);
            assert_eq!(par.len(), seq.len());
            for (p, s) in par.iter().zip(&seq) {
                assert_eq!(p.doc_id, s.doc_id, "order preserved (workers={workers})");
                assert_eq!(p.extractions, s.extractions);
                assert_eq!(p.raw_count, s.raw_count);
            }
        }
    }
}
