//! Ground-truth evaluation of extraction quality.
//!
//! The synthetic corpus records which facts each article expresses, which
//! makes extraction measurable — demo feature 1's "trade-off from various
//! heuristics" needs exactly these numbers. Shared by the E3/E11 benches
//! and the corpus↔pipeline contract tests.

use crate::document::{extract_document, Document};
use nous_corpus::{Article, World, ONTOLOGY};
use nous_text::ner::Gazetteer;
use nous_text::openie::ExtractorConfig;
use serde::{Deserialize, Serialize};

/// Aggregate extraction quality over a stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractionQuality {
    /// Ground-truth facts whose surface form was recovered.
    pub recalled: usize,
    /// Total ground-truth facts.
    pub truth_total: usize,
    /// Raw tuples whose predicate is an ontology surface form.
    pub grounded: usize,
    /// Total raw tuples produced (after within-document dedup).
    pub yielded: usize,
}

impl ExtractionQuality {
    pub fn recall(&self) -> f64 {
        self.recalled as f64 / self.truth_total.max(1) as f64
    }

    /// Precision proxy: fraction of output that expresses an ontology
    /// relation at all (the rest is OpenIE over-generation).
    pub fn precision(&self) -> f64 {
        self.grounded as f64 / self.yielded.max(1) as f64
    }
}

/// Does `surface` mention entity `idx` (by any alias, substring match)?
fn matches_entity(world: &World, surface: &str, idx: usize) -> bool {
    let lower = surface.to_lowercase();
    world.entities[idx]
        .aliases
        .iter()
        .any(|al| lower.contains(&al.to_lowercase()))
}

/// Score extraction over `articles` with the given heuristics.
pub fn evaluate_stream(
    world: &World,
    articles: &[Article],
    gazetteer: &Gazetteer,
    cfg: &ExtractorConfig,
) -> ExtractionQuality {
    let mut q = ExtractionQuality::default();
    for article in articles {
        let doc = Document::from(article);
        let extracted = extract_document(&doc, gazetteer, cfg);
        q.yielded += extracted.extractions.len();
        for e in &extracted.extractions {
            if ONTOLOGY
                .iter()
                .any(|op| op.surface_forms().iter().any(|(sf, _)| *sf == e.predicate))
            {
                q.grounded += 1;
            }
        }
        for f in &article.facts {
            q.truth_total += 1;
            let sub = world.by_name(&f.subject).expect("canonical subject");
            let obj = world.by_name(&f.object).expect("canonical object");
            let forms = f.predicate.surface_forms();
            let hit = extracted.extractions.iter().any(|e| {
                forms.iter().any(|(sf, inv)| {
                    *sf == e.predicate
                        && if *inv {
                            matches_entity(world, &e.subject, obj)
                                && matches_entity(world, &e.object, sub)
                        } else {
                            matches_entity(world, &e.subject, sub)
                                && matches_entity(world, &e.object, obj)
                        }
                })
            });
            if hit {
                q.recalled += 1;
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_corpus::world::Kind;
    use nous_corpus::Preset;
    use nous_text::ner::EntityType;

    fn setup() -> (World, Vec<Article>, Gazetteer) {
        let (world, kb, _) = Preset::Smoke.build();
        let mut sc = Preset::Smoke.stream_config();
        sc.articles = 80;
        let articles = nous_corpus::ArticleStream::generate(&world, &kb, &sc);
        let mut gaz = Gazetteer::new();
        for e in &world.entities {
            let ty = match e.kind {
                Kind::Company => EntityType::Organization,
                Kind::Person => EntityType::Person,
                Kind::Location => EntityType::Location,
                Kind::Product => EntityType::Product,
            };
            for a in &e.aliases {
                gaz.insert(a, ty);
            }
        }
        (world, articles, gaz)
    }

    #[test]
    fn default_heuristics_reach_contract_quality() {
        let (world, articles, gaz) = setup();
        let q = evaluate_stream(&world, &articles, &gaz, &ExtractorConfig::default());
        assert!(q.truth_total > 50);
        assert!(q.recall() > 0.6, "recall {:.2}", q.recall());
        assert!(q.precision() > 0.2, "precision {:.2}", q.precision());
        assert!(q.yielded >= q.grounded);
    }

    #[test]
    fn confidence_threshold_trades_recall_for_precision() {
        let (world, articles, gaz) = setup();
        let loose = evaluate_stream(&world, &articles, &gaz, &ExtractorConfig::default());
        let strict = evaluate_stream(
            &world,
            &articles,
            &gaz,
            &ExtractorConfig {
                min_confidence: 0.7,
                ..Default::default()
            },
        );
        assert!(
            strict.precision() > loose.precision(),
            "threshold lifts precision"
        );
        assert!(strict.recall() <= loose.recall(), "and cannot raise recall");
        assert!(strict.yielded < loose.yielded);
    }

    #[test]
    fn quality_ratios_are_bounded() {
        let (world, articles, gaz) = setup();
        let q = evaluate_stream(&world, &articles, &gaz, &ExtractorConfig::default());
        assert!((0.0..=1.0).contains(&q.recall()));
        assert!((0.0..=1.0).contains(&q.precision()));
        let empty = ExtractionQuality::default();
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.precision(), 0.0);
    }
}
