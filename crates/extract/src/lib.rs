//! # nous-extract — the document-level extraction stage
//!
//! Sits between the sentence-level NLP substrate (`nous-text`) and the
//! knowledge-graph pipeline (`nous-core`): it turns whole documents into
//! provenance-stamped candidate facts, the §3.2 output NOUS feeds into
//! mapping and quality control.
//!
//! - [`Document`] — the pipeline's input unit (`id`, logical `day`, text).
//! - [`extract_document`] — runs the full text pipeline and flattens the
//!   per-sentence tuples into [`Extraction`]s carrying document id, day,
//!   sentence index, mention-type hints and n-ary arguments, with
//!   within-document duplicates collapsed to their best-confidence copy.
//! - [`extract_documents`] — the same over a micro-batch of documents,
//!   fanned out across worker threads against one read-only gazetteer
//!   snapshot (the parallel stage of the two-stage ingestion split);
//!   [`extract_documents_counted`] additionally reports per-worker
//!   document counts for telemetry.
//! - [`extract_documents_quarantined`] — the hardened batch path: each
//!   worker runs under `catch_unwind`, and a panicking or fault-injected
//!   document ([`FP_EXTRACT_POISON`] / [`FP_EXTRACT_PANIC`]) is diverted
//!   to a [`QuarantinedDoc`] list instead of aborting the micro-batch.
//! - [`evaluate`] — ground-truth scoring against a `nous-corpus` article
//!   stream (surface recall / grounded precision / yield), shared by the
//!   E3/E11 benchmarks and the corpus↔pipeline contract tests.

pub mod document;
pub mod evaluate;

pub use document::{
    extract_document, extract_documents, extract_documents_counted, extract_documents_quarantined,
    try_extract_document, DocExtraction, Document, Extraction, QuarantinedDoc, FP_EXTRACT_PANIC,
    FP_EXTRACT_POISON,
};
pub use evaluate::{evaluate_stream, ExtractionQuality};
