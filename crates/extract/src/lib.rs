//! # nous-extract — the document-level extraction stage
//!
//! Sits between the sentence-level NLP substrate (`nous-text`) and the
//! knowledge-graph pipeline (`nous-core`): it turns whole documents into
//! provenance-stamped candidate facts, the §3.2 output NOUS feeds into
//! mapping and quality control.
//!
//! - [`Document`] — the pipeline's input unit (`id`, logical `day`, text).
//! - [`extract_document`] — runs the full text pipeline and flattens the
//!   per-sentence tuples into [`Extraction`]s carrying document id, day,
//!   sentence index, mention-type hints and n-ary arguments, with
//!   within-document duplicates collapsed to their best-confidence copy.
//! - [`extract_documents`] — the same over a micro-batch of documents,
//!   fanned out across worker threads against one read-only gazetteer
//!   snapshot (the parallel stage of the two-stage ingestion split);
//!   [`extract_documents_counted`] additionally reports per-worker
//!   document counts for telemetry.
//! - [`evaluate`] — ground-truth scoring against a `nous-corpus` article
//!   stream (surface recall / grounded precision / yield), shared by the
//!   E3/E11 benchmarks and the corpus↔pipeline contract tests.

pub mod document;
pub mod evaluate;

pub use document::{
    extract_document, extract_documents, extract_documents_counted, DocExtraction, Document,
    Extraction,
};
pub use evaluate::{evaluate_stream, ExtractionQuality};
