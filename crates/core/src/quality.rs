//! Pluggable quality-control gates (demo feature 3).
//!
//! §4: "Develop custom quality control modules for a new domain." A
//! [`QualityGate`] inspects a candidate fact after mapping/linking/scoring
//! and may veto its admission with a reason; the pipeline runs every
//! registered gate and accounts vetoes per gate. Two built-ins cover the
//! common cases:
//!
//! - [`TypeSignatureGate`] — ontology type constraints (an `acquired`
//!   edge must connect two companies, `isLocatedIn` must end at a
//!   location, …). This is the classic KB-construction guard against
//!   OpenIE argument-attachment errors.
//! - [`NoSelfLoopGate`] — rejects reflexive facts, which in news text are
//!   almost always coreference mistakes.

use crate::kg::KnowledgeGraph;
use nous_graph::VertexId;
use std::collections::HashMap;

/// A candidate fact, post-mapping, pre-admission.
#[derive(Debug, Clone, Copy)]
pub struct CandidateFact<'a> {
    pub subject: VertexId,
    pub predicate: &'a str,
    pub object: VertexId,
    pub confidence: f32,
}

/// Verdict of one gate.
pub type GateResult = Result<(), String>;

/// A quality-control module.
pub trait QualityGate: Send {
    /// Short identifier used in the per-gate veto accounting.
    fn name(&self) -> &str;
    /// `Err(reason)` vetoes the fact.
    fn check(&self, kg: &KnowledgeGraph, fact: &CandidateFact<'_>) -> GateResult;
}

/// Ontology type constraints: predicate → (allowed subject labels,
/// allowed object labels). Labels are the graph's vertex labels
/// ("Company", "Location", …); a missing label passes (unknown entities
/// are not vetoed on type).
pub struct TypeSignatureGate {
    signatures: HashMap<String, (Vec<String>, Vec<String>)>,
}

impl TypeSignatureGate {
    pub fn new() -> Self {
        Self {
            signatures: HashMap::new(),
        }
    }

    /// The signatures of the built-in news ontology.
    pub fn news_ontology() -> Self {
        let mut g = Self::new();
        let company = &["Company", "Organization"][..];
        g.require("isLocatedIn", company, &["Location"]);
        g.require("foundedBy", company, &["Person"]);
        g.require("manufactures", company, &["Product"]);
        g.require("acquired", company, company);
        g.require("investedIn", company, company);
        g.require("competesWith", company, company);
        g.require("partneredWith", company, company);
        g.require("suppliesTo", company, company);
        g.require("deploys", company, &["Product"]);
        g
    }

    /// Register a constraint for `predicate`.
    pub fn require(&mut self, predicate: &str, subject_labels: &[&str], object_labels: &[&str]) {
        self.signatures.insert(
            predicate.to_owned(),
            (
                subject_labels.iter().map(|s| (*s).to_owned()).collect(),
                object_labels.iter().map(|s| (*s).to_owned()).collect(),
            ),
        );
    }
}

impl Default for TypeSignatureGate {
    fn default() -> Self {
        Self::news_ontology()
    }
}

impl QualityGate for TypeSignatureGate {
    fn name(&self) -> &str {
        "type-signature"
    }

    fn check(&self, kg: &KnowledgeGraph, fact: &CandidateFact<'_>) -> GateResult {
        let Some((subj_ok, obj_ok)) = self.signatures.get(fact.predicate) else {
            return Ok(()); // unconstrained predicate
        };
        if let Some(label) = kg.graph.label(fact.subject) {
            if !subj_ok.iter().any(|l| l == label) {
                return Err(format!(
                    "subject type {label} invalid for {} (wanted {subj_ok:?})",
                    fact.predicate
                ));
            }
        }
        if let Some(label) = kg.graph.label(fact.object) {
            if !obj_ok.iter().any(|l| l == label) {
                return Err(format!(
                    "object type {label} invalid for {} (wanted {obj_ok:?})",
                    fact.predicate
                ));
            }
        }
        Ok(())
    }
}

/// Rejects `x -[p]-> x` facts.
pub struct NoSelfLoopGate;

impl QualityGate for NoSelfLoopGate {
    fn name(&self) -> &str {
        "no-self-loop"
    }

    fn check(&self, _kg: &KnowledgeGraph, fact: &CandidateFact<'_>) -> GateResult {
        if fact.subject == fact.object {
            Err("reflexive fact".to_owned())
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_text::ner::EntityType;

    fn kg_with_typed_entities() -> (KnowledgeGraph, VertexId, VertexId, VertexId) {
        let mut kg = KnowledgeGraph::new();
        let company = kg.create_entity("Apex Robotics", EntityType::Organization);
        let city = kg.create_entity("Shenzhen", EntityType::Location);
        let person = kg.create_entity("Frank Wang", EntityType::Person);
        (kg, company, city, person)
    }

    fn fact<'a>(s: VertexId, p: &'a str, o: VertexId) -> CandidateFact<'a> {
        CandidateFact {
            subject: s,
            predicate: p,
            object: o,
            confidence: 0.8,
        }
    }

    #[test]
    fn type_gate_accepts_valid_signatures() {
        let (kg, company, city, person) = kg_with_typed_entities();
        let gate = TypeSignatureGate::news_ontology();
        assert!(gate.check(&kg, &fact(company, "isLocatedIn", city)).is_ok());
        assert!(gate.check(&kg, &fact(company, "foundedBy", person)).is_ok());
    }

    #[test]
    fn type_gate_rejects_swapped_arguments() {
        let (kg, company, city, person) = kg_with_typed_entities();
        let gate = TypeSignatureGate::news_ontology();
        let err = gate
            .check(&kg, &fact(city, "isLocatedIn", company))
            .unwrap_err();
        assert!(err.contains("subject type"), "{err}");
        let err2 = gate
            .check(&kg, &fact(company, "acquired", person))
            .unwrap_err();
        assert!(err2.contains("object type"), "{err2}");
    }

    #[test]
    fn type_gate_passes_unknown_predicates_and_unlabelled_entities() {
        let (mut kg, company, ..) = kg_with_typed_entities();
        let gate = TypeSignatureGate::news_ontology();
        assert!(gate
            .check(&kg, &fact(company, "rumoredToLike", company))
            .is_ok());
        // An entity with no label cannot be vetoed on type.
        let mystery = kg.graph.ensure_vertex("Mystery Thing");
        assert!(gate.check(&kg, &fact(company, "acquired", mystery)).is_ok());
    }

    #[test]
    fn custom_domain_signatures() {
        let (mut kg, ..) = kg_with_typed_entities();
        let user = kg.create_entity("alice", EntityType::Person);
        let host = kg.create_entity("srv-42", EntityType::Other);
        kg.graph
            .set_label(kg.graph.vertex_id("srv-42").unwrap(), "Host");
        let mut gate = TypeSignatureGate::new();
        gate.require("loggedInto", &["Person"], &["Host"]);
        assert!(gate.check(&kg, &fact(user, "loggedInto", host)).is_ok());
        assert!(gate.check(&kg, &fact(host, "loggedInto", user)).is_err());
    }

    #[test]
    fn self_loop_gate() {
        let (kg, company, city, _) = kg_with_typed_entities();
        let gate = NoSelfLoopGate;
        assert!(gate
            .check(&kg, &fact(company, "acquired", company))
            .is_err());
        assert!(gate.check(&kg, &fact(company, "isLocatedIn", city)).is_ok());
    }
}
