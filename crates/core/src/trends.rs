//! Streaming trend discovery over the live knowledge graph.
//!
//! [`TrendMonitor`] couples a [`SlidingWindow`] over the graph's temporal
//! edge log with the §3.5 [`StreamingMiner`]: as the pipeline appends
//! facts, `observe` slides the window and feeds the miner's deltas.
//! "A novelty of our implementation is its ability to simultaneously
//! support the curated KB and the extracted knowledge, and discover
//! patterns by combining both structures" — the window runs over the fused
//! edge log, so mined patterns freely mix red and blue edges.

use crate::kg::KnowledgeGraph;
use nous_graph::ids::Interner;
use nous_graph::window::{SlidingWindow, WindowEvent, WindowKind};
use nous_graph::Timestamp;
use nous_mining::{MinerConfig, MinerEdge, Pattern, StreamingMiner};

/// A discovered pattern rendered for humans, with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trend {
    pub description: String,
    pub support: u32,
}

/// Sliding-window streaming pattern mining over a [`KnowledgeGraph`].
pub struct TrendMonitor {
    window: SlidingWindow,
    miner: StreamingMiner,
    /// Entity-type label interner (vertex labels for the miner).
    labels: Interner,
    /// Vertices observed without a label (placeholder substituted);
    /// surfaced as `nous_label_miss_total` once instrumented.
    label_miss: Option<nous_obs::Counter>,
}

impl TrendMonitor {
    /// `window`: time- or count-based extent; `miner_cfg`: §3.5 parameters.
    pub fn new(window: WindowKind, miner_cfg: MinerConfig) -> Self {
        let window = match window {
            WindowKind::Time { span } => SlidingWindow::time(span),
            WindowKind::Count { n } => SlidingWindow::count(n),
        };
        Self {
            window,
            miner: StreamingMiner::new(miner_cfg),
            labels: Interner::new(),
            label_miss: None,
        }
    }

    fn miner_edge(&mut self, kg: &KnowledgeGraph, id: nous_graph::EdgeId) -> MinerEdge {
        let e = kg.graph.edge(id).clone();
        let miss = self.label_miss.clone();
        let mut label = |v| {
            // An unlabelled vertex still needs *some* miner label, but the
            // substitution is accounted rather than silent: patterns built
            // on placeholder types are only as trustworthy as this counter
            // is low.
            let name = kg.graph.label(v).unwrap_or_else(|| {
                if let Some(c) = &miss {
                    c.inc();
                }
                "Entity"
            });
            self.labels.intern(name)
        };
        let (sl, dl) = (label(e.src), label(e.dst));
        MinerEdge::new(
            id.0 as u64,
            e.src.0 as u64,
            e.dst.0 as u64,
            e.pred.0,
            sl,
            dl,
        )
    }

    /// Route the monitor's miner accounting into `registry` (the
    /// `nous_miner_*` family: window-advance latency, window/table size
    /// gauges, closed-pattern emission counts). Called by
    /// `SharedSession::with_registry` so the trend monitor shows up in the
    /// session's `/stats` surface.
    pub fn instrument(&mut self, registry: &nous_obs::MetricsRegistry) {
        self.miner.instrument(registry);
        self.label_miss = Some(registry.counter(
            "nous_label_miss_total",
            "Vertex label lookups that found no label (miner placeholder substituted)",
        ));
    }

    /// Consume new graph edges, sliding the window and updating the miner.
    /// Returns `(added, evicted)` edge counts.
    pub fn observe(&mut self, kg: &KnowledgeGraph) -> (usize, usize) {
        let events = self.window.ingest(&kg.graph);
        self.apply(kg, events)
    }

    /// Advance logical time without new edges (time windows only).
    pub fn advance_to(&mut self, kg: &KnowledgeGraph, now: Timestamp) -> (usize, usize) {
        let events = self.window.advance_to(now);
        self.apply(kg, events)
    }

    fn apply(&mut self, kg: &KnowledgeGraph, events: Vec<WindowEvent>) -> (usize, usize) {
        let (mut added, mut evicted) = (0, 0);
        for ev in events {
            match ev {
                WindowEvent::Added(id) => {
                    let me = self.miner_edge(kg, id);
                    self.miner.add_edge(me);
                    added += 1;
                }
                WindowEvent::Evicted(id) => {
                    self.miner.remove_edge(id.0 as u64);
                    evicted += 1;
                }
            }
        }
        (added, evicted)
    }

    /// Number of edges in the current window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Current closed frequent patterns, rendered with type and predicate
    /// names (Figure 7's output).
    pub fn trending(&mut self, kg: &KnowledgeGraph) -> Vec<Trend> {
        self.trending_on(&kg.graph)
    }

    /// [`TrendMonitor::trending`] rendered against any [`GraphView`] —
    /// the lock-free query path passes a frozen snapshot. The miner may
    /// have observed edges newer than the snapshot, so a predicate minted
    /// after the freeze renders as a placeholder instead of panicking.
    pub fn trending_on<G: nous_graph::GraphView>(&mut self, g: &G) -> Vec<Trend> {
        self.trending_on_deadline(g, &nous_fault::Deadline::none())
            .0
    }

    /// [`TrendMonitor::trending_on`] under a wall-clock
    /// [`nous_fault::Deadline`]. Returns `(trends, partial)`: when the
    /// deadline expires the pattern list stops where rendering got to
    /// (or stays empty if it expired before the miner was consulted)
    /// and `partial` is `true`. An unbounded deadline always returns
    /// the complete list.
    pub fn trending_on_deadline<G: nous_graph::GraphView>(
        &mut self,
        g: &G,
        deadline: &nous_fault::Deadline,
    ) -> (Vec<Trend>, bool) {
        if deadline.expired() {
            return (Vec::new(), true);
        }
        let labels = &self.labels;
        let pred_count = g.predicate_count();
        let patterns = self.miner.closed_frequent();
        let mut out = Vec::with_capacity(patterns.len());
        let mut partial = false;
        for (i, (p, support)) in patterns.into_iter().enumerate() {
            if i % 16 == 15 && deadline.expired() {
                partial = true;
                break;
            }
            out.push(Trend {
                description: p.render(
                    |l| labels.resolve(l).to_owned(),
                    |l| {
                        if (l as usize) < pred_count {
                            g.predicate_name(nous_graph::PredicateId(l)).to_owned()
                        } else {
                            format!("predicate#{l}")
                        }
                    },
                ),
                support,
            });
        }
        (out, partial)
    }

    /// Raw closed frequent patterns (for tests and benches).
    pub fn closed_patterns(&mut self) -> Vec<(Pattern, u32)> {
        self.miner.closed_frequent()
    }

    /// Direct access to the miner (ablations).
    pub fn miner_mut(&mut self) -> &mut StreamingMiner {
        &mut self.miner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_mining::EvictionStrategy;
    use nous_text::ner::EntityType;

    fn kg_with_motifs(copies: usize) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        for i in 0..copies {
            let a = kg.create_entity(&format!("CompA{i}"), EntityType::Organization);
            let b = kg.create_entity(&format!("CompB{i}"), EntityType::Organization);
            let c = kg.create_entity(&format!("CompC{i}"), EntityType::Organization);
            let t = (i * 10) as u64;
            kg.add_extracted_fact(a, "acquired", b, t, 0.9, i as u64);
            kg.add_extracted_fact(a, "investedIn", c, t + 1, 0.9, i as u64);
            kg.add_extracted_fact(b, "partneredWith", c, t + 2, 0.9, i as u64);
        }
        kg
    }

    #[test]
    fn discovers_recurring_motif() {
        let kg = kg_with_motifs(4);
        let mut tm = TrendMonitor::new(
            WindowKind::Count { n: 100 },
            MinerConfig {
                k_max: 3,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        );
        let (added, evicted) = tm.observe(&kg);
        assert_eq!(added, 12);
        assert_eq!(evicted, 0);
        let trends = tm.trending(&kg);
        assert!(!trends.is_empty());
        // The triangle motif appears 4 times and must be reported.
        let triangle = trends.iter().find(|t| {
            t.description.contains("acquired")
                && t.description.contains("investedIn")
                && t.description.contains("partneredWith")
        });
        assert!(triangle.is_some(), "triangle missing from {trends:?}");
        assert_eq!(triangle.unwrap().support, 4);
        assert!(triangle.unwrap().description.contains("Organization"));
    }

    #[test]
    fn window_eviction_forgets_old_patterns() {
        let kg = kg_with_motifs(4);
        let mut tm = TrendMonitor::new(
            WindowKind::Count { n: 6 }, // holds only 2 motifs
            MinerConfig {
                k_max: 3,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        );
        tm.observe(&kg);
        assert_eq!(tm.window_len(), 6);
        let trends = tm.trending(&kg);
        assert!(
            !trends.iter().any(|t| t.support >= 3
                && t.description.contains("acquired")
                && t.description.contains("partneredWith")),
            "old motifs must have slid out: {trends:?}"
        );
    }

    #[test]
    fn time_window_advance() {
        let kg = kg_with_motifs(4); // timestamps 0..32
        let mut tm = TrendMonitor::new(
            WindowKind::Time { span: 1000 },
            MinerConfig {
                k_max: 2,
                min_support: 2,
                eviction: EvictionStrategy::Eager,
            },
        );
        tm.observe(&kg);
        assert_eq!(tm.window_len(), 12);
        let (_, evicted) = tm.advance_to(&kg, 1015);
        assert!(evicted > 0);
        assert!(tm.window_len() < 12);
    }

    #[test]
    fn unlabelled_vertices_count_label_misses() {
        let mut kg = KnowledgeGraph::new();
        let a = kg.create_entity("Typed Corp", EntityType::Organization);
        // ensure_vertex mints a bare vertex with no label.
        let b = kg.graph.ensure_vertex("Mystery Thing");
        kg.add_extracted_fact(a, "acquired", b, 1, 0.9, 0);
        let registry = nous_obs::MetricsRegistry::new();
        let mut tm = TrendMonitor::new(
            WindowKind::Count { n: 10 },
            MinerConfig {
                k_max: 1,
                min_support: 1,
                eviction: EvictionStrategy::Eager,
            },
        );
        tm.instrument(&registry);
        tm.observe(&kg);
        assert_eq!(
            registry.counter_value("nous_label_miss_total", &[]),
            Some(1),
            "one unlabelled endpoint observed"
        );
    }

    #[test]
    fn expired_deadline_truncates_trending() {
        let kg = kg_with_motifs(4);
        let mut tm = TrendMonitor::new(
            WindowKind::Count { n: 100 },
            MinerConfig {
                k_max: 3,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        );
        tm.observe(&kg);
        let (trends, partial) =
            tm.trending_on_deadline(&kg.graph, &nous_fault::Deadline::expired_now());
        assert!(partial);
        assert!(trends.is_empty(), "expired before mining: {trends:?}");
        let (full, partial) = tm.trending_on_deadline(&kg.graph, &nous_fault::Deadline::none());
        assert!(!partial);
        assert_eq!(full, tm.trending(&kg));
    }

    #[test]
    fn incremental_observe_matches_single_shot() {
        let kg = kg_with_motifs(3);
        let cfg = MinerConfig {
            k_max: 3,
            min_support: 2,
            eviction: EvictionStrategy::Eager,
        };
        let mut incremental = TrendMonitor::new(WindowKind::Count { n: 100 }, cfg.clone());
        // Observe twice (second call sees no new edges).
        incremental.observe(&kg);
        let (added, _) = incremental.observe(&kg);
        assert_eq!(added, 0);
        let mut single = TrendMonitor::new(WindowKind::Count { n: 100 }, cfg);
        single.observe(&kg);
        assert_eq!(incremental.closed_patterns(), single.closed_patterns());
    }
}
