//! Fact revision at the admit point (NOUS §3.4).
//!
//! A dynamic KG is not append-only in *meaning*: later articles supersede
//! earlier facts ("Apex Robotics is now headquartered in Austin"), and
//! repeated independent assertions of the same fact should raise its
//! confidence rather than duplicate the edge. NOUS's per-edge confidence
//! is the lever for both. The mechanics stay within the graph layer's
//! append-plus-tombstone contract: edges are never mutated in place —
//! a revised fact is tombstoned via [`nous_graph::DynamicGraph::remove_edge`]
//! and, when it survives decay, re-appended at its reduced confidence.
//! Removals flow to published [`nous_graph::LayeredSnapshot`]s through the
//! existing removal log and to shard replicas through `plan_shard_sync`,
//! so revision needs no new propagation machinery.
//!
//! Placement matters for durability: revision runs *inside*
//! [`crate::KnowledgeGraph::add_extracted_fact_with_args`], the same call
//! WAL replay re-issues per admitted fact. Replaying the log against a
//! checkpoint that carries the same [`RevisionPolicy`] therefore re-derives
//! every tombstone and decay deterministically — the WAL format records
//! only admissions, never revisions.

use serde::{Deserialize, Serialize};

/// Revision behaviour applied when an extracted fact is admitted.
///
/// Disabled by default: the base pipeline contract ("every admitted fact
/// is a live extracted edge") is load-bearing for existing tests and
/// benchmarks. Scenario harnesses and sessions that want dynamic-update
/// semantics opt in via [`crate::KnowledgeGraph::set_revision_policy`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevisionPolicy {
    /// Master switch. When off, admission is pure append (seed behaviour).
    pub enabled: bool,
    /// Functional predicates: at most one object per subject is true at a
    /// time (ontology names, e.g. `isLocatedIn` for a headquarters). A new
    /// object for `(s, p)` contradicts — and supersedes — the old one.
    pub functional: Vec<String>,
    /// Reinforcement step for a re-asserted fact: the surviving edge's
    /// confidence moves `alpha` of the way from its current value to 1.0.
    pub reinforce_alpha: f32,
    /// Multiplicative decay applied to a superseded fact's confidence.
    pub decay_factor: f32,
    /// A superseded fact decayed below this floor is tombstoned outright
    /// instead of being re-appended — it disappears from MATCH/WHY.
    pub decay_floor: f32,
}

impl Default for RevisionPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            functional: vec!["isLocatedIn".to_owned()],
            reinforce_alpha: 0.3,
            decay_factor: 0.4,
            decay_floor: 0.3,
        }
    }
}

impl RevisionPolicy {
    /// The default policy with the master switch on.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Whether `predicate` is functional under this policy.
    pub fn is_functional(&self, predicate: &str) -> bool {
        self.functional.iter().any(|p| p == predicate)
    }
}

/// Lifetime revision outcome counts, carried by the graph (and through
/// its checkpoint) so recovery resumes with consistent totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevisionCounters {
    /// Facts contradicted by a newer object on a functional predicate.
    pub superseded: u64,
    /// Superseded facts that survived decay (re-appended, reduced score).
    pub decayed: u64,
    /// Re-asserted facts folded into a single reinforced edge.
    pub reinforced: u64,
}

/// One reinforcement step: move `alpha` of the remaining headroom toward
/// 1.0. Saturates — repeated application converges to 1.0 and never
/// leaves `[0, 1]` regardless of the inputs (NaN-free for finite inputs).
pub fn reinforce(confidence: f32, alpha: f32) -> f32 {
    let c = confidence.clamp(0.0, 1.0);
    let a = alpha.clamp(0.0, 1.0);
    (c + a * (1.0 - c)).clamp(0.0, 1.0)
}

/// One decay step: multiplicative shrink. Saturates at 0.0 and never
/// leaves `[0, 1]` regardless of the inputs.
pub fn decay(confidence: f32, factor: f32) -> f32 {
    (confidence.clamp(0.0, 1.0) * factor.clamp(0.0, 1.0)).clamp(0.0, 1.0)
}

/// The admission blend (§3.4): extractor confidence mixed with the link
/// predictor's prior at `weight`, clamped into `[0, 1]`. This is the
/// scoring step `IngestPipeline` applies to every candidate fact.
pub fn blend(extracted: f32, prior: f32, weight: f32) -> f32 {
    ((1.0 - weight) * extracted + weight * prior).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_policy_is_disabled_with_located_in_functional() {
        let p = RevisionPolicy::default();
        assert!(!p.enabled);
        assert!(p.is_functional("isLocatedIn"));
        assert!(!p.is_functional("acquired"));
        assert!(RevisionPolicy::enabled().enabled);
    }

    #[test]
    fn reinforce_converges_to_one() {
        let mut c = 0.5;
        for _ in 0..100 {
            let next = reinforce(c, 0.3);
            assert!(next >= c);
            c = next;
        }
        assert!(c > 0.999 && c <= 1.0);
    }

    #[test]
    fn decay_converges_to_zero() {
        let mut c = 1.0;
        for _ in 0..100 {
            let next = decay(c, 0.4);
            assert!(next <= c);
            c = next;
        }
        assert!((0.0..1e-6).contains(&c));
    }

    proptest! {
        /// Satellite: repeated reinforcement/decay saturates in [0,1]
        /// instead of drifting out of range — even for out-of-range or
        /// adversarial step parameters.
        #[test]
        fn updates_saturate_in_unit_interval(
            start in -10.0f32..10.0,
            steps in proptest::collection::vec((any::<bool>(), -10.0f32..10.0), 0..64),
        ) {
            let mut c = start.clamp(0.0, 1.0);
            for (up, param) in steps {
                c = if up { reinforce(c, param) } else { decay(c, param) };
                prop_assert!((0.0..=1.0).contains(&c), "escaped unit interval: {c}");
                prop_assert!(c.is_finite());
            }
        }

        /// The admission blend — the scoring path every fact passes —
        /// stays in [0,1] for any extractor/prior mix.
        #[test]
        fn blend_stays_in_unit_interval(
            extracted in -2.0f32..2.0,
            prior in -2.0f32..2.0,
            weight in 0.0f32..1.0,
        ) {
            let b = blend(extracted, prior, weight);
            prop_assert!((0.0..=1.0).contains(&b));
        }
    }
}
