//! Thread-safe session state for concurrent querying during ingestion.
//!
//! The paper's demonstration runs "using both web and command line
//! interface" against a long-running service (§4): multiple analysts query
//! while the stream keeps ingesting. [`SharedSession`] is that shape: the
//! knowledge graph and topic index sit behind a `parking_lot::RwLock`
//! (many concurrent readers, exclusive writer), and the trend monitor —
//! whose queries mutate internal miner state — behind a `Mutex`.

use crate::kg::KnowledgeGraph;
use crate::pipeline::{IngestPipeline, IngestReport};
use crate::trends::TrendMonitor;
use nous_corpus::Article;
use nous_extract::{extract_documents, Document};
use nous_qa::TopicIndex;
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Shareable handle to a live NOUS session.
#[derive(Clone)]
pub struct SharedSession {
    kg: Arc<RwLock<KnowledgeGraph>>,
    topics: Arc<RwLock<TopicIndex>>,
    trends: Arc<Mutex<TrendMonitor>>,
}

impl SharedSession {
    pub fn new(kg: KnowledgeGraph, topics: TopicIndex, trends: TrendMonitor) -> Self {
        Self {
            kg: Arc::new(RwLock::new(kg)),
            topics: Arc::new(RwLock::new(topics)),
            trends: Arc::new(Mutex::new(trends)),
        }
    }

    /// Run a read-only operation against the graph (concurrent with other
    /// readers).
    pub fn read<T>(&self, f: impl FnOnce(&KnowledgeGraph, &TopicIndex) -> T) -> T {
        let kg = self.kg.read();
        let topics = self.topics.read();
        f(&kg, &topics)
    }

    /// Run a mutating operation (ingestion, retraining) with exclusive
    /// access.
    pub fn write<T>(&self, f: impl FnOnce(&mut KnowledgeGraph) -> T) -> T {
        let mut kg = self.kg.write();
        f(&mut kg)
    }

    /// Replace the topic index (after an LDA refresh).
    pub fn set_topics(&self, topics: TopicIndex) {
        *self.topics.write() = topics;
    }

    /// Run an operation needing the trend monitor (serialised: the miner's
    /// closed-pattern queries mutate cached state).
    pub fn with_trends<T>(&self, f: impl FnOnce(&mut TrendMonitor, &KnowledgeGraph) -> T) -> T {
        let kg = self.kg.read();
        let mut trends = self.trends.lock();
        f(&mut trends, &kg)
    }

    /// Micro-batched ingestion against the live session: the parallel
    /// extraction stage runs under the **read** lock (analysts keep
    /// querying while documents are parsed — extraction is the wall-clock
    /// hog and never touches mutable state), and only the sequential
    /// merge stage takes the write lock, once per micro-batch. The
    /// gazetteer snapshot a batch extracts against is the one visible at
    /// its read-lock acquisition — the same staleness contract as
    /// [`IngestPipeline::ingest_batch`].
    pub fn ingest_batch(
        &self,
        pipeline: &mut IngestPipeline,
        articles: &[Article],
    ) -> IngestReport {
        let cfg = pipeline.config().clone();
        for chunk in articles.chunks(cfg.batch_size.max(1)) {
            let docs: Vec<Document> = chunk.iter().map(Document::from).collect();
            let extracted = {
                let kg = self.kg.read();
                extract_documents(&docs, &kg.gazetteer, &cfg.extractor, cfg.extract_workers)
            };
            let mut kg = self.kg.write();
            for ext in &extracted {
                pipeline.merge_extraction(&mut kg, ext);
            }
        }
        pipeline.report().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_graph::window::WindowKind;
    use nous_mining::{EvictionStrategy, MinerConfig};
    use nous_text::ner::EntityType;

    fn session() -> SharedSession {
        let kg = KnowledgeGraph::new();
        let topics = TopicIndex::new(2);
        let trends = TrendMonitor::new(
            WindowKind::Count { n: 100 },
            MinerConfig {
                k_max: 1,
                min_support: 2,
                eviction: EvictionStrategy::Eager,
            },
        );
        SharedSession::new(kg, topics, trends)
    }

    #[test]
    fn read_write_roundtrip() {
        let s = session();
        s.write(|kg| {
            let a = kg.create_entity("A Corp", EntityType::Organization);
            let b = kg.create_entity("B Corp", EntityType::Organization);
            kg.add_extracted_fact(a, "acquired", b, 1, 0.9, 0);
        });
        let (vertices, edges) = s.read(|kg, _| (kg.graph.vertex_count(), kg.graph.edge_count()));
        assert_eq!((vertices, edges), (2, 1));
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let s = session();
        // Seed one entity so readers always have something to look at.
        s.write(|kg| {
            kg.create_entity("Seed Corp", EntityType::Organization);
        });
        let writer = {
            let s = s.clone();
            std::thread::spawn(move || {
                for i in 0..200 {
                    s.write(|kg| {
                        let a = kg.create_entity(&format!("W{i}a"), EntityType::Organization);
                        let b = kg.create_entity(&format!("W{i}b"), EntityType::Organization);
                        kg.add_extracted_fact(a, "partneredWith", b, i, 0.9, i);
                    });
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut observations = 0usize;
                    for _ in 0..200 {
                        let ok = s.read(|kg, _| {
                            // Invariant under concurrency: edge count never
                            // exceeds what the vertex count allows, and the
                            // seed entity is always resolvable.
                            kg.graph.vertex_id("Seed Corp").is_some()
                                && kg.graph.edge_count() * 2 <= kg.graph.vertex_count() * 2
                        });
                        assert!(ok);
                        observations += 1;
                    }
                    observations
                })
            })
            .collect();
        writer.join().expect("writer");
        for r in readers {
            assert_eq!(r.join().expect("reader"), 200);
        }
        assert_eq!(s.read(|kg, _| kg.graph.edge_count()), 200);
    }

    #[test]
    fn batched_ingestion_with_concurrent_readers() {
        use crate::pipeline::PipelineConfig;
        use nous_corpus::{ArticleStream, CuratedKb, Preset, World};

        let world = World::generate(&Preset::Smoke.world_config());
        let kb = CuratedKb::generate(&world, 7);
        let mut kg = KnowledgeGraph::from_curated(&world, &kb);
        kg.train_predictor();
        let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());
        let seed = world.entities[world.companies[0]].name.clone();

        let s = SharedSession::new(
            kg,
            TopicIndex::new(2),
            TrendMonitor::new(
                WindowKind::Count { n: 100 },
                MinerConfig {
                    k_max: 1,
                    min_support: 2,
                    eviction: EvictionStrategy::Eager,
                },
            ),
        );
        let reader = {
            let s = s.clone();
            let seed = seed.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    assert!(s.read(|kg, _| kg.graph.vertex_id(&seed).is_some()));
                }
            })
        };
        let cfg = PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            ..Default::default()
        };
        let mut pipe = IngestPipeline::new(cfg);
        let report = s.ingest_batch(&mut pipe, &articles);
        reader.join().expect("reader");
        assert_eq!(report.documents, articles.len());
        assert!(report.admitted > 0);
        assert_eq!(
            s.read(|kg, _| kg.graph.stats().extracted_edges),
            report.admitted
        );
    }

    #[test]
    fn trend_monitor_observes_under_lock() {
        let s = session();
        s.write(|kg| {
            for i in 0..3 {
                let a = kg.create_entity(&format!("X{i}"), EntityType::Organization);
                let b = kg.create_entity(&format!("Y{i}"), EntityType::Organization);
                kg.add_extracted_fact(a, "acquired", b, i, 0.9, i);
            }
        });
        let n = s.with_trends(|tm, kg| {
            tm.observe(kg);
            tm.trending(kg).len()
        });
        assert!(n >= 1, "acquired pattern at support 3");
    }
}
