//! Thread-safe session state for concurrent querying during ingestion.
//!
//! The paper's demonstration runs "using both web and command line
//! interface" against a long-running service (§4): multiple analysts query
//! while the stream keeps ingesting. [`SharedSession`] is that shape: the
//! knowledge graph and topic index sit behind a `parking_lot::RwLock`
//! (many concurrent readers, exclusive writer), and the trend monitor —
//! whose queries mutate internal miner state — behind a `Mutex`.
//!
//! On top of the locks the session maintains an **epoch-swapped layered
//! snapshot** ([`FrozenSnapshot`]): an immutable [`LayeredSnapshot`] of
//! the graph plus shared handles to the topic index and alias resolver,
//! published after every mutation. Publication is **incremental**: each
//! epoch freezes only the facts admitted since the previous one into a
//! [`nous_graph::DeltaOverlay`] chained onto the published stack, so
//! publish cost is O(delta), independent of graph size. A background
//! compactor folds the overlay stack back into a single base
//! [`nous_graph::FrozenView`] when it grows past the configured
//! thresholds ([`CompactionConfig`]), and doubles as the durability
//! checkpoint trigger (see [`SharedSession::set_checkpoint_sink`]).
//!
//! The lock-free query path ([`SharedSession::frozen`]) is one short
//! mutex-protected `Arc` clone — readers then run entirely against
//! immutable state, never touching the KG lock, with staleness bounded
//! by one ingest micro-batch and surfaced as `nous_snapshot_age_nanos`.

use crate::fabric::ShardFabric;
use crate::kg::KnowledgeGraph;
use crate::pipeline::{IngestPipeline, IngestReport};
use crate::trends::TrendMonitor;
use nous_corpus::Article;
use nous_extract::{extract_documents_quarantined, Document};
use nous_fault::Faults;
use nous_graph::LayeredSnapshot;
use nous_link::Disambiguator;
use nous_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use nous_qa::TopicIndex;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One published epoch of the session: everything the lock-free query
/// path needs, immutable behind an `Arc`. Holding the `Arc` pins the
/// epoch — later ingestion publishes new snapshots without disturbing it.
pub struct FrozenSnapshot {
    /// Monotonic publish counter (0 = the construction-time snapshot).
    pub epoch: u64,
    /// Layered graph view: immutable base + delta overlays, merged on
    /// read behind [`nous_graph::GraphView`].
    pub view: LayeredSnapshot,
    /// Topic distributions at publish time (coherence scoring). Shared:
    /// epochs between LDA refreshes all point at the same index.
    pub topics: Arc<TopicIndex>,
    /// Alias resolver at publish time (entity-name → vertex fallback).
    /// Shared across epochs whose resolver state is identical.
    pub disambiguator: Arc<Disambiguator>,
    /// Resolver mutation counter backing the Arc-reuse check.
    disambiguator_version: u64,
    /// Registry-clock time of publication, for the staleness gauge.
    pub published_at_nanos: u64,
    /// Composite per-shard view pinned at the same watermark as `view`,
    /// present only when sharding is enabled
    /// ([`SharedSession::enable_sharding`]). `None` is the plain
    /// single-graph session — the byte-identical pre-sharding path.
    pub sharded: Option<Arc<nous_graph::ShardedSnapshot>>,
}

/// When the background compactor folds the published overlay stack back
/// into a single base [`nous_graph::FrozenView`].
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// Compact once this many overlays are stacked on the base.
    pub max_layers: usize,
    /// Compact once overlay edges exceed this fraction of live edges…
    pub max_delta_fraction: f64,
    /// …but only after at least this many overlay edges accumulated
    /// (keeps tiny test graphs from compacting on every publish).
    pub min_delta_edges: usize,
    /// Run compaction on a background thread (`true`, the default) or
    /// synchronously inside the publish that crossed the threshold.
    pub background: bool,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            max_layers: 8,
            max_delta_fraction: 0.25,
            min_delta_edges: 512,
            background: true,
        }
    }
}

/// Lock wait/hold instruments, one series per lock kind
/// (`lock="read"|"write"|"trends"|"all"`). Wait is the time from request
/// to acquisition; hold is the time the closure runs under the lock.
#[derive(Clone)]
struct SessionMetrics {
    registry: MetricsRegistry,
    wait_read: Histogram,
    wait_write: Histogram,
    wait_trends: Histogram,
    wait_all: Histogram,
    hold_read: Histogram,
    hold_write: Histogram,
    hold_trends: Histogram,
    hold_all: Histogram,
    hold_last_read: Gauge,
    hold_last_write: Gauge,
    snapshot_epoch: Gauge,
    snapshot_age: Gauge,
    snapshot_publish: Histogram,
    snapshot_published: Counter,
    snapshot_layers: Gauge,
    snapshot_delta_permille: Gauge,
    snapshot_full_rebuilds: Counter,
    compaction_seconds: Histogram,
    compactions: Counter,
    compactions_failed: Counter,
}

impl SessionMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        let wait = |l: &str| {
            registry.latency_with(
                "nous_session_lock_wait_seconds",
                "Time spent waiting to acquire a session lock",
                &[("lock", l)],
            )
        };
        let hold = |l: &str| {
            registry.latency_with(
                "nous_session_lock_hold_seconds",
                "Time a session lock was held by one operation",
                &[("lock", l)],
            )
        };
        let last = |l: &str| {
            registry.gauge_with(
                "nous_session_lock_hold_last_nanos",
                "Hold time of the most recent acquisition, nanoseconds",
                &[("lock", l)],
            )
        };
        Self {
            wait_read: wait("read"),
            wait_write: wait("write"),
            wait_trends: wait("trends"),
            wait_all: wait("all"),
            hold_read: hold("read"),
            hold_write: hold("write"),
            hold_trends: hold("trends"),
            hold_all: hold("all"),
            hold_last_read: last("read"),
            hold_last_write: last("write"),
            snapshot_epoch: registry.gauge_with(
                "nous_snapshot_epoch",
                "Epoch of the currently published frozen snapshot",
                &[],
            ),
            snapshot_age: registry.gauge_with(
                "nous_snapshot_age_nanos",
                "Staleness of the frozen snapshot at its last acquisition, nanoseconds",
                &[],
            ),
            snapshot_publish: registry.latency_with(
                "nous_snapshot_publish_seconds",
                "Wall time to freeze and publish one snapshot epoch",
                &[],
            ),
            snapshot_published: registry.counter(
                "nous_snapshot_published_total",
                "Snapshot epochs published since session start",
            ),
            snapshot_layers: registry.gauge_with(
                "nous_snapshot_layers",
                "Layers (base + overlays) in the published snapshot",
                &[],
            ),
            snapshot_delta_permille: registry.gauge_with(
                "nous_snapshot_delta_permille",
                "Overlay edges as a permille of live edges in the published snapshot",
                &[],
            ),
            snapshot_full_rebuilds: registry.counter(
                "nous_snapshot_full_rebuilds_total",
                "Publishes that fell back to a full freeze (graph history rewritten)",
            ),
            compaction_seconds: registry.latency_with(
                "nous_compaction_seconds",
                "Wall time to fold the overlay stack into a new base view",
                &[],
            ),
            compactions: registry.counter(
                "nous_compactions_total",
                "Snapshot compactions completed since session start",
            ),
            compactions_failed: registry.counter(
                "nous_compactions_failed_total",
                "Snapshot compactions aborted by an injected fault",
            ),
            registry,
        }
    }
}

/// Failpoint inside [`SharedSession::compact_now`] /
/// the background compactor, between deciding to compact and freezing
/// the new base. A fired fault aborts the fold: the existing layer stack
/// keeps serving and no checkpoint is written.
pub const FP_SESSION_COMPACT: &str = "session.compact";

/// Resets the in-flight compaction flag even if compaction unwinds.
struct CompactingGuard(Arc<AtomicBool>);

impl Drop for CompactingGuard {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

type CheckpointSink = Box<dyn FnMut(&KnowledgeGraph) + Send>;

/// Shareable handle to a live NOUS session.
#[derive(Clone)]
pub struct SharedSession {
    kg: Arc<RwLock<KnowledgeGraph>>,
    topics: Arc<RwLock<Arc<TopicIndex>>>,
    trends: Arc<Mutex<TrendMonitor>>,
    /// Epoch-swapped publication slot. The mutex only guards the `Arc`
    /// swap/clone (nanoseconds); readers never hold it while querying.
    snapshot: Arc<Mutex<Arc<FrozenSnapshot>>>,
    compaction: Arc<Mutex<CompactionConfig>>,
    compacting: Arc<AtomicBool>,
    checkpoint_sink: Arc<Mutex<Option<CheckpointSink>>>,
    faults: Arc<Mutex<Faults>>,
    /// Entity-shard admission fabric; `None` until
    /// [`SharedSession::enable_sharding`] turns it on. Innermost lock:
    /// taken only under the publish path's existing lock stack or alone.
    fabric: Arc<Mutex<Option<ShardFabric>>>,
    metrics: SessionMetrics,
}

impl SharedSession {
    pub fn new(kg: KnowledgeGraph, topics: TopicIndex, trends: TrendMonitor) -> Self {
        Self::with_registry(kg, topics, trends, MetricsRegistry::new())
    }

    /// Build a session whose lock and trend-miner accounting lands in
    /// `registry`. Share the same registry with the ingestion pipeline
    /// ([`IngestPipeline::with_registry`]) to get one `/stats` surface for
    /// the whole service.
    pub fn with_registry(
        kg: KnowledgeGraph,
        topics: TopicIndex,
        mut trends: TrendMonitor,
        registry: MetricsRegistry,
    ) -> Self {
        trends.instrument(&registry);
        let metrics = SessionMetrics::new(registry);
        let topics = Arc::new(topics);
        let initial = FrozenSnapshot {
            epoch: 0,
            view: LayeredSnapshot::freeze(&kg.graph),
            topics: topics.clone(),
            disambiguator: Arc::new(kg.disambiguator.clone()),
            disambiguator_version: kg.disambiguator.version(),
            published_at_nanos: metrics.registry.now_nanos(),
            sharded: None,
        };
        metrics.snapshot_epoch.set(0);
        metrics.snapshot_layers.set(1);
        let session = Self {
            kg: Arc::new(RwLock::new(kg)),
            topics: Arc::new(RwLock::new(topics)),
            trends: Arc::new(Mutex::new(trends)),
            snapshot: Arc::new(Mutex::new(Arc::new(initial))),
            compaction: Arc::new(Mutex::new(CompactionConfig::default())),
            compacting: Arc::new(AtomicBool::new(false)),
            checkpoint_sink: Arc::new(Mutex::new(None)),
            faults: Arc::new(Mutex::new(Faults::disabled())),
            fabric: Arc::new(Mutex::new(None)),
            metrics,
        };
        // Explicit `NOUS_SHARDS=n` (n >= 2) shards every session in the
        // process — this is how the CI sharded leg runs the whole existing
        // suite through the fan-out/merge path. Absent or `1`, nothing
        // here runs and the session is the literal pre-sharding code.
        if let Some(n) = std::env::var("NOUS_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            if n >= 2 {
                session.enable_sharding(n);
            }
        }
        session
    }

    /// Partition admission across `shards` entity-hash shards, each with
    /// its own admission thread and independently-published epoch. Every
    /// snapshot from here on carries a composite
    /// [`nous_graph::ShardedSnapshot`] pinned at the same watermark as
    /// the layered view. `shards <= 1` disables sharding again (the next
    /// publish drops the composite). Idempotent for an unchanged count.
    pub fn enable_sharding(&self, shards: usize) {
        {
            let mut fabric = self.fabric.lock();
            if shards <= 1 {
                *fabric = None;
            } else {
                match fabric.as_ref() {
                    Some(f) if f.shard_count() == shards => return,
                    _ => *fabric = Some(ShardFabric::new(shards, &self.metrics.registry)),
                }
            }
        }
        self.publish_snapshot();
    }

    /// Configured shard count: `1` when sharding is off.
    pub fn shard_count(&self) -> usize {
        self.fabric.lock().as_ref().map_or(1, |f| f.shard_count())
    }

    /// Replace the compaction thresholds (defaults: 8 overlay layers or
    /// 25% delta fraction past 512 overlay edges, background thread).
    pub fn set_compaction_config(&self, cfg: CompactionConfig) {
        *self.compaction.lock() = cfg;
    }

    /// Arm deterministic fault injection for session-level sites
    /// (currently `session.compact`). No-op unless the `fault-injection`
    /// feature is compiled in.
    pub fn set_faults(&self, faults: Faults) {
        *self.faults.lock() = faults;
    }

    /// Install the durability hook compaction drives: immediately before
    /// a compacted snapshot is installed, `sink` runs against the exact
    /// graph state the new base was frozen from (under the same read
    /// hold), so a persisted checkpoint generation and the served base
    /// always correspond to the same watermark. Typically wired to
    /// `DurableStore::checkpoint` by `nous_persist::wire_compaction_checkpoints`.
    pub fn set_checkpoint_sink(&self, sink: impl FnMut(&KnowledgeGraph) + Send + 'static) {
        *self.checkpoint_sink.lock() = Some(Box::new(sink));
    }

    /// Incrementally publish the current graph/topics/resolver state as a
    /// new epoch. Called automatically after every mutation
    /// ([`SharedSession::write`], [`SharedSession::set_topics`], each
    /// [`SharedSession::ingest_batch`] micro-batch); exposed publicly for
    /// callers that mutate through other channels. Returns the epoch now
    /// visible to readers.
    ///
    /// Cost is O(facts since the previous epoch), not O(graph): the new
    /// epoch freezes only the delta into an overlay chained onto the
    /// published stack. A full rebuild happens only when the graph's
    /// history was rewritten underneath the stack (structure-version
    /// bump, e.g. an explicit log compaction) — counted on
    /// `nous_snapshot_full_rebuilds_total`. When nothing changed at all
    /// the current epoch is returned with no new snapshot installed.
    pub fn publish_snapshot(&self) -> u64 {
        let m = &self.metrics;
        let t0 = m.registry.now_nanos();
        let kg = self.kg.read();
        let topics = self.topics.read().clone();
        let mut slot = self.snapshot.lock();
        let prev = slot.clone();
        let wm = kg.graph.watermark();
        let dv = kg.disambiguator.version();
        let mut fabric = self.fabric.lock();
        if wm == prev.view.watermark()
            && dv == prev.disambiguator_version
            && Arc::ptr_eq(&topics, &prev.topics)
            && prev.sharded.is_some() == fabric.is_some()
        {
            return prev.epoch;
        }
        // Fan the delta out to the shard admission threads while we still
        // hold the graph read lock: the composite and the layered view
        // below are pinned at the same watermark. Unchanged graph (topics
        // or resolver-only publish) reuses the previous composite as-is.
        let sharded = match fabric.as_mut() {
            Some(f) => {
                if wm == prev.view.watermark() && prev.sharded.is_some() {
                    prev.sharded.clone()
                } else {
                    Some(Arc::new(f.sync(&kg.graph)))
                }
            }
            None => None,
        };
        drop(fabric);
        let view = if wm == prev.view.watermark() {
            // Only topics/resolver moved; keep the graph layers as-is.
            prev.view.clone()
        } else {
            match prev
                .view
                .capture_delta(&kg.graph)
                .and_then(|overlay| prev.view.with_overlay(overlay))
            {
                Ok(view) => view,
                Err(nous_graph::DeltaStale) => {
                    m.snapshot_full_rebuilds.inc();
                    LayeredSnapshot::freeze(&kg.graph)
                }
            }
        };
        let disambiguator = if dv == prev.disambiguator_version {
            prev.disambiguator.clone()
        } else {
            Arc::new(kg.disambiguator.clone())
        };
        drop(kg);
        let epoch = prev.epoch + 1;
        let snap = Arc::new(FrozenSnapshot {
            epoch,
            view,
            topics,
            disambiguator,
            disambiguator_version: dv,
            published_at_nanos: m.registry.now_nanos(),
            sharded,
        });
        *slot = snap.clone();
        drop(slot);
        m.snapshot_epoch.set(epoch as i64);
        m.snapshot_layers.set(1 + snap.view.layer_count() as i64);
        m.snapshot_delta_permille
            .set((snap.view.delta_fraction() * 1000.0) as i64);
        m.snapshot_publish
            .observe(m.registry.now_nanos().saturating_sub(t0));
        m.snapshot_published.inc();
        self.maybe_compact(&snap);
        epoch
    }

    fn maybe_compact(&self, snap: &Arc<FrozenSnapshot>) {
        let cfg = self.compaction.lock().clone();
        let overlays = snap.view.layer_count();
        if overlays == 0 {
            return;
        }
        let overlay_edges: usize = snap.view.overlay_edge_count();
        let by_layers = overlays >= cfg.max_layers;
        let by_fraction = overlay_edges >= cfg.min_delta_edges
            && snap.view.delta_fraction() >= cfg.max_delta_fraction;
        if !(by_layers || by_fraction) {
            return;
        }
        if self.compacting.swap(true, Ordering::AcqRel) {
            return; // one in flight already
        }
        let guard = CompactingGuard(self.compacting.clone());
        if cfg.background {
            let session = self.clone();
            let spawned = std::thread::Builder::new()
                .name("nous-compactor".into())
                .spawn(move || {
                    let _guard = guard;
                    session.run_compaction();
                });
            if spawned.is_err() {
                // Thread spawn failed (resource exhaustion): compact
                // inline rather than dropping the request.
                self.run_compaction();
            }
        } else {
            let _guard = guard;
            self.run_compaction();
        }
    }

    /// Fold the published overlay stack into a fresh single-layer base
    /// right now, on the calling thread, and run the checkpoint sink.
    /// Returns `true` if a compacted snapshot was installed (`false`
    /// when an injected `session.compact` fault aborted it — the
    /// existing layer stack keeps serving, nothing is lost).
    pub fn compact_now(&self) -> bool {
        self.run_compaction()
    }

    /// Whether a background compaction is currently in flight.
    pub fn is_compacting(&self) -> bool {
        self.compacting.load(Ordering::Acquire)
    }

    fn run_compaction(&self) -> bool {
        let m = &self.metrics;
        let t0 = m.registry.now_nanos();
        // Read hold spans freeze + checkpoint + install: writers admitted
        // in that window would otherwise invalidate the frozen base
        // (readers are unaffected — this is a shared lock).
        let kg = self.kg.read();
        {
            let faults = self.faults.lock();
            if faults.hit(FP_SESSION_COMPACT) {
                m.compactions_failed.inc();
                // Flight-recorder black box: a failed compaction is one of
                // the "what just happened" moments the dump hook captures.
                faults.blackbox("compaction-failed");
                return false;
            }
        }
        let view = LayeredSnapshot::freeze(&kg.graph);
        if let Some(sink) = self.checkpoint_sink.lock().as_mut() {
            sink(&kg);
        }
        let mut slot = self.snapshot.lock();
        if slot.view.watermark() != view.watermark() {
            // The graph moved past what we froze (history rewrite raced
            // us); keep the newer published state.
            return false;
        }
        if slot.view.is_compacted() {
            // Another compaction (or a full-rebuild publish) got here
            // first; installing an identical base again would only churn
            // epochs.
            return true;
        }
        let epoch = slot.epoch + 1;
        let snap = Arc::new(FrozenSnapshot {
            epoch,
            view,
            topics: slot.topics.clone(),
            disambiguator: slot.disambiguator.clone(),
            disambiguator_version: slot.disambiguator_version,
            published_at_nanos: m.registry.now_nanos(),
            // Same watermark as the fold (checked above), so the published
            // composite still describes exactly this graph state.
            sharded: slot.sharded.clone(),
        });
        *slot = snap;
        drop(slot);
        drop(kg);
        m.snapshot_epoch.set(epoch as i64);
        m.snapshot_layers.set(1);
        m.snapshot_delta_permille.set(0);
        m.compaction_seconds
            .observe(m.registry.now_nanos().saturating_sub(t0));
        m.compactions.inc();
        true
    }

    /// The lock-free read path: clone the currently published snapshot.
    /// Costs one short mutex acquisition and an `Arc` clone; the returned
    /// snapshot is immutable and valid indefinitely (holding it pins its
    /// epoch, it never blocks ingestion). Records the snapshot's age on
    /// the `nous_snapshot_age_nanos` gauge.
    pub fn frozen(&self) -> Arc<FrozenSnapshot> {
        let snap = self.snapshot.lock().clone();
        let age = self
            .metrics
            .registry
            .now_nanos()
            .saturating_sub(snap.published_at_nanos);
        self.metrics.snapshot_age.set(age as i64);
        snap
    }

    /// The registry this session's accounting lands in.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// Deterministic JSON snapshot of every metric the session's registry
    /// holds — the live "/stats" endpoint of the demo service. Callers
    /// wanting Prometheus exposition instead use
    /// `session.metrics().render_prometheus()`.
    pub fn stats_snapshot(&self) -> String {
        self.metrics.registry.snapshot_json()
    }

    /// Run a read-only operation against the graph (concurrent with other
    /// readers).
    pub fn read<T>(&self, f: impl FnOnce(&KnowledgeGraph, &TopicIndex) -> T) -> T {
        let m = &self.metrics;
        let t0 = m.registry.now_nanos();
        let kg = self.kg.read();
        let topics = self.topics.read();
        let t1 = m.registry.now_nanos();
        m.wait_read.observe(t1.saturating_sub(t0));
        let out = f(&kg, &topics);
        let held = m.registry.now_nanos().saturating_sub(t1);
        m.hold_read.observe(held);
        m.hold_last_read.set(held as i64);
        out
    }

    /// Run a mutating operation (ingestion, retraining) with exclusive
    /// access.
    pub fn write<T>(&self, f: impl FnOnce(&mut KnowledgeGraph) -> T) -> T {
        let m = &self.metrics;
        let t0 = m.registry.now_nanos();
        let mut kg = self.kg.write();
        let t1 = m.registry.now_nanos();
        m.wait_write.observe(t1.saturating_sub(t0));
        let out = f(&mut kg);
        drop(kg);
        let held = m.registry.now_nanos().saturating_sub(t1);
        m.hold_write.observe(held);
        m.hold_last_write.set(held as i64);
        self.publish_snapshot();
        out
    }

    /// Replace the topic index (after an LDA refresh).
    pub fn set_topics(&self, topics: TopicIndex) {
        *self.topics.write() = Arc::new(topics);
        self.publish_snapshot();
    }

    /// Run an on-demand checkpoint (or any other whole-graph read, e.g.
    /// a snapshot export) against a consistent view of the graph: the
    /// read lock is held for the duration of `f`, so writers wait but
    /// concurrent readers proceed. Typical use:
    /// `session.checkpoint_with(|kg| store.checkpoint(kg, &report))`.
    pub fn checkpoint_with<T>(&self, f: impl FnOnce(&KnowledgeGraph) -> T) -> T {
        self.read(|kg, _| f(kg))
    }

    /// Run an operation needing the trend monitor (serialised: the miner's
    /// closed-pattern queries mutate cached state).
    pub fn with_trends<T>(&self, f: impl FnOnce(&mut TrendMonitor, &KnowledgeGraph) -> T) -> T {
        let m = &self.metrics;
        let t0 = m.registry.now_nanos();
        let kg = self.kg.read();
        let mut trends = self.trends.lock();
        let t1 = m.registry.now_nanos();
        m.wait_trends.observe(t1.saturating_sub(t0));
        let log_len = kg.graph.log_len();
        let out = f(&mut trends, &kg);
        m.hold_trends
            .observe(m.registry.now_nanos().saturating_sub(t1));
        drop(trends);
        drop(kg);
        // The closure may have advanced the miner window; republish so the
        // frozen trending path sees the new miner state — but only when the
        // snapshot is actually behind the graph (cheap no-op check).
        if self.snapshot.lock().view.source_log_len() != log_len {
            self.publish_snapshot();
        }
        out
    }

    /// Run an operation needing only the trend monitor — no graph lock at
    /// all. This is the mutable sliver of the lock-free query path: the
    /// miner's closed-pattern queries mutate cached state, so `Trending`
    /// over a frozen snapshot still serialises here (and only here).
    pub fn with_trends_only<T>(&self, f: impl FnOnce(&mut TrendMonitor) -> T) -> T {
        let m = &self.metrics;
        let t0 = m.registry.now_nanos();
        let mut trends = self.trends.lock();
        let t1 = m.registry.now_nanos();
        m.wait_trends.observe(t1.saturating_sub(t0));
        let out = f(&mut trends);
        m.hold_trends
            .observe(m.registry.now_nanos().saturating_sub(t1));
        out
    }

    /// Run an operation against the full session state — graph, topics and
    /// trend monitor — under one consistent acquisition (kg → topics →
    /// trends, the same order every other accessor uses). This is what the
    /// query executor runs under: every query class sees one coherent
    /// snapshot of the session.
    pub fn with_all<T>(
        &self,
        f: impl FnOnce(&KnowledgeGraph, &TopicIndex, &mut TrendMonitor) -> T,
    ) -> T {
        let m = &self.metrics;
        let t0 = m.registry.now_nanos();
        let kg = self.kg.read();
        let topics = self.topics.read();
        let mut trends = self.trends.lock();
        let t1 = m.registry.now_nanos();
        m.wait_all.observe(t1.saturating_sub(t0));
        let out = f(&kg, &topics, &mut trends);
        m.hold_all
            .observe(m.registry.now_nanos().saturating_sub(t1));
        out
    }

    /// Micro-batched ingestion against the live session: the parallel
    /// extraction stage runs under the **read** lock (analysts keep
    /// querying while documents are parsed — extraction is the wall-clock
    /// hog and never touches mutable state), and only the sequential
    /// merge stage takes the write lock, once per micro-batch. The
    /// gazetteer snapshot a batch extracts against is the one visible at
    /// its read-lock acquisition — the same staleness contract as
    /// [`IngestPipeline::ingest_batch`].
    pub fn ingest_batch(
        &self,
        pipeline: &mut IngestPipeline,
        articles: &[Article],
    ) -> IngestReport {
        let cfg = pipeline.config().clone();
        // The extract-stage histogram lives in the *pipeline's* registry
        // (get-or-create hands back the same series its own ingest path
        // records into), so session-driven and pipeline-driven ingestion
        // share one accounting stream.
        let extract_stage = pipeline.metrics().latency_with(
            "nous_ingest_stage_seconds",
            "Per-document wall time spent in each ingestion stage",
            &[("stage", "extract")],
        );
        for chunk in articles.chunks(cfg.batch_size.max(1)) {
            // One trace per micro-batch: extract → per-document stage
            // spans → publish all nest under this root, and a slow batch
            // lands in the flight recorder's slow log under "ingest.batch".
            let mut root = self.metrics.registry.trace("ingest.batch");
            root.attr("docs", chunk.len());
            let ctx = root.context();
            let extracted = {
                let m = &self.metrics;
                let docs: Vec<Document> = chunk.iter().map(Document::from).collect();
                let t0 = m.registry.now_nanos();
                let kg = self.kg.read();
                let t1 = m.registry.now_nanos();
                m.wait_read.observe(t1.saturating_sub(t0));
                let span = pipeline
                    .metrics()
                    .start(&extract_stage)
                    .with_exemplar(ctx.trace_id());
                let extract_span = ctx.child("extract");
                let (extracted, worker_docs, quarantined) = extract_documents_quarantined(
                    &docs,
                    &kg.gazetteer,
                    &cfg.extractor,
                    cfg.extract_workers,
                    &cfg.faults,
                );
                drop(extract_span);
                span.stop();
                pipeline.record_fanout(&worker_docs);
                for q in quarantined {
                    root.attr("quarantined_doc", q.doc_id);
                    pipeline.quarantine(q);
                }
                let held = m.registry.now_nanos().saturating_sub(t1);
                m.hold_read.observe(held);
                m.hold_last_read.set(held as i64);
                extracted
            };
            let m = &self.metrics;
            let t0 = m.registry.now_nanos();
            let mut kg = self.kg.write();
            let t1 = m.registry.now_nanos();
            m.wait_write.observe(t1.saturating_sub(t0));
            for ext in &extracted {
                let mut doc_span = ctx.child("ingest.doc");
                doc_span.attr("doc", ext.doc_id);
                pipeline.merge_extraction_traced(&mut kg, ext, &doc_span.context());
            }
            drop(kg);
            let held = m.registry.now_nanos().saturating_sub(t1);
            m.hold_write.observe(held);
            m.hold_last_write.set(held as i64);
            // Publish once per micro-batch: snapshot staleness for the
            // lock-free read path is bounded by one batch of documents.
            // The publish is O(this batch), not O(graph).
            let mut publish_span = ctx.child("publish");
            let epoch = self.publish_snapshot();
            publish_span.attr("epoch", epoch);
        }
        pipeline.report()
    }
}

/// A [`SharedSession`] constructed with entity-shard admission enabled:
/// the KG is partitioned by stable entity hash into `N` shards, each with
/// its own admission thread and independently-published epoch, and every
/// published [`FrozenSnapshot`] carries the composite fan-out/merge view.
/// Derefs to [`SharedSession`] — the entire session API (ingestion,
/// publication, compaction, stats) is unchanged.
pub struct ShardedSession(SharedSession);

impl ShardedSession {
    /// Shard count from the environment: `NOUS_SHARDS` if set, else
    /// `min(host_cpus, 8)` (see [`nous_graph::shard_count_from_env`]).
    pub fn new(kg: KnowledgeGraph, topics: TopicIndex, trends: TrendMonitor) -> Self {
        Self::with_shards(
            kg,
            topics,
            trends,
            MetricsRegistry::new(),
            nous_graph::shard_count_from_env(),
        )
    }

    /// Explicit shard count. `shards <= 1` yields a plain unsharded
    /// session — the byte-identical correctness oracle.
    pub fn with_shards(
        kg: KnowledgeGraph,
        topics: TopicIndex,
        trends: TrendMonitor,
        registry: MetricsRegistry,
        shards: usize,
    ) -> Self {
        let session = SharedSession::with_registry(kg, topics, trends, registry);
        session.enable_sharding(shards);
        Self(session)
    }

    /// The underlying shared session, by value (it is a cheap `Clone`
    /// handle).
    pub fn shared(&self) -> SharedSession {
        self.0.clone()
    }
}

impl std::ops::Deref for ShardedSession {
    type Target = SharedSession;

    fn deref(&self) -> &SharedSession {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_graph::window::WindowKind;
    use nous_mining::{EvictionStrategy, MinerConfig};
    use nous_text::ner::EntityType;

    fn session() -> SharedSession {
        let kg = KnowledgeGraph::new();
        let topics = TopicIndex::new(2);
        let trends = TrendMonitor::new(
            WindowKind::Count { n: 100 },
            MinerConfig {
                k_max: 1,
                min_support: 2,
                eviction: EvictionStrategy::Eager,
            },
        );
        SharedSession::new(kg, topics, trends)
    }

    #[test]
    fn read_write_roundtrip() {
        let s = session();
        s.write(|kg| {
            let a = kg.create_entity("A Corp", EntityType::Organization);
            let b = kg.create_entity("B Corp", EntityType::Organization);
            kg.add_extracted_fact(a, "acquired", b, 1, 0.9, 0);
        });
        let (vertices, edges) = s.read(|kg, _| (kg.graph.vertex_count(), kg.graph.edge_count()));
        assert_eq!((vertices, edges), (2, 1));
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let s = session();
        // Seed one entity so readers always have something to look at.
        s.write(|kg| {
            kg.create_entity("Seed Corp", EntityType::Organization);
        });
        let writer = {
            let s = s.clone();
            std::thread::spawn(move || {
                for i in 0..200 {
                    s.write(|kg| {
                        let a = kg.create_entity(&format!("W{i}a"), EntityType::Organization);
                        let b = kg.create_entity(&format!("W{i}b"), EntityType::Organization);
                        kg.add_extracted_fact(a, "partneredWith", b, i, 0.9, i);
                    });
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut observations = 0usize;
                    for _ in 0..200 {
                        let ok = s.read(|kg, _| {
                            // Invariant under concurrency: edge count never
                            // exceeds what the vertex count allows, and the
                            // seed entity is always resolvable.
                            kg.graph.vertex_id("Seed Corp").is_some()
                                && kg.graph.edge_count() * 2 <= kg.graph.vertex_count() * 2
                        });
                        assert!(ok);
                        observations += 1;
                    }
                    observations
                })
            })
            .collect();
        writer.join().expect("writer");
        for r in readers {
            assert_eq!(r.join().expect("reader"), 200);
        }
        assert_eq!(s.read(|kg, _| kg.graph.edge_count()), 200);
    }

    #[test]
    fn batched_ingestion_with_concurrent_readers() {
        use crate::pipeline::PipelineConfig;
        use nous_corpus::{ArticleStream, CuratedKb, Preset, World};

        let world = World::generate(&Preset::Smoke.world_config());
        let kb = CuratedKb::generate(&world, 7);
        let mut kg = KnowledgeGraph::from_curated(&world, &kb);
        kg.train_predictor();
        let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());
        let seed = world.entities[world.companies[0]].name.clone();

        let s = SharedSession::new(
            kg,
            TopicIndex::new(2),
            TrendMonitor::new(
                WindowKind::Count { n: 100 },
                MinerConfig {
                    k_max: 1,
                    min_support: 2,
                    eviction: EvictionStrategy::Eager,
                },
            ),
        );
        let reader = {
            let s = s.clone();
            let seed = seed.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    assert!(s.read(|kg, _| kg.graph.vertex_id(&seed).is_some()));
                }
            })
        };
        let cfg = PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            ..Default::default()
        };
        let mut pipe = IngestPipeline::new(cfg);
        let report = s.ingest_batch(&mut pipe, &articles);
        reader.join().expect("reader");
        assert_eq!(report.documents, articles.len());
        assert!(report.admitted > 0);
        assert_eq!(
            s.read(|kg, _| kg.graph.stats().extracted_edges),
            report.admitted
        );
    }

    #[test]
    fn concurrent_read_during_ingest_populates_lock_metrics() {
        use crate::pipeline::PipelineConfig;
        use nous_corpus::{ArticleStream, CuratedKb, Preset, World};

        let world = World::generate(&Preset::Smoke.world_config());
        let kb = CuratedKb::generate(&world, 7);
        let mut kg = KnowledgeGraph::from_curated(&world, &kb);
        kg.train_predictor();
        let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());
        let seed = world.entities[world.companies[0]].name.clone();

        // One registry shared by the session and the pipeline: lock
        // telemetry and ingest counters land on the same /stats surface.
        let registry = MetricsRegistry::new();
        let s = SharedSession::with_registry(
            kg,
            TopicIndex::new(2),
            TrendMonitor::new(
                WindowKind::Count { n: 100 },
                MinerConfig {
                    k_max: 1,
                    min_support: 2,
                    eviction: EvictionStrategy::Eager,
                },
            ),
            registry.clone(),
        );
        let reader = {
            let s = s.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    assert!(s.read(|kg, _| kg.graph.vertex_id(&seed).is_some()));
                }
            })
        };
        let cfg = PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            ..Default::default()
        };
        let mut pipe = IngestPipeline::with_registry(cfg, registry.clone());
        let report = s.ingest_batch(&mut pipe, &articles);
        reader.join().expect("reader");
        assert!(report.admitted > 0);
        // KG stayed consistent under the concurrent readers.
        assert_eq!(
            s.read(|kg, _| kg.graph.stats().extracted_edges),
            report.admitted
        );
        // Lock wait/hold histograms saw both the readers and the writer.
        let hold = |l: &str| {
            registry.latency_with(
                "nous_session_lock_hold_seconds",
                "Time a session lock was held by one operation",
                &[("lock", l)],
            )
        };
        assert!(hold("read").count() > 50, "reader + extraction holds");
        assert!(hold("write").count() > 0, "merge holds");
        // Last-hold gauges populated (hold times can legitimately be 0ns
        // on coarse clocks, so existence + non-negativity is the contract).
        let last_write = registry
            .gauge_value("nous_session_lock_hold_last_nanos", &[("lock", "write")])
            .expect("write hold gauge registered");
        assert!(last_write >= 0);
        // Ingest counters landed in the same registry.
        assert_eq!(
            registry.counter_value("nous_ingest_documents_total", &[]),
            Some(report.documents as u64)
        );
        // The session-driven fan-out credited worker slots.
        assert!(!registry
            .counter_family("nous_ingest_worker_docs_total")
            .is_empty());
        // And the snapshot renders the whole surface.
        let snap = s.stats_snapshot();
        assert!(snap.contains("nous_session_lock_hold_seconds"), "{snap}");
        assert!(snap.contains("nous_ingest_admitted_total"), "{snap}");
    }

    #[test]
    fn trend_monitor_observes_under_lock() {
        let s = session();
        s.write(|kg| {
            for i in 0..3 {
                let a = kg.create_entity(&format!("X{i}"), EntityType::Organization);
                let b = kg.create_entity(&format!("Y{i}"), EntityType::Organization);
                kg.add_extracted_fact(a, "acquired", b, i, 0.9, i);
            }
        });
        let n = s.with_trends(|tm, kg| {
            tm.observe(kg);
            tm.trending(kg).len()
        });
        assert!(n >= 1, "acquired pattern at support 3");
        // The write above already published, so the frozen view is current.
        let snap = s.frozen();
        assert_eq!(nous_graph::GraphView::live_edge_count(&snap.view), 3);
    }

    #[test]
    fn snapshots_publish_epochs_and_stay_immutable() {
        use nous_graph::GraphView;

        let s = session();
        let snap0 = s.frozen();
        assert_eq!(snap0.epoch, 0);
        assert_eq!(snap0.view.vertex_count(), 0);

        s.write(|kg| {
            let a = kg.create_entity("Acme Corp", EntityType::Organization);
            let b = kg.create_entity("Beta Labs", EntityType::Organization);
            kg.add_extracted_fact(a, "acquired", b, 5, 0.9, 0);
        });
        let snap1 = s.frozen();
        assert!(snap1.epoch >= 1, "write must publish a new epoch");
        assert_eq!(snap1.view.vertex_count(), 2);
        assert_eq!(snap1.view.live_edge_count(), 1);
        assert!(snap1.view.vertex_id("Acme Corp").is_some());
        assert!(!snap1.disambiguator.candidates("Acme Corp").is_empty());

        // The old Arc is pinned: later ingestion left it untouched.
        assert_eq!(snap0.view.vertex_count(), 0);
        assert_eq!(snap0.view.live_edge_count(), 0);

        // Metrics surfaced the publish.
        let registry = s.metrics();
        assert!(registry.gauge_value("nous_snapshot_epoch", &[]).unwrap() >= 1);
        assert!(
            registry
                .counter_value("nous_snapshot_published_total", &[])
                .unwrap()
                >= 1
        );
        // frozen() records staleness on the age gauge.
        assert!(
            registry
                .gauge_value("nous_snapshot_age_nanos", &[])
                .unwrap()
                >= 0
        );
    }
}
