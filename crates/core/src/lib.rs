//! # nous-core — the NOUS system facade
//!
//! Wires every component of the paper's Figure 1 into one API:
//!
//! ```text
//!  articles ──► nous-text (OpenIE/NER/coref, §3.2)
//!                  │ raw triples
//!                  ▼
//!           nous-link (predicate mapping + AIDA disambiguation, §3.3)
//!                  │ candidate facts
//!                  ▼
//!           nous-embed (BPR confidence, §3.4) ──► quality control
//!                  │ admitted facts
//!                  ▼
//!      KnowledgeGraph (nous-graph, dynamic + provenance)
//!            │                     │
//!            ▼                     ▼
//!  nous-mining (trending, §3.5)  nous-qa (why-questions, §3.6)
//! ```
//!
//! - [`kg::KnowledgeGraph`] — the fused curated + extracted dynamic KG with
//!   per-entity text, alias tables and the disambiguator/mapper/predictor
//!   state.
//! - [`pipeline::IngestPipeline`] — streaming document ingestion with
//!   quality control and per-stage accounting (demo features 1–3).
//! - [`trends::TrendMonitor`] — sliding-window streaming pattern mining
//!   over the live KG (Figure 7).
//! - [`seeds`] — the bootstrap seed rules for predicate mapping (§3.3's
//!   "5-10 seed examples" per predicate).

pub mod fabric;
pub mod journal;
pub mod kg;
pub mod pipeline;
pub mod quality;
pub mod revision;
pub mod seeds;
pub mod session;
pub mod trends;

pub use fabric::ShardFabric;
pub use journal::{AdmittedFact, IngestJournal};
pub use kg::{entity_summary_view, KnowledgeGraph};
pub use nous_extract::QuarantinedDoc;
pub use pipeline::{DeadLetterStore, IngestPipeline, IngestReport, PipelineConfig};
pub use quality::{CandidateFact, NoSelfLoopGate, QualityGate, TypeSignatureGate};
pub use revision::{RevisionCounters, RevisionPolicy};
pub use session::{
    CompactionConfig, FrozenSnapshot, ShardedSession, SharedSession, FP_SESSION_COMPACT,
};
pub use trends::TrendMonitor;
