//! The end-to-end ingestion pipeline (Figure 1).
//!
//! For each arriving document: run the §3.2 text pipeline, map every raw
//! tuple's predicate onto the ontology (§3.3), resolve both arguments
//! against the knowledge graph (AIDA-adapted disambiguation, creating new
//! vertices for genuinely new entities — the *dynamic* in dynamic KG),
//! score the candidate fact with the link predictor (§3.4), and admit it
//! if it clears the quality-control threshold. Everything that happens is
//! accounted in an [`IngestReport`], which is what the demo's quality
//! dashboard (feature 2) renders.
//!
//! # Two-stage ingestion
//!
//! The paper runs construction as a data-parallel Spark job (§3, Figure 1).
//! Here the pipeline is split the same way Saga-style continuous KB
//! construction splits it: **extraction** (tokenize/POS/NER/coref/OpenIE —
//! the wall-clock hog) is stateless with respect to the mutable graph and
//! fans out across worker threads per micro-batch via
//! [`nous_extract::extract_documents`], while the **merge** (mapping →
//! disambiguation → scoring → admission) stays sequential in document
//! order, so batched ingestion is deterministic. The only cross-document
//! coupling in extraction is the gazetteer: entities minted mid-batch
//! become NER-visible at the next micro-batch boundary rather than at the
//! next document (see DESIGN.md, "Ingestion architecture"). With
//! `batch_size == 1` — or whenever entity creation is disabled — batched
//! and sequential ingestion produce byte-identical graphs and reports.

use crate::journal::{AdmittedFact, IngestJournal};
use crate::kg::KnowledgeGraph;
use crate::quality::{CandidateFact, QualityGate};
use nous_corpus::Article;
use nous_embed::BprConfig;
use nous_extract::{
    extract_documents_quarantined, try_extract_document, DocExtraction, Document, QuarantinedDoc,
};
use nous_fault::Faults;
use nous_graph::VertexId;
use nous_link::LinkMode;
use nous_obs::{Counter, Gauge, Histogram, MetricsRegistry, TraceContext};
use nous_text::bow::BagOfWords;
use nous_text::ner::EntityType;
use nous_text::openie::ExtractorConfig;
use serde::{Deserialize, Serialize};

/// Pipeline configuration (the knobs of demo features 1 and 3).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub extractor: ExtractorConfig,
    pub link_mode: LinkMode,
    /// Quality control: minimum blended confidence to admit a fact.
    pub min_confidence: f32,
    /// Blend between extractor confidence and link-prediction score
    /// (0 = extractor only, 1 = predictor only).
    pub predictor_weight: f32,
    /// Create vertices for unresolvable mentions (vs. dropping the fact).
    pub create_unknown_entities: bool,
    /// Retrain the link predictor every N admitted facts (0 = never).
    pub retrain_every: usize,
    /// Run mapper expansion every N ingested documents (0 = never).
    pub expand_mapper_every: usize,
    pub bpr: BprConfig,
    /// Documents per parallel-extraction micro-batch in
    /// [`IngestPipeline::ingest_batch`] / [`IngestPipeline::ingest_stream`].
    /// `1` reproduces sequential ingestion exactly (each document extracts
    /// against the fully up-to-date gazetteer); larger batches trade a
    /// bounded gazetteer-staleness window for throughput.
    pub batch_size: usize,
    /// Worker threads for batch extraction. `0` = auto: the
    /// `NOUS_THREADS` environment variable if set, else the hardware's
    /// available parallelism.
    pub extract_workers: usize,
    /// Failpoint handle consulted by the extraction stage
    /// (`extract.poison` / `extract.panic`, keyed by document id).
    /// Disabled by default; a no-op unless the `fault-injection`
    /// feature is compiled in *and* a plan is armed.
    pub faults: Faults,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            extractor: ExtractorConfig::default(),
            link_mode: LinkMode::Full,
            min_confidence: 0.35,
            predictor_weight: 0.5,
            create_unknown_entities: true,
            retrain_every: 0,
            expand_mapper_every: 50,
            bpr: BprConfig::default(),
            batch_size: 32,
            extract_workers: 0,
            faults: Faults::disabled(),
        }
    }
}

/// Parked documents that failed extraction (panic or injected fault),
/// kept with their errors for offline inspection and reprocessing. The
/// pipeline appends here instead of letting one poison document abort a
/// micro-batch; the running total is also surfaced as
/// `nous_ingest_quarantined_total`.
#[derive(Debug, Default)]
pub struct DeadLetterStore {
    entries: Vec<QuarantinedDoc>,
}

impl DeadLetterStore {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every quarantined document, in quarantine order.
    pub fn entries(&self) -> &[QuarantinedDoc] {
        &self.entries
    }

    /// Remove and return all parked documents (reprocessing drain).
    pub fn drain(&mut self) -> Vec<QuarantinedDoc> {
        std::mem::take(&mut self.entries)
    }

    fn push(&mut self, q: QuarantinedDoc) {
        self.entries.push(q);
    }
}

/// Per-stage accounting, accumulated across documents.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestReport {
    pub documents: usize,
    pub sentences: usize,
    /// Raw OpenIE tuples after within-document dedup (what enters mapping).
    pub raw_triples: usize,
    /// Tuples collapsed by within-document dedup (over-generation signal).
    pub duplicate_triples: usize,
    /// Tuples whose predicate mapped onto the ontology.
    pub mapped: usize,
    /// Tuples dropped because the predicate is unmapped (stashed for
    /// mapper expansion instead).
    pub unmapped: usize,
    /// Tuples dropped because an argument would not resolve.
    pub unresolved_entity: usize,
    /// New entities created from text.
    pub new_entities: usize,
    /// Facts admitted into the graph.
    pub admitted: usize,
    /// Facts rejected by quality control.
    pub rejected: usize,
    /// Facts vetoed by a registered quality gate (also counted in
    /// `rejected`).
    pub gated: usize,
}

impl IngestReport {
    /// Fraction of mapped facts that passed quality control. `0.0` (never
    /// `NaN`) when nothing has reached quality control yet.
    pub fn admission_rate(&self) -> f64 {
        if self.admitted + self.rejected == 0 {
            0.0
        } else {
            self.admitted as f64 / (self.admitted + self.rejected) as f64
        }
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// accumulator (per-document / per-batch deltas). Saturating: a
    /// snapshot taken from a *different* (or reset) accumulator can have
    /// larger fields than `self`, and a delta must never underflow into
    /// garbage counts — mismatched fields clamp to zero instead.
    pub fn delta_since(&self, before: &IngestReport) -> IngestReport {
        IngestReport {
            documents: self.documents.saturating_sub(before.documents),
            sentences: self.sentences.saturating_sub(before.sentences),
            raw_triples: self.raw_triples.saturating_sub(before.raw_triples),
            duplicate_triples: self
                .duplicate_triples
                .saturating_sub(before.duplicate_triples),
            mapped: self.mapped.saturating_sub(before.mapped),
            unmapped: self.unmapped.saturating_sub(before.unmapped),
            unresolved_entity: self
                .unresolved_entity
                .saturating_sub(before.unresolved_entity),
            new_entities: self.new_entities.saturating_sub(before.new_entities),
            admitted: self.admitted.saturating_sub(before.admitted),
            rejected: self.rejected.saturating_sub(before.rejected),
            gated: self.gated.saturating_sub(before.gated),
        }
    }
}

/// The pipeline's instrument handles, pre-registered so the merge loop
/// never touches the registry mutex. These counters *are* the
/// [`IngestReport`]: [`IngestPipeline::report`] is assembled from them,
/// so the live `/stats` exposition and the report can never disagree.
struct PipelineMetrics {
    registry: MetricsRegistry,
    documents: Counter,
    sentences: Counter,
    raw_triples: Counter,
    duplicate_triples: Counter,
    mapped: Counter,
    unmapped: Counter,
    unresolved_entity: Counter,
    new_entities: Counter,
    admitted: Counter,
    rejected: Counter,
    gated: Counter,
    quarantined: Counter,
    batches: Counter,
    revision_superseded: Counter,
    revision_decayed: Counter,
    revision_reinforced: Counter,
    workers_used: Gauge,
    stage_extract: Histogram,
    stage_map: Histogram,
    stage_disambiguate: Histogram,
    stage_score: Histogram,
    stage_gate: Histogram,
    stage_admit: Histogram,
}

impl PipelineMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        let c = |name: &str, help: &str| registry.counter(name, help);
        let stage = |s: &str| {
            registry.latency_with(
                "nous_ingest_stage_seconds",
                "Per-document wall time spent in each ingestion stage",
                &[("stage", s)],
            )
        };
        Self {
            documents: c(
                "nous_ingest_documents_total",
                "Documents merged into the graph",
            ),
            sentences: c(
                "nous_ingest_sentences_total",
                "Sentences seen by extraction",
            ),
            raw_triples: c(
                "nous_ingest_raw_triples_total",
                "Raw OpenIE tuples entering mapping (after within-document dedup)",
            ),
            duplicate_triples: c(
                "nous_ingest_duplicate_triples_total",
                "Tuples collapsed by within-document dedup",
            ),
            mapped: c(
                "nous_ingest_mapped_total",
                "Tuples whose predicate mapped onto the ontology",
            ),
            unmapped: c(
                "nous_ingest_unmapped_total",
                "Tuples dropped (stashed) because the predicate is unmapped",
            ),
            unresolved_entity: c(
                "nous_ingest_unresolved_entity_total",
                "Tuples dropped because an argument would not resolve",
            ),
            new_entities: c(
                "nous_ingest_new_entities_total",
                "New entities created from text",
            ),
            admitted: c(
                "nous_ingest_admitted_total",
                "Facts admitted into the graph",
            ),
            rejected: c(
                "nous_ingest_rejected_total",
                "Facts rejected by quality control",
            ),
            gated: c(
                "nous_ingest_gated_total",
                "Facts vetoed by a registered quality gate (also counted in rejected)",
            ),
            quarantined: c(
                "nous_ingest_quarantined_total",
                "Documents quarantined to the dead-letter store (panic or injected fault)",
            ),
            batches: c(
                "nous_ingest_batches_total",
                "Parallel-extraction micro-batches dispatched",
            ),
            revision_superseded: c(
                "nous_revision_superseded_total",
                "Facts superseded by a contradicting object on a functional predicate",
            ),
            revision_decayed: c(
                "nous_revision_decayed_total",
                "Superseded facts re-appended at a decayed confidence",
            ),
            revision_reinforced: c(
                "nous_revision_reinforced_total",
                "Re-asserted facts folded into a single reinforced edge",
            ),
            workers_used: registry.gauge(
                "nous_ingest_extract_workers_used",
                "Extraction worker threads actually used by the last micro-batch",
            ),
            stage_extract: stage("extract"),
            stage_map: stage("map"),
            stage_disambiguate: stage("disambiguate"),
            stage_score: stage("score"),
            stage_gate: stage("gate"),
            stage_admit: stage("admit"),
            registry,
        }
    }

    /// Record one fan-out's per-worker document counts (deterministic
    /// chunk sizes from the extraction fan-out, credited by worker slot).
    fn record_fanout(&self, worker_docs: &[usize]) {
        self.workers_used.set(worker_docs.len() as i64);
        for (slot, &docs) in worker_docs.iter().enumerate() {
            self.registry
                .counter_with(
                    "nous_ingest_worker_docs_total",
                    "Documents extracted per fan-out worker slot",
                    &[("worker", &slot.to_string())],
                )
                .add(docs as u64);
        }
    }

    /// Assemble the [`IngestReport`] view of the counters.
    fn report(&self) -> IngestReport {
        IngestReport {
            documents: self.documents.get() as usize,
            sentences: self.sentences.get() as usize,
            raw_triples: self.raw_triples.get() as usize,
            duplicate_triples: self.duplicate_triples.get() as usize,
            mapped: self.mapped.get() as usize,
            unmapped: self.unmapped.get() as usize,
            unresolved_entity: self.unresolved_entity.get() as usize,
            new_entities: self.new_entities.get() as usize,
            admitted: self.admitted.get() as usize,
            rejected: self.rejected.get() as usize,
            gated: self.gated.get() as usize,
        }
    }
}

/// The resolution outcome for one mention, decided *before* any graph
/// mutation. Both endpoints of a tuple are planned first and committed
/// only if both resolve — so a fact whose object fails to resolve never
/// mints its subject as an orphan vertex.
enum ResolvePlan {
    Existing(VertexId),
    Mint { name: String, ty: EntityType },
}

/// Observer invoked with the merged graph after each ingested micro-batch
/// (see [`IngestPipeline::set_batch_hook`]).
pub type BatchHook = Box<dyn FnMut(&KnowledgeGraph) + Send>;

/// The streaming ingestion driver.
pub struct IngestPipeline {
    cfg: PipelineConfig,
    gates: Vec<Box<dyn QualityGate>>,
    /// Veto counts per gate name.
    pub gate_vetoes: std::collections::HashMap<String, usize>,
    metrics: PipelineMetrics,
    journal: Option<Box<dyn IngestJournal>>,
    admitted_since_retrain: usize,
    docs_since_expand: usize,
    /// Confidences of admitted and rejected facts (quality dashboard).
    pub admitted_confidences: Vec<f32>,
    pub rejected_confidences: Vec<f32>,
    /// Observer invoked after each micro-batch merges (snapshot publish).
    batch_hook: Option<BatchHook>,
    /// Documents that failed extraction, parked with their errors.
    dead_letters: DeadLetterStore,
}

impl IngestPipeline {
    pub fn new(cfg: PipelineConfig) -> Self {
        Self::with_registry(cfg, MetricsRegistry::new())
    }

    /// Build a pipeline whose accounting lands in `registry` — share one
    /// registry across the pipeline, session and query layer to get a
    /// single `/stats` surface (and inject a manual clock in tests).
    pub fn with_registry(cfg: PipelineConfig, registry: MetricsRegistry) -> Self {
        Self {
            cfg,
            gates: Vec::new(),
            gate_vetoes: Default::default(),
            metrics: PipelineMetrics::new(registry),
            journal: None,
            admitted_since_retrain: 0,
            docs_since_expand: 0,
            admitted_confidences: Vec::new(),
            rejected_confidences: Vec::new(),
            batch_hook: None,
            dead_letters: DeadLetterStore::default(),
        }
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The registry this pipeline's stage timers and counters live in.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// Register a custom quality-control module (demo feature 3). Gates
    /// run after mapping/linking/scoring; any veto rejects the fact.
    pub fn with_gate(mut self, gate: Box<dyn QualityGate>) -> Self {
        self.gates.push(gate);
        self
    }

    /// The per-stage accounting so far, read from the live counters.
    pub fn report(&self) -> IngestReport {
        self.metrics.report()
    }

    /// Credit one extraction fan-out run by an external driver (e.g.
    /// `SharedSession::ingest_batch`, which extracts under its own read
    /// lock) into this pipeline's batch accounting.
    pub fn record_fanout(&self, worker_docs: &[usize]) {
        self.metrics.batches.inc();
        self.metrics.record_fanout(worker_docs);
    }

    /// Park a document that failed extraction: counted on
    /// `nous_ingest_quarantined_total` and appended to the dead-letter
    /// store. Called by the batch paths here and by external extraction
    /// drivers (`SharedSession::ingest_batch`). A quarantine is a
    /// degradation boundary, so the fault handle's black-box hook (if
    /// attached) snapshots the flight recorder.
    pub fn quarantine(&mut self, q: QuarantinedDoc) {
        self.metrics.quarantined.inc();
        self.cfg
            .faults
            .blackbox(&format!("quarantine doc={}", q.doc_id));
        self.dead_letters.push(q);
    }

    /// Documents quarantined so far, with their errors.
    pub fn dead_letters(&self) -> &DeadLetterStore {
        &self.dead_letters
    }

    /// Mutable dead-letter access (reprocessing drains it).
    pub fn dead_letters_mut(&mut self) -> &mut DeadLetterStore {
        &mut self.dead_letters
    }

    /// Drain the dead-letter store and re-ingest the parked documents —
    /// poisoned docs are inspectable and recoverable, not silently lost.
    ///
    /// A [`QuarantinedDoc`] keeps only the doc id, day and error (not the
    /// article body), so the caller supplies a lookup from doc id back to
    /// the article. Returns `(reingested, missing)`: documents whose
    /// article the lookup could not produce are handed back untouched;
    /// documents that fail extraction again re-enter quarantine through
    /// the normal path.
    pub fn reingest_dead_letters(
        &mut self,
        kg: &mut KnowledgeGraph,
        mut lookup: impl FnMut(u64) -> Option<Article>,
    ) -> (usize, Vec<QuarantinedDoc>) {
        let parked = self.dead_letters.drain();
        let mut batch: Vec<Article> = Vec::with_capacity(parked.len());
        let mut missing = Vec::new();
        for q in parked {
            match lookup(q.doc_id) {
                Some(a) => batch.push(a),
                None => missing.push(q),
            }
        }
        let n = batch.len();
        if n > 0 {
            self.ingest_batch(kg, &batch);
        }
        (n, missing)
    }

    /// Install a journal sink observing the admit stream (see
    /// [`crate::journal`]); replaces any previous sink.
    pub fn set_journal(&mut self, journal: Box<dyn IngestJournal>) {
        self.journal = Some(journal);
    }

    /// Detach the journal sink, if any (e.g. to flush/close it).
    pub fn take_journal(&mut self) -> Option<Box<dyn IngestJournal>> {
        self.journal.take()
    }

    /// Install an observer invoked with the merged graph after every
    /// micro-batch of [`IngestPipeline::ingest_batch`] — the direct-drive
    /// analogue of `SharedSession::ingest_batch`'s per-batch snapshot
    /// publish. Replaces any previous hook.
    pub fn set_batch_hook(&mut self, hook: impl FnMut(&KnowledgeGraph) + Send + 'static) {
        self.batch_hook = Some(Box::new(hook));
    }

    /// Pre-load the cumulative counters with a recovered report, so a
    /// pipeline resumed from a checkpoint + WAL replay continues the
    /// original accounting instead of restarting from zero.
    pub fn seed_report(&mut self, report: &IngestReport) {
        self.metrics.documents.add(report.documents as u64);
        self.metrics.sentences.add(report.sentences as u64);
        self.metrics.raw_triples.add(report.raw_triples as u64);
        self.metrics
            .duplicate_triples
            .add(report.duplicate_triples as u64);
        self.metrics.mapped.add(report.mapped as u64);
        self.metrics.unmapped.add(report.unmapped as u64);
        self.metrics
            .unresolved_entity
            .add(report.unresolved_entity as u64);
        self.metrics.new_entities.add(report.new_entities as u64);
        self.metrics.admitted.add(report.admitted as u64);
        self.metrics.rejected.add(report.rejected as u64);
        self.metrics.gated.add(report.gated as u64);
    }

    /// Decide how a mention surface resolves — to an existing vertex, to
    /// a new entity worth minting, or not at all — without mutating the
    /// graph. The mutation happens in [`IngestPipeline::commit_resolve`],
    /// and only once *both* endpoints of a tuple have a plan.
    fn plan_resolve_entity(
        &self,
        kg: &KnowledgeGraph,
        surface: &str,
        doc_bow: &BagOfWords,
        mention_type: Option<EntityType>,
    ) -> Option<ResolvePlan> {
        if let Some(r) = kg
            .disambiguator
            .resolve(surface, doc_bow, self.cfg.link_mode)
        {
            return Some(ResolvePlan::Existing(VertexId(r.id)));
        }
        if !self.cfg.create_unknown_entities {
            return None;
        }
        let normalized = nous_link::normalize_mention(surface);
        // Refuse to mint entities from pronouns or empty/lowercase junk —
        // those are extraction noise, not new-world knowledge.
        let looks_like_name =
            normalized.chars().next().is_some_and(|c| c.is_uppercase()) && normalized.len() >= 3;
        if !looks_like_name {
            return None;
        }
        Some(ResolvePlan::Mint {
            name: normalized,
            ty: mention_type.unwrap_or(EntityType::Other),
        })
    }

    /// Execute a [`ResolvePlan`], minting the entity if needed.
    fn commit_resolve(&mut self, kg: &mut KnowledgeGraph, plan: ResolvePlan) -> VertexId {
        match plan {
            ResolvePlan::Existing(v) => v,
            ResolvePlan::Mint { name, ty } => {
                // Subject and object of one tuple can both plan to mint
                // the same normalized name; the second commit reuses the
                // vertex the first one created.
                if let Some(v) = kg.graph.vertex_id(&name) {
                    return v;
                }
                self.metrics.new_entities.inc();
                if let Some(j) = self.journal.as_mut() {
                    j.entity_created(&name, ty);
                }
                kg.create_entity(&name, ty)
            }
        }
    }

    /// Ingest one document into the knowledge graph. A document that
    /// fails extraction (panic or injected fault) is quarantined to the
    /// dead-letter store and contributes an empty delta; it never aborts
    /// the stream.
    pub fn ingest(&mut self, kg: &mut KnowledgeGraph, article: &Article) -> IngestReport {
        let before = self.report();
        let doc = Document::from(article);
        let mut root = self.metrics.registry.trace("ingest.doc");
        root.attr("doc", doc.id);
        let ctx = root.context();
        let span = self
            .metrics
            .registry
            .start(&self.metrics.stage_extract)
            .with_exemplar(ctx.trace_id());
        let extract_span = ctx.child("extract");
        let extracted =
            try_extract_document(&doc, &kg.gazetteer, &self.cfg.extractor, &self.cfg.faults);
        drop(extract_span);
        span.stop();
        match extracted {
            Ok(ext) => self.merge_extraction_traced(kg, &ext, &ctx),
            Err(error) => {
                root.attr("quarantined", true);
                self.quarantine(QuarantinedDoc {
                    doc_id: doc.id,
                    day: doc.day,
                    error,
                })
            }
        }
        self.report().delta_since(&before)
    }

    /// Merge one document's extractions into the graph: the sequential
    /// stage of the two-stage split (mapping → disambiguation → scoring →
    /// admission, plus the periodic mapper-expansion / retraining
    /// maintenance). Extractions carry their own provenance (`doc_id`,
    /// `day`), so a pre-computed [`DocExtraction`] — e.g. produced by a
    /// parallel extraction fan-out — merges exactly as inline extraction
    /// would.
    pub fn merge_extraction(&mut self, kg: &mut KnowledgeGraph, extracted: &DocExtraction) {
        let mut root = self.metrics.registry.trace("ingest.doc");
        root.attr("doc", extracted.doc_id);
        let ctx = root.context();
        self.merge_extraction_traced(kg, extracted, &ctx);
    }

    /// [`IngestPipeline::merge_extraction`] under an explicit trace
    /// context — batch drivers pass a child of their batch span so each
    /// document's stage spans nest under the batch trace.
    pub fn merge_extraction_traced(
        &mut self,
        kg: &mut KnowledgeGraph,
        extracted: &DocExtraction,
        ctx: &TraceContext,
    ) {
        let before = self.journal.as_ref().map(|_| self.report());
        self.metrics.documents.inc();
        self.metrics.sentences.add(extracted.sentences as u64);
        self.metrics
            .duplicate_triples
            .add((extracted.raw_count - extracted.extractions.len()) as u64);
        let doc_bow = &extracted.context;
        // Per-stage time accumulates across the document's tuples through
        // drop-safe `StageAcc` guards and is observed once per document —
        // a panicking tuple (or early return) still surfaces whatever
        // stage time it burned. The accumulators are locals holding
        // cloned histogram handles, so the borrows never cross the
        // `&mut self` calls inside the loop.
        let reg = self.metrics.registry.clone();
        let mut map_acc = reg.stage_acc(&self.metrics.stage_map);
        let mut dis_acc = reg.stage_acc(&self.metrics.stage_disambiguate);
        let mut score_acc = reg.stage_acc(&self.metrics.stage_score);
        let mut gate_acc = reg.stage_acc(&self.metrics.stage_gate);
        let mut admit_acc = reg.stage_acc(&self.metrics.stage_admit);
        let trace_id = ctx.trace_id();
        for acc in [
            &mut map_acc,
            &mut dis_acc,
            &mut score_acc,
            &mut gate_acc,
            &mut admit_acc,
        ] {
            acc.set_exemplar(trace_id);
        }

        for t in &extracted.extractions {
            self.metrics.raw_triples.inc();
            let g = map_acc.enter();
            let rule = kg.mapper.map(&t.predicate).cloned();
            let Some(rule) = rule else {
                self.metrics.unmapped.inc();
                // Still try to resolve the arguments so the stashed raw
                // triple can supervise mapper expansion later.
                if let (Some(s), Some(o)) = (
                    kg.disambiguator
                        .resolve(&t.subject, doc_bow, self.cfg.link_mode)
                        .map(|r| VertexId(r.id)),
                    kg.disambiguator
                        .resolve(&t.object, doc_bow, self.cfg.link_mode)
                        .map(|r| VertexId(r.id)),
                ) {
                    kg.stash_raw_triple(s, &t.predicate, o);
                }
                continue;
            };
            self.metrics.mapped.inc();
            drop(g);

            // Plan both endpoints before creating either: if the object
            // turns out unresolvable the fact is dropped without having
            // minted the subject as an orphan (and vice versa).
            let g = dis_acc.enter();
            let s_plan = self.plan_resolve_entity(kg, &t.subject, doc_bow, t.subject_type);
            let o_plan = self.plan_resolve_entity(kg, &t.object, doc_bow, t.object_type);
            let (Some(s_plan), Some(o_plan)) = (s_plan, o_plan) else {
                self.metrics.unresolved_entity.inc();
                continue;
            };
            drop(g);
            let g = dis_acc.enter();
            let mut s = self.commit_resolve(kg, s_plan);
            let mut o = self.commit_resolve(kg, o_plan);
            drop(g);
            if rule.inverted {
                std::mem::swap(&mut s, &mut o);
            }
            if s == o {
                self.metrics.rejected.inc();
                continue;
            }

            // §3.4 confidence: blend extractor heuristic with the link
            // predictor's graph-prior score.
            let g = score_acc.enter();
            let prior = kg.predictor.score(&rule.ontology, s.0, o.0);
            let confidence = crate::revision::blend(t.confidence, prior, self.cfg.predictor_weight);
            drop(g);

            if confidence < self.cfg.min_confidence || t.negated {
                self.metrics.rejected.inc();
                self.rejected_confidences.push(confidence);
                continue;
            }
            let candidate = CandidateFact {
                subject: s,
                predicate: &rule.ontology,
                object: o,
                confidence,
            };
            let g = gate_acc.enter();
            let veto = self.gates.iter().find(|g| g.check(kg, &candidate).is_err());
            drop(g);
            if let Some(gate) = veto {
                *self.gate_vetoes.entry(gate.name().to_owned()).or_default() += 1;
                self.metrics
                    .registry
                    .counter_with(
                        "nous_ingest_gate_vetoes_total",
                        "Facts vetoed per quality gate",
                        &[("gate", gate.name())],
                    )
                    .inc();
                self.metrics.gated.inc();
                self.metrics.rejected.inc();
                self.rejected_confidences.push(confidence);
                continue;
            }
            let g = admit_acc.enter();
            let rev_before = kg.revision_counters();
            kg.add_extracted_fact_with_args(
                s,
                &rule.ontology,
                o,
                t.day,
                confidence,
                t.doc_id,
                &t.extra_args,
            );
            kg.add_entity_text(s, doc_bow);
            kg.add_entity_text(o, doc_bow);
            drop(g);
            let rev = kg.revision_counters();
            self.metrics
                .revision_superseded
                .add(rev.superseded - rev_before.superseded);
            self.metrics
                .revision_decayed
                .add(rev.decayed - rev_before.decayed);
            self.metrics
                .revision_reinforced
                .add(rev.reinforced - rev_before.reinforced);
            self.metrics.admitted.inc();
            if let Some(j) = self.journal.as_mut() {
                // Names logged as stored (after any inverted-rule swap),
                // so replay re-resolves to the same vertices.
                j.fact_admitted(&AdmittedFact {
                    subject: kg.graph.vertex_name(s).to_owned(),
                    predicate: rule.ontology.clone(),
                    object: kg.graph.vertex_name(o).to_owned(),
                    at: t.day,
                    confidence,
                    doc_id: t.doc_id,
                    extra_args: t.extra_args.clone(),
                });
            }
            self.admitted_confidences.push(confidence);
            self.admitted_since_retrain += 1;
        }

        // One histogram observation per document per stage; stages the
        // document never reached record nothing and emit no span.
        for (name, acc) in [
            ("map", map_acc),
            ("disambiguate", dis_acc),
            ("score", score_acc),
            ("gate", gate_acc),
            ("admit", admit_acc),
        ] {
            let first = acc.first_start();
            let (total, _) = acc.finish();
            if let Some(start) = first {
                ctx.record_span(name, start, start.saturating_add(total), &[]);
            }
        }

        // Durability boundary: the document's mutations are complete, so
        // a WAL sink flushing here makes the document atomic on replay.
        if let Some(before) = before {
            let delta = self.report().delta_since(&before);
            if let Some(j) = self.journal.as_mut() {
                let _journal_span = ctx.child("journal");
                j.document_merged(extracted.doc_id, &delta);
            }
        }

        self.docs_since_expand += 1;
        if self.cfg.expand_mapper_every > 0
            && self.docs_since_expand >= self.cfg.expand_mapper_every
        {
            kg.expand_mapper();
            self.docs_since_expand = 0;
        }
        if self.cfg.retrain_every > 0 && self.admitted_since_retrain >= self.cfg.retrain_every {
            kg.train_predictor();
            self.admitted_since_retrain = 0;
        }
    }

    /// Ingest a whole stream in arrival order, one document at a time.
    pub fn ingest_all(&mut self, kg: &mut KnowledgeGraph, articles: &[Article]) -> IngestReport {
        for a in articles {
            self.ingest(kg, a);
        }
        self.report()
    }

    /// Ingest a slice of documents through the two-stage split: extraction
    /// fans out across worker threads per micro-batch of
    /// [`PipelineConfig::batch_size`] documents, then results merge back
    /// **in document order** through the sequential update stage. Every
    /// document in a micro-batch extracts against the gazetteer as of the
    /// batch boundary; see the module docs for the staleness contract.
    pub fn ingest_batch(&mut self, kg: &mut KnowledgeGraph, articles: &[Article]) -> IngestReport {
        for chunk in articles.chunks(self.cfg.batch_size.max(1)) {
            self.metrics.batches.inc();
            let mut root = self.metrics.registry.trace("ingest.batch");
            root.attr("docs", chunk.len());
            let ctx = root.context();
            let docs: Vec<Document> = chunk.iter().map(Document::from).collect();
            let span = self
                .metrics
                .registry
                .start(&self.metrics.stage_extract)
                .with_exemplar(ctx.trace_id());
            let extract_span = ctx.child("extract");
            let (extracted, worker_docs, quarantined) = extract_documents_quarantined(
                &docs,
                &kg.gazetteer,
                &self.cfg.extractor,
                self.cfg.extract_workers,
                &self.cfg.faults,
            );
            drop(extract_span);
            span.stop();
            self.metrics.record_fanout(&worker_docs);
            for q in quarantined {
                root.attr("quarantined_doc", q.doc_id);
                self.quarantine(q);
            }
            for ext in &extracted {
                let mut doc_span = ctx.child("ingest.doc");
                doc_span.attr("doc", ext.doc_id);
                self.merge_extraction_traced(kg, ext, &doc_span.context());
            }
            if let Some(hook) = self.batch_hook.as_mut() {
                hook(kg);
            }
        }
        self.report()
    }

    /// Ingest an arbitrary document stream with the same micro-batched
    /// fan-out as [`IngestPipeline::ingest_batch`], buffering
    /// [`PipelineConfig::batch_size`] articles at a time — the entry point
    /// for feeds that never materialise the whole corpus in memory.
    pub fn ingest_stream<I>(&mut self, kg: &mut KnowledgeGraph, articles: I) -> IngestReport
    where
        I: IntoIterator<Item = Article>,
    {
        let batch = self.cfg.batch_size.max(1);
        let mut iter = articles.into_iter();
        let mut buf: Vec<Article> = Vec::with_capacity(batch);
        loop {
            buf.clear();
            buf.extend(iter.by_ref().take(batch));
            if buf.is_empty() {
                break;
            }
            self.ingest_batch(kg, &buf);
        }
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_corpus::{ArticleStream, CuratedKb, Preset, World};

    fn setup() -> (World, KnowledgeGraph, Vec<Article>) {
        let world = World::generate(&Preset::Smoke.world_config());
        let kb = CuratedKb::generate(&world, 7);
        let kg = KnowledgeGraph::from_curated(&world, &kb);
        let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());
        (world, kg, articles)
    }

    #[test]
    fn ingestion_admits_facts() {
        let (_, mut kg, articles) = setup();
        kg.train_predictor();
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        let report = pipe.ingest_all(&mut kg, &articles);
        assert_eq!(report.documents, articles.len());
        assert!(report.raw_triples > 0, "extraction produced tuples");
        assert!(report.admitted > 0, "some facts admitted: {report:?}");
        assert_eq!(kg.graph.stats().extracted_edges, report.admitted);
    }

    #[test]
    fn batch_hook_fires_once_per_micro_batch() {
        let (_, mut kg, articles) = setup();
        kg.train_predictor();
        let mut pipe = IngestPipeline::new(PipelineConfig {
            batch_size: 8,
            ..Default::default()
        });
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let log_lens = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        {
            let calls = calls.clone();
            let log_lens = log_lens.clone();
            pipe.set_batch_hook(move |kg| {
                calls.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                log_lens.lock().unwrap().push(kg.graph.log_len());
            });
        }
        pipe.ingest_batch(&mut kg, &articles);
        let expected = articles.len().div_ceil(8);
        assert_eq!(
            calls.load(std::sync::atomic::Ordering::Relaxed),
            expected,
            "one hook call per micro-batch"
        );
        // The hook observes the graph *after* each merge: monotone log.
        let lens = log_lens.lock().unwrap();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*lens.last().unwrap(), kg.graph.log_len());
    }

    #[test]
    fn ground_truth_recall_is_reasonable() {
        // End-to-end: a healthy fraction of generator ground-truth facts
        // must land in the graph with the right canonical entities.
        let (world, mut kg, articles) = setup();
        kg.train_predictor();
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        pipe.ingest_all(&mut kg, &articles);
        let mut hit = 0usize;
        let mut total = 0usize;
        for a in &articles {
            for f in &a.facts {
                total += 1;
                let s = world
                    .by_name(&f.subject)
                    .and_then(|_| kg.graph.vertex_id(&f.subject));
                let o = world
                    .by_name(&f.object)
                    .and_then(|_| kg.graph.vertex_id(&f.object));
                if let (Some(s), Some(o)) = (s, o) {
                    if let Some(p) = kg.graph.predicate_id(f.predicate.name()) {
                        if kg.graph.has_triple(s, p, o) {
                            hit += 1;
                        }
                    }
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(
            recall > 0.3,
            "end-to-end recall too low: {recall:.2} ({hit}/{total})"
        );
    }

    #[test]
    fn quality_threshold_rejects() {
        let (_, mut kg, articles) = setup();
        let cfg = PipelineConfig {
            min_confidence: 0.99,
            ..Default::default()
        };
        let mut pipe = IngestPipeline::new(cfg);
        let report = pipe.ingest_all(&mut kg, &articles);
        assert_eq!(report.admitted, 0, "nothing clears 0.99");
        assert!(report.rejected > 0);
        assert_eq!(report.admission_rate(), 0.0);
    }

    #[test]
    fn unknown_entities_created_only_when_allowed() {
        let (_, mut kg, articles) = setup();
        let cfg = PipelineConfig {
            create_unknown_entities: false,
            ..Default::default()
        };
        let before = kg.graph.vertex_count();
        let mut pipe = IngestPipeline::new(cfg);
        pipe.ingest_all(&mut kg, &articles);
        assert_eq!(
            kg.graph.vertex_count(),
            before,
            "no entity creation allowed"
        );
        assert_eq!(pipe.report().new_entities, 0);
    }

    #[test]
    fn failed_object_resolution_mints_no_orphan_subject() {
        use nous_extract::Extraction;
        // A tuple whose subject would mint a brand-new entity but whose
        // object is a pronoun: the fact is dropped, and the subject must
        // NOT be left behind as an orphan vertex (nor counted as a new
        // entity).
        let (_, mut kg, _) = setup();
        let before_vertices = kg.graph.vertex_count();
        let ext = DocExtraction {
            doc_id: 77,
            sentences: 1,
            raw_count: 1,
            context: BagOfWords::new(),
            extractions: vec![Extraction {
                doc_id: 77,
                day: 5,
                sentence: 0,
                subject: "Zephyr Dynamics".into(),
                subject_type: Some(EntityType::Organization),
                predicate: "acquire".into(),
                object: "it".into(),
                object_type: None,
                extra_args: vec![],
                negated: false,
                confidence: 0.9,
            }],
        };
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        pipe.merge_extraction(&mut kg, &ext);
        let report = pipe.report();
        assert_eq!(report.mapped, 1, "{report:?}");
        assert_eq!(report.unresolved_entity, 1, "{report:?}");
        assert_eq!(report.new_entities, 0, "{report:?}");
        assert_eq!(
            kg.graph.vertex_count(),
            before_vertices,
            "orphan subject vertex minted for a dropped fact"
        );
        assert!(kg.graph.vertex_id("Zephyr Dynamics").is_none());
    }

    #[test]
    fn mapper_expansion_learns_synonyms_during_ingestion() {
        use nous_corpus::StreamConfig;
        let world = World::generate(&Preset::Smoke.world_config());
        let kb = CuratedKb::generate(&world, 7);
        let mut kg = KnowledgeGraph::from_curated(&world, &kb);
        // Heavy curated-echo stream: articles that re-report curated facts
        // through synonym verbs are exactly the distant supervision signal.
        let stream_cfg = StreamConfig {
            articles: 250,
            curated_echo_rate: 0.6,
            alias_usage: 0.0,
            ..Default::default()
        };
        let articles = ArticleStream::generate(&world, &kb, &stream_cfg);
        kg.train_predictor();
        let cfg = PipelineConfig {
            expand_mapper_every: 50,
            ..Default::default()
        };
        let mut pipe = IngestPipeline::new(cfg);
        pipe.ingest_all(&mut kg, &articles);
        // At least one non-seed synonym should have been learned from the
        // stream (the generator uses buy/purchase/make/produce/... which
        // are not seeded).
        let learned: Vec<&str> = kg
            .mapper
            .rules()
            .iter()
            .filter(|(_, r)| !r.seed)
            .map(|(k, _)| *k)
            .collect();
        assert!(!learned.is_empty(), "no synonyms learned");
    }

    #[test]
    fn batched_ingestion_admits_like_sequential() {
        let (_, mut kg, articles) = setup();
        kg.train_predictor();
        let cfg = PipelineConfig {
            batch_size: 8,
            extract_workers: 4,
            ..Default::default()
        };
        let mut pipe = IngestPipeline::new(cfg);
        let report = pipe.ingest_batch(&mut kg, &articles);
        assert_eq!(report.documents, articles.len());
        assert!(report.admitted > 0, "batched path admits facts: {report:?}");
        assert_eq!(kg.graph.stats().extracted_edges, report.admitted);
    }

    #[test]
    fn batch_size_one_is_byte_identical_to_sequential() {
        let (_, mut kg_seq, articles) = setup();
        let (_, mut kg_par, _) = setup();
        kg_seq.train_predictor();
        kg_par.train_predictor();
        let mut seq = IngestPipeline::new(PipelineConfig::default());
        seq.ingest_all(&mut kg_seq, &articles);
        let cfg = PipelineConfig {
            batch_size: 1,
            extract_workers: 4,
            ..Default::default()
        };
        let mut par = IngestPipeline::new(cfg);
        par.ingest_batch(&mut kg_par, &articles);
        assert_eq!(seq.report(), par.report());
        assert_eq!(kg_seq.graph.vertex_count(), kg_par.graph.vertex_count());
        assert_eq!(kg_seq.graph.edge_count(), kg_par.graph.edge_count());
        assert_eq!(seq.admitted_confidences, par.admitted_confidences);
    }

    #[test]
    fn ingest_stream_buffers_into_the_same_batches() {
        let (_, mut kg_a, articles) = setup();
        let (_, mut kg_b, _) = setup();
        kg_a.train_predictor();
        kg_b.train_predictor();
        let cfg = PipelineConfig {
            batch_size: 16,
            extract_workers: 2,
            ..Default::default()
        };
        let mut batch = IngestPipeline::new(cfg.clone());
        batch.ingest_batch(&mut kg_a, &articles);
        let mut stream = IngestPipeline::new(cfg);
        stream.ingest_stream(&mut kg_b, articles.iter().cloned());
        assert_eq!(batch.report(), stream.report());
        assert_eq!(kg_a.graph.edge_count(), kg_b.graph.edge_count());
    }

    #[test]
    fn per_document_delta_is_consistent() {
        let (_, mut kg, articles) = setup();
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        let mut sum_admitted = 0;
        for a in &articles {
            let delta = pipe.ingest(&mut kg, a);
            assert_eq!(delta.documents, 1);
            sum_admitted += delta.admitted;
        }
        assert_eq!(sum_admitted, pipe.report().admitted);
    }

    #[test]
    fn nary_arguments_land_as_edge_properties() {
        let (world, mut kg, _) = setup();
        let a = &world.entities[world.companies[0]].name;
        // Force a 'launched … in <city> in <month>' sentence: the mapped
        // deploys fact must carry its prepositional adjuncts.
        let product = &world.entities[world.products[0]].name;
        let article = Article {
            id: 7,
            day: 42,
            headline: "t".into(),
            body: format!("{a} deployed the {product} in Shenzhen in March."),
            facts: vec![],
        };
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        let delta = pipe.ingest(&mut kg, &article);
        assert_eq!(delta.admitted, 1, "{delta:?}");
        let with_args = kg
            .graph
            .iter_edges()
            .filter(|(_, e)| !e.provenance.is_curated())
            .filter_map(|(_, e)| e.props.get("args"))
            .next()
            .expect("admitted fact carries args prop");
        let args = with_args.as_list().unwrap();
        assert!(args.iter().any(|a| a.contains("Shenzhen")), "{args:?}");
        assert!(args.iter().any(|a| a.contains("March")), "{args:?}");
    }

    #[test]
    fn quality_gates_veto_and_account() {
        use crate::quality::TypeSignatureGate;
        let (_, mut kg, articles) = setup();
        kg.train_predictor();
        let mut pipe = IngestPipeline::new(PipelineConfig::default())
            .with_gate(Box::new(TypeSignatureGate::news_ontology()));
        let report = pipe.ingest_all(&mut kg, &articles);
        // The gate must not block the well-typed bulk of the stream…
        assert!(report.admitted > 0);
        // …and every veto is accounted under the gate's name.
        let vetoes: usize = pipe.gate_vetoes.values().sum();
        assert_eq!(vetoes, report.gated);
        // Type-correctness of everything admitted: spot-check acquired.
        if let Some(p) = kg.graph.predicate_id("acquired") {
            for id in kg.graph.find(None, Some(p), None) {
                let e = kg.graph.edge(id);
                for v in [e.src, e.dst] {
                    // The gate deliberately passes unlabelled endpoints
                    // (no type, nothing to veto) — only labelled ones
                    // carry a contract to check. Fabricating a default
                    // label here would vacuously pass exactly the
                    // endpoints the gate never looked at.
                    let Some(label) = kg.graph.label(v) else {
                        continue;
                    };
                    assert!(
                        label == "Company" || label == "Organization",
                        "ill-typed acquired edge survived the gate: {label}"
                    );
                }
            }
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn poisoned_documents_quarantine_and_the_batch_continues() {
        use nous_fault::{FaultPlan, SitePlan};
        let (_, mut kg, articles) = setup();
        kg.train_predictor();
        let plan = FaultPlan::from_seed(7)
            .site(nous_extract::FP_EXTRACT_POISON, SitePlan::probability(0.2));
        let poisoned: Vec<u64> = articles
            .iter()
            .map(|a| a.id)
            .filter(|id| plan.would_fire_keyed(nous_extract::FP_EXTRACT_POISON, *id))
            .collect();
        assert!(!poisoned.is_empty(), "seed 7 must poison at least one doc");
        let cfg = PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            faults: plan.arm(),
            ..Default::default()
        };
        let mut pipe = IngestPipeline::new(cfg);
        let report = pipe.ingest_batch(&mut kg, &articles);
        // Quarantined docs never reach the merge stage; the rest do.
        assert_eq!(report.documents, articles.len() - poisoned.len());
        assert!(report.admitted > 0, "survivors still admit facts");
        let dead = pipe.dead_letters();
        assert_eq!(dead.len(), poisoned.len());
        let parked: Vec<u64> = dead.entries().iter().map(|q| q.doc_id).collect();
        assert_eq!(parked, poisoned, "exactly the keyed docs quarantined");
        assert!(dead.entries().iter().all(|q| q.error.contains("injected")));
        assert_eq!(
            pipe.metrics()
                .counter_value("nous_ingest_quarantined_total", &[]),
            Some(poisoned.len() as u64)
        );
        // Determinism: the same seed over the sequential path quarantines
        // the same documents and builds the same graph.
        let (_, mut kg2, _) = setup();
        kg2.train_predictor();
        let cfg2 = PipelineConfig {
            faults: FaultPlan::from_seed(7)
                .site(nous_extract::FP_EXTRACT_POISON, SitePlan::probability(0.2))
                .arm(),
            ..Default::default()
        };
        let mut seq = IngestPipeline::new(cfg2);
        let report2 = seq.ingest_all(&mut kg2, &articles);
        assert_eq!(report2.documents, report.documents);
        let parked2: Vec<u64> = seq
            .dead_letters()
            .entries()
            .iter()
            .map(|q| q.doc_id)
            .collect();
        assert_eq!(parked2, poisoned);
    }

    #[test]
    fn negated_facts_are_rejected() {
        let (world, mut kg, _) = setup();
        let a = &world.entities[world.companies[0]].name;
        let b = &world.entities[world.companies[1]].name;
        let article = Article {
            id: 999,
            day: 100,
            headline: "test".into(),
            body: format!("{a} never acquired {b}."),
            facts: vec![],
        };
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        let delta = pipe.ingest(&mut kg, &article);
        assert_eq!(delta.admitted, 0);
    }

    #[test]
    fn delta_since_saturates_instead_of_underflowing() {
        // A "before" snapshot from a different (or reset) accumulator can
        // be ahead of "self" — e.g. a dashboard that kept a snapshot across
        // a pipeline restart. The delta clamps to zero, never wraps.
        let behind = IngestReport {
            documents: 3,
            admitted: 1,
            ..Default::default()
        };
        let ahead = IngestReport {
            documents: 10,
            sentences: 4,
            admitted: 5,
            rejected: 2,
            ..Default::default()
        };
        let delta = behind.delta_since(&ahead);
        assert_eq!(delta.documents, 0);
        assert_eq!(delta.admitted, 0);
        assert_eq!(delta.sentences, 0);
        // The normal direction still subtracts exactly.
        let fwd = ahead.delta_since(&behind);
        assert_eq!(fwd.documents, 7);
        assert_eq!(fwd.admitted, 4);
        assert_eq!(fwd.rejected, 2);
    }

    #[test]
    fn admission_rate_is_finite_on_empty_and_delta_reports() {
        let empty = IngestReport::default();
        assert_eq!(empty.admission_rate(), 0.0);
        assert!(empty.admission_rate().is_finite());
        // Zero-doc delta: identical snapshots produce an all-zero report
        // whose rate is 0.0, not NaN.
        let snap = IngestReport {
            documents: 5,
            admitted: 3,
            rejected: 1,
            ..Default::default()
        };
        let delta = snap.delta_since(&snap.clone());
        assert_eq!(delta, IngestReport::default());
        assert_eq!(delta.admission_rate(), 0.0);
    }

    #[test]
    fn report_is_a_view_of_the_registry_counters() {
        let (_, mut kg, articles) = setup();
        kg.train_predictor();
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        let report = pipe.ingest_all(&mut kg, &articles[..10]);
        let reg = pipe.metrics();
        assert_eq!(
            reg.counter_value("nous_ingest_documents_total", &[]),
            Some(report.documents as u64)
        );
        assert_eq!(
            reg.counter_value("nous_ingest_admitted_total", &[]),
            Some(report.admitted as u64)
        );
        assert_eq!(
            reg.counter_value("nous_ingest_rejected_total", &[]),
            Some(report.rejected as u64)
        );
        // Stage histograms saw one observation per document per stage.
        let text = reg.render_prometheus();
        assert!(
            text.contains("nous_ingest_stage_seconds_count{stage=\"map\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("nous_ingest_stage_seconds_count{stage=\"extract\"} 10"),
            "{text}"
        );
    }

    #[test]
    fn batched_ingestion_records_fanout_accounting() {
        let (_, mut kg, articles) = setup();
        kg.train_predictor();
        let cfg = PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            ..Default::default()
        };
        let mut pipe = IngestPipeline::new(cfg);
        pipe.ingest_batch(&mut kg, &articles);
        let reg = pipe.metrics();
        let batches = reg.counter_value("nous_ingest_batches_total", &[]).unwrap();
        assert_eq!(batches as usize, articles.len().div_ceil(8));
        // Up to two workers per batch of 8 — the configured count is
        // capped at the host's parallelism (a 1-cpu host realizes 1
        // worker and skips the fan-out). Every realized slot is credited
        // and all docs are accounted across the worker counters.
        let realized = 2usize.min(nous_graph::parallel::available_workers());
        let fam = reg.counter_family("nous_ingest_worker_docs_total");
        assert_eq!(fam.len(), realized, "{fam:?}");
        let total: u64 = fam.iter().map(|(_, v)| v).sum();
        assert_eq!(total as usize, articles.len());
        assert_eq!(
            reg.gauge_value("nous_ingest_extract_workers_used", &[]),
            Some(realized as i64)
        );
    }
}
