//! The shard fabric: per-shard admission threads replicating the global
//! knowledge graph into entity-hash partitions.
//!
//! [`ShardFabric`] owns `N` long-lived worker threads, each holding one
//! [`ShardReplica`] (see `nous_graph::shard`). On every snapshot
//! publication the session extracts one [`SyncPlan`] from the global
//! graph — O(micro-batch), computed once under the read lock — and fans
//! it out; each shard thread applies its routed delta, publishes its own
//! [`ShardView`] epoch, and reports back. The fan-out is barriered: the
//! composite [`ShardedSnapshot`] the session installs is pinned at
//! exactly the global watermark the plan was cut at, so readers never
//! observe shards at different epochs.
//!
//! Shard admission is where the parallelism lives: graph appends,
//! adjacency/posting index maintenance, tombstone routing and per-shard
//! snapshot (overlay capture or base fold) all run concurrently across
//! shards. The global graph stays fully authoritative — gates, dedup,
//! trend mining, mapper/predictor retraining and checkpoint encoding are
//! untouched — which is what makes the 1-shard configuration literally
//! the pre-sharding code path, byte for byte.

use nous_graph::shard::{plan_shard_sync, ShardReplica, ShardView, ShardedSnapshot, SyncPlan};
use nous_graph::{DeltaWatermark, DynamicGraph};
use nous_obs::{Gauge, MetricsRegistry};
use std::sync::mpsc;
use std::sync::Arc;

enum Command {
    Sync {
        plan: Arc<SyncPlan>,
        done: mpsc::Sender<(usize, Arc<ShardView>)>,
    },
    Shutdown,
}

struct Worker {
    sender: mpsc::Sender<Command>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// `N` shard admission threads plus the shipped-watermark bookkeeping
/// that keeps their replicas chained onto the global edge log.
pub struct ShardFabric {
    workers: Vec<Worker>,
    /// Global watermark the replicas have been synced to (`None` until
    /// the first sync, which seeds them from scratch).
    shipped: Option<DeltaWatermark>,
    shard_count: usize,
}

impl ShardFabric {
    /// Spawn `shards` admission threads. Per-shard gauges
    /// (`nous_shard_facts{shard=…}`, `nous_shard_snapshot_epoch{shard=…}`)
    /// are registered here — only a sharded session ever creates them, so
    /// the 1-shard `/stats` surface stays byte-identical.
    pub fn new(shards: usize, registry: &MetricsRegistry) -> Self {
        assert!(shards >= 2, "a 1-shard fabric is the plain session path");
        registry
            .gauge("nous_shards", "Configured shard count of this session")
            .set(shards as i64);
        let workers = (0..shards)
            .map(|k| {
                let label = k.to_string();
                let facts: Gauge = registry.gauge_with(
                    "nous_shard_facts",
                    "Live facts admitted to this shard's replica",
                    &[("shard", &label)],
                );
                let epoch: Gauge = registry.gauge_with(
                    "nous_shard_snapshot_epoch",
                    "Snapshot epoch independently published by this shard",
                    &[("shard", &label)],
                );
                let (sender, rx) = mpsc::channel::<Command>();
                let handle = std::thread::Builder::new()
                    .name(format!("nous-shard-{k}"))
                    .spawn(move || {
                        let mut replica = ShardReplica::new(k);
                        while let Ok(cmd) = rx.recv() {
                            match cmd {
                                Command::Sync { plan, done } => {
                                    replica.apply(&plan, &plan.per_shard[k]);
                                    let view = replica.publish();
                                    facts.set(replica.live_edge_count() as i64);
                                    epoch.set(replica.epoch() as i64);
                                    // The session may have been dropped
                                    // mid-sync; a dead receiver just ends
                                    // this barrier early.
                                    let _ = done.send((k, view));
                                }
                                Command::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawn shard admission thread");
                Worker {
                    sender,
                    handle: Some(handle),
                }
            })
            .collect();
        Self {
            workers,
            shipped: None,
            shard_count: shards,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Ship everything that changed in `g` since the last sync to the
    /// shard threads, barrier on their per-shard publications, and return
    /// the composite view pinned at `g`'s current watermark. Callers hold
    /// the global read lock across this, so the plan and the installed
    /// global snapshot describe the same graph state.
    pub fn sync(&mut self, g: &DynamicGraph) -> ShardedSnapshot {
        let plan = Arc::new(plan_shard_sync(g, self.shipped, self.shard_count));
        self.shipped = Some(plan.mark);
        let (done, results) = mpsc::channel();
        for w in &self.workers {
            w.sender
                .send(Command::Sync {
                    plan: plan.clone(),
                    done: done.clone(),
                })
                .expect("shard admission thread alive");
        }
        drop(done);
        let mut views: Vec<Option<Arc<ShardView>>> = vec![None; self.shard_count];
        for (shard, view) in results {
            views[shard] = Some(view);
        }
        ShardedSnapshot::new(
            views
                .into_iter()
                .map(|v| v.expect("every shard reports exactly once per sync"))
                .collect(),
        )
    }
}

impl Drop for ShardFabric {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.sender.send(Command::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_graph::{GraphView, Provenance, VertexId};

    #[test]
    fn fabric_sync_matches_global_graph() {
        let registry = MetricsRegistry::new();
        let mut fabric = ShardFabric::new(3, &registry);
        let mut g = DynamicGraph::new();
        let a = g.ensure_vertex("Apex Robotics");
        let b = g.ensure_vertex("Condor Labs");
        let p = g.intern_predicate("acquired");
        g.add_edge_at(a, p, b, 1, 0.9, Provenance::Curated);
        let snap = fabric.sync(&g);
        assert_eq!(snap.shard_count(), 3);
        assert_eq!(snap.live_edge_count(), 1);
        assert_eq!(snap.vertex_id("Apex Robotics"), Some(VertexId(0)));
        // Incremental window: one more edge, one removal.
        let c = g.ensure_vertex("Delta Corp");
        g.add_edge_at(b, p, c, 2, 0.8, Provenance::Curated);
        g.remove_edge(nous_graph::EdgeId(0));
        let snap = fabric.sync(&g);
        assert_eq!(snap.live_edge_count(), 1);
        let mut postings = Vec::new();
        let _ = snap.for_each_with_pred(p, |id, e| {
            postings.push((id, e.src, e.dst));
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(postings, vec![(nous_graph::EdgeId(1), b, c)]);
        // Per-shard gauges exist exactly because the fabric was created.
        assert_eq!(registry.gauge_value("nous_shards", &[]), Some(3));
        let total: i64 = (0..3)
            .map(|k| {
                registry
                    .gauge_value("nous_shard_facts", &[("shard", &k.to_string())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total, 1);
    }
}
