//! The fused dynamic knowledge graph.
//!
//! [`KnowledgeGraph`] owns the property graph plus the per-entity state the
//! mapping and QA layers need: alias tables (gazetteer + disambiguator),
//! per-entity bag-of-words text (for context similarity and LDA), the
//! predicate mapper and the link predictor. It is the object Figure 2's
//! drone graph is an instance of: curated facts (red) loaded from a
//! [`nous_corpus::CuratedKb`] and extracted facts (blue) appended by the
//! ingestion pipeline, each with a confidence.

use crate::revision::{self, RevisionCounters, RevisionPolicy};
use nous_corpus::{CuratedKb, World};
use nous_embed::{BprConfig, LinkPredictor, PredictorMode};
use nous_graph::{Adj, DynamicGraph, GraphView, Provenance, Timestamp, VertexId};
use nous_link::{Disambiguator, EntityRecord, PredicateMapper};
use nous_qa::TopicIndex;
use nous_text::bow::BagOfWords;
use nous_text::ner::{EntityType, Gazetteer};
use nous_topics::{LdaConfig, LdaModel};

/// The NOUS knowledge graph with all per-entity side state.
///
/// Concurrency contract for the two-stage ingestion split: the
/// **gazetteer is the only field the extraction stage reads** (NER typing
/// of candidate mentions), and [`KnowledgeGraph::create_entity`] is its
/// only ingestion-time writer. Everything else (disambiguator, mapper,
/// predictor, entity text, the graph itself) is touched exclusively by
/// the sequential merge stage. This is what lets
/// `IngestPipeline::ingest_batch` fan extraction out over an immutable
/// borrow while keeping graph updates deterministic.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct KnowledgeGraph {
    pub graph: DynamicGraph,
    pub gazetteer: Gazetteer,
    pub disambiguator: Disambiguator,
    pub mapper: PredicateMapper,
    pub predictor: LinkPredictor,
    /// Per-vertex accumulated text (descriptions + neighbourhood terms).
    entity_text: Vec<BagOfWords>,
    /// Raw triples retained for semi-supervised mapper expansion:
    /// `(subject vertex, raw predicate, object vertex)`.
    pending_raw: Vec<(u32, String, u32)>,
    /// Revision behaviour at the admit point (NOUS §3.4). Disabled by
    /// default; lives on the graph (not the pipeline) so WAL replay
    /// re-derives the same tombstones from a restored checkpoint.
    #[serde(default)]
    revision: RevisionPolicy,
    /// Lifetime revision outcomes (superseded / decayed / reinforced).
    #[serde(default)]
    revision_counters: RevisionCounters,
}

fn entity_type_of(kind: nous_corpus::world::Kind) -> EntityType {
    match kind {
        nous_corpus::world::Kind::Company => EntityType::Organization,
        nous_corpus::world::Kind::Person => EntityType::Person,
        nous_corpus::world::Kind::Location => EntityType::Location,
        nous_corpus::world::Kind::Product => EntityType::Product,
    }
}

impl KnowledgeGraph {
    /// An empty knowledge graph (no curated background).
    pub fn new() -> Self {
        Self {
            graph: DynamicGraph::new(),
            gazetteer: Gazetteer::new(),
            // Context similarity dominates; the popularity prior only
            // breaks ties. On the synthetic corpus mention frequency is
            // uniform by construction, so — unlike Wikipedia-anchored
            // AIDA — the prior carries almost no signal (see E10).
            disambiguator: Disambiguator::new(Vec::new()).with_context_weight(0.95),
            mapper: crate::seeds::seeded_mapper(),
            predictor: LinkPredictor::new(PredictorMode::PerPredicate, BprConfig::default()),
            entity_text: Vec::new(),
            pending_raw: Vec::new(),
            revision: RevisionPolicy::default(),
            revision_counters: RevisionCounters::default(),
        }
    }

    /// The active revision policy.
    pub fn revision_policy(&self) -> &RevisionPolicy {
        &self.revision
    }

    /// Install a revision policy. Takes effect for subsequently admitted
    /// facts; already-live edges are revised lazily as contradicting or
    /// re-asserting facts arrive.
    pub fn set_revision_policy(&mut self, policy: RevisionPolicy) {
        self.revision = policy;
    }

    /// Lifetime revision outcome counts.
    pub fn revision_counters(&self) -> RevisionCounters {
        self.revision_counters
    }

    /// Build from a generated world + curated KB: every entity becomes a
    /// labelled vertex with aliases and description text; every curated
    /// triple becomes a confidence-1.0 red edge at time 0.
    pub fn from_curated(world: &World, kb: &CuratedKb) -> Self {
        let mut kg = Self::new();
        let mut vertex_of = Vec::with_capacity(world.entities.len());
        for e in &world.entities {
            let v = kg.graph.ensure_vertex(&e.name);
            kg.graph.set_label(v, e.kind.label());
            kg.ensure_text_slot(v);
            // The description is the highest-precision context an entity
            // has (its "Wikipedia page" in AIDA terms); weight it above the
            // name terms that curated neighbours will merge in later.
            let desc = BagOfWords::from_text(&e.description);
            for _ in 0..3 {
                kg.entity_text[v.index()].merge(&desc);
            }
            let ty = entity_type_of(e.kind);
            for a in &e.aliases {
                kg.gazetteer.insert(a, ty);
            }
            kg.disambiguator.insert(EntityRecord {
                id: v.0,
                name: e.name.clone(),
                aliases: e.aliases.clone(),
                context: kg.entity_text[v.index()].clone(),
                popularity: 0.0,
            });
            vertex_of.push(v);
        }
        for t in &kb.triples {
            let s = vertex_of[t.subject];
            let o = vertex_of[t.object];
            let p = kg.graph.intern_predicate(t.predicate.name());
            kg.graph.add_edge_at(s, p, o, 0, 1.0, Provenance::Curated);
            kg.bump_entity(s, o);
        }
        kg
    }

    fn ensure_text_slot(&mut self, v: VertexId) {
        if v.index() >= self.entity_text.len() {
            self.entity_text.resize_with(v.index() + 1, BagOfWords::new);
        }
    }

    /// Record mutual context between two newly-linked entities: each
    /// gains the other's name terms (the "entity neighborhood in the
    /// knowledge graph" context of §3.3) and a popularity bump.
    fn bump_entity(&mut self, s: VertexId, o: VertexId) {
        self.ensure_text_slot(s);
        self.ensure_text_slot(o);
        let s_name = BagOfWords::from_text(self.graph.vertex_name(s));
        let o_name = BagOfWords::from_text(self.graph.vertex_name(o));
        self.entity_text[s.index()].merge(&o_name);
        self.entity_text[o.index()].merge(&s_name);
        self.disambiguator.update_context(s.0, &o_name, 1.0);
        self.disambiguator.update_context(o.0, &s_name, 1.0);
    }

    /// Create a brand-new entity discovered in text (dynamic KG growth).
    pub fn create_entity(&mut self, name: &str, ty: EntityType) -> VertexId {
        let v = self.graph.ensure_vertex(name);
        self.graph.set_label(v, ty.name());
        self.ensure_text_slot(v);
        self.gazetteer.insert(name, ty);
        self.disambiguator.insert(EntityRecord {
            id: v.0,
            name: name.to_owned(),
            aliases: vec![name.to_owned()],
            context: BagOfWords::new(),
            popularity: 0.0,
        });
        v
    }

    /// Admit an extracted fact into the graph.
    pub fn add_extracted_fact(
        &mut self,
        s: VertexId,
        predicate: &str,
        o: VertexId,
        at: Timestamp,
        confidence: f32,
        doc_id: u64,
    ) -> nous_graph::EdgeId {
        self.add_extracted_fact_with_args(s, predicate, o, at, confidence, doc_id, &[])
    }

    /// Admit an extracted fact carrying its n-ary prepositional arguments
    /// (§3.2: "binary or n-ary relational tuples"). The binary core becomes
    /// the edge; the extra arguments ride along as the `args` property
    /// (`"prep:surface"` strings), queryable from the edge.
    #[allow(clippy::too_many_arguments)]
    pub fn add_extracted_fact_with_args(
        &mut self,
        s: VertexId,
        predicate: &str,
        o: VertexId,
        at: Timestamp,
        confidence: f32,
        doc_id: u64,
        extra_args: &[(String, String)],
    ) -> nous_graph::EdgeId {
        let p = self.graph.intern_predicate(predicate);
        let confidence = self.apply_revision(s, predicate, o, confidence);
        let mut edge =
            nous_graph::Edge::new(s, p, o, at, confidence, Provenance::Extracted { doc_id });
        if !extra_args.is_empty() {
            edge.props.set(
                "args",
                nous_graph::PropValue::List(
                    extra_args
                        .iter()
                        .map(|(prep, text)| format!("{prep}:{text}"))
                        .collect(),
                ),
            );
        }
        let id = self.graph.add_edge(edge);
        self.bump_entity(s, o);
        id
    }

    /// Revision at the admit point (NOUS §3.4): before `(s, predicate, o)`
    /// is appended, reconcile it against the live extracted edges of
    /// `(s, predicate, *)`. Same object → the duplicate is tombstoned and
    /// the new edge carries a saturating *reinforced* confidence.
    /// Different object on a *functional* predicate → the old fact is
    /// superseded: tombstoned, and re-appended at a decayed confidence
    /// only while it stays above the policy floor. Curated edges are
    /// never revised — extracted text cannot overrule the curated KB.
    ///
    /// Returns the confidence the new edge should be appended with.
    /// No-op (returns `confidence` unchanged) while the policy is off.
    fn apply_revision(
        &mut self,
        s: VertexId,
        predicate: &str,
        o: VertexId,
        confidence: f32,
    ) -> f32 {
        if !self.revision.enabled {
            return confidence;
        }
        let Some(p) = self.graph.predicate_id(predicate) else {
            return confidence;
        };
        let functional = self.revision.is_functional(predicate);
        // Snapshot the live candidates first: the loop below mutates the
        // graph, and `find` borrows its indexes.
        let priors: Vec<nous_graph::EdgeId> = self.graph.find(Some(s), Some(p), None);
        let mut admitted = confidence;
        for id in priors {
            let e = self.graph.edge(id);
            if e.provenance.is_curated() {
                continue;
            }
            if e.dst == o {
                // Re-assertion: fold the duplicate into the new edge with
                // one reinforcement step over the better of the two scores.
                admitted =
                    revision::reinforce(admitted.max(e.confidence), self.revision.reinforce_alpha);
                self.graph.remove_edge(id);
                self.revision_counters.reinforced += 1;
            } else if functional {
                // Contradiction: the newer object supersedes the old fact.
                let decayed = revision::decay(e.confidence, self.revision.decay_factor);
                let survivor = if decayed >= self.revision.decay_floor {
                    let mut old = e.clone();
                    old.confidence = decayed;
                    Some(old)
                } else {
                    None
                };
                self.graph.remove_edge(id);
                self.revision_counters.superseded += 1;
                if let Some(old) = survivor {
                    self.graph.add_edge(old);
                    self.revision_counters.decayed += 1;
                }
            }
        }
        admitted
    }

    /// Accumulate additional text evidence for an entity.
    pub fn add_entity_text(&mut self, v: VertexId, text: &BagOfWords) {
        self.ensure_text_slot(v);
        self.entity_text[v.index()].merge(text);
        self.disambiguator.update_context(v.0, text, 0.0);
    }

    /// The entity's accumulated bag-of-words.
    pub fn entity_text(&self, v: VertexId) -> &BagOfWords {
        static EMPTY: std::sync::OnceLock<BagOfWords> = std::sync::OnceLock::new();
        self.entity_text
            .get(v.index())
            .unwrap_or_else(|| EMPTY.get_or_init(BagOfWords::new))
    }

    /// Stash a mapped-entity raw triple for later mapper expansion.
    pub fn stash_raw_triple(&mut self, s: VertexId, raw_pred: &str, o: VertexId) {
        self.pending_raw.push((s.0, raw_pred.to_owned(), o.0));
    }

    pub fn pending_raw_count(&self) -> usize {
        self.pending_raw.len()
    }

    /// Run the semi-supervised mapper expansion (§3.3) against the current
    /// graph state. Returns the number of new rules learned.
    pub fn expand_mapper(&mut self) -> usize {
        let mut known: nous_link::predicate_map::KnownPairs = Default::default();
        for (_, e) in self.graph.iter_edges() {
            known
                .entry((e.src.0, e.dst.0))
                .or_default()
                .push(self.graph.predicate_name(e.pred).to_owned());
        }
        self.mapper.expand_to_fixpoint(&self.pending_raw, &known, 5)
    }

    /// (Re)train the per-predicate link predictor from the current graph.
    pub fn train_predictor(&mut self) {
        let triples: Vec<(String, u32, u32)> = self
            .graph
            .iter_edges()
            .map(|(_, e)| {
                (
                    self.graph.predicate_name(e.pred).to_owned(),
                    e.src.0,
                    e.dst.0,
                )
            })
            .collect();
        self.predictor.fit(self.graph.vertex_count(), &triples);
    }

    /// Train LDA over per-entity text and build the QA topic index (§3.6).
    pub fn build_topic_index(&self, cfg: &LdaConfig) -> TopicIndex {
        let docs: Vec<BagOfWords> = self.entity_text.clone();
        let model = LdaModel::fit(&docs, cfg);
        let mut idx = TopicIndex::new(cfg.topics);
        for (i, doc) in docs.iter().enumerate() {
            if doc.is_empty() {
                continue;
            }
            idx.set(VertexId(i as u32), model.doc_distribution(i).to_vec());
        }
        idx
    }

    /// Serialise the complete system state (graph, aliases, learned
    /// mapping rules, trained predictor, per-entity text) to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Restore a knowledge graph saved with [`KnowledgeGraph::to_json`],
    /// rebuilding the derived indexes serde skips.
    pub fn from_json(json: &str) -> serde_json::Result<KnowledgeGraph> {
        let mut kg: KnowledgeGraph = serde_json::from_str(json)?;
        kg.graph.rebuild_indexes();
        Ok(kg)
    }

    /// Serialise the complete system state serde-free: the graph (via
    /// the lossless compact snapshot), per-entity text, pending raw
    /// triples, gazetteer, disambiguator records and all mapper rules
    /// (seeds *and* learned). This is the checkpoint payload of the
    /// durability stack (`nous-persist`).
    ///
    /// Not encoded: the trained predictor weights —
    /// [`KnowledgeGraph::decode_checkpoint`] retrains from the restored
    /// graph, which is deterministic given the same edges, and the
    /// predictor's `BprConfig` resets to its default.
    pub fn encode_checkpoint(&self) -> Vec<u8> {
        use crate::journal::{entity_type_tag, put_bow};
        use nous_graph::codec;
        let mut buf = Vec::with_capacity(1 << 16);
        buf.extend_from_slice(b"NOUSKG01");
        codec::put_bytes(&mut buf, &nous_graph::snapshot::to_compact(&self.graph));

        codec::put_u32(&mut buf, self.entity_text.len() as u32);
        for bow in &self.entity_text {
            put_bow(&mut buf, bow);
        }

        codec::put_u32(&mut buf, self.pending_raw.len() as u32);
        for (s, raw, o) in &self.pending_raw {
            codec::put_u32(&mut buf, *s);
            codec::put_str(&mut buf, raw);
            codec::put_u32(&mut buf, *o);
        }

        // Gazetteer entries sorted for a deterministic encoding (the
        // backing map iterates in arbitrary order).
        let mut entries: Vec<(&str, EntityType)> = self.gazetteer.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        codec::put_u32(&mut buf, entries.len() as u32);
        for (surface, ty) in entries {
            codec::put_str(&mut buf, surface);
            codec::put_u8(&mut buf, entity_type_tag(ty));
        }

        codec::put_f64(&mut buf, self.disambiguator.context_weight());
        codec::put_u32(&mut buf, self.disambiguator.len() as u32);
        for i in 0..self.disambiguator.len() {
            let rec = self.disambiguator.record(i);
            codec::put_u32(&mut buf, rec.id);
            codec::put_str(&mut buf, &rec.name);
            codec::put_u32(&mut buf, rec.aliases.len() as u32);
            for a in &rec.aliases {
                codec::put_str(&mut buf, a);
            }
            put_bow(&mut buf, &rec.context);
            codec::put_f64(&mut buf, rec.popularity);
        }

        let (min_support, min_precision) = self.mapper.thresholds();
        codec::put_u64(&mut buf, min_support as u64);
        codec::put_f64(&mut buf, min_precision);
        let rules = self.mapper.rules();
        codec::put_u32(&mut buf, rules.len() as u32);
        for (raw, rule) in rules {
            codec::put_str(&mut buf, raw);
            codec::put_str(&mut buf, &rule.ontology);
            codec::put_u8(&mut buf, rule.inverted as u8);
            codec::put_f64(&mut buf, rule.confidence);
            codec::put_u8(&mut buf, rule.seed as u8);
        }

        // Revision policy + lifetime counters. The policy must ride in
        // the checkpoint: WAL replay re-admits facts through
        // `add_extracted_fact_with_args`, so tombstones and decays are
        // re-derived only if the restored graph revises the same way the
        // live one did.
        codec::put_u8(&mut buf, self.revision.enabled as u8);
        codec::put_f64(&mut buf, self.revision.reinforce_alpha as f64);
        codec::put_f64(&mut buf, self.revision.decay_factor as f64);
        codec::put_f64(&mut buf, self.revision.decay_floor as f64);
        codec::put_u32(&mut buf, self.revision.functional.len() as u32);
        for p in &self.revision.functional {
            codec::put_str(&mut buf, p);
        }
        codec::put_u64(&mut buf, self.revision_counters.superseded);
        codec::put_u64(&mut buf, self.revision_counters.decayed);
        codec::put_u64(&mut buf, self.revision_counters.reinforced);
        buf
    }

    /// Restore a knowledge graph from [`KnowledgeGraph::encode_checkpoint`]
    /// bytes, rebuilding the derived state (predictor retrained from the
    /// restored edges).
    pub fn decode_checkpoint(bytes: &[u8]) -> Result<Self, nous_graph::snapshot::SnapshotError> {
        use crate::journal::{entity_type_from_tag, read_bow};
        use nous_graph::codec::Reader;
        use nous_graph::snapshot::SnapshotError;
        let corrupt = |what: &'static str| move |_| SnapshotError::Corrupt(what);
        if bytes.len() < 8 || &bytes[..8] != b"NOUSKG01" {
            return Err(SnapshotError::Corrupt("bad checkpoint magic"));
        }
        let mut r = Reader::new(&bytes[8..]);
        let graph =
            nous_graph::snapshot::from_compact(r.bytes().map_err(corrupt("graph section"))?)?;

        let n = r
            .count(4, "entity text count")
            .map_err(corrupt("entity text count"))?;
        let mut entity_text = Vec::with_capacity(n);
        for _ in 0..n {
            entity_text.push(read_bow(&mut r).map_err(corrupt("entity text bag"))?);
        }

        let n = r
            .count(12, "pending raw count")
            .map_err(corrupt("pending raw count"))?;
        let mut pending_raw = Vec::with_capacity(n);
        for _ in 0..n {
            let s = r.u32().map_err(corrupt("pending raw subject"))?;
            let raw = r
                .str()
                .map_err(corrupt("pending raw predicate"))?
                .to_owned();
            let o = r.u32().map_err(corrupt("pending raw object"))?;
            pending_raw.push((s, raw, o));
        }

        let n = r
            .count(5, "gazetteer count")
            .map_err(corrupt("gazetteer count"))?;
        let mut gazetteer = Gazetteer::new();
        for _ in 0..n {
            let surface = r.str().map_err(corrupt("gazetteer surface"))?;
            let tag = r.u8().map_err(corrupt("gazetteer type"))?;
            let ty = entity_type_from_tag(tag)
                .ok_or(SnapshotError::Corrupt("unknown entity type tag"))?;
            gazetteer.insert(surface, ty);
        }

        let weight = r.f64().map_err(corrupt("context weight"))?;
        let n = r
            .count(20, "disambiguator count")
            .map_err(corrupt("disambiguator count"))?;
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.u32().map_err(corrupt("record id"))?;
            let name = r.str().map_err(corrupt("record name"))?.to_owned();
            let na = r.count(4, "alias count").map_err(corrupt("alias count"))?;
            let mut aliases = Vec::with_capacity(na);
            for _ in 0..na {
                aliases.push(r.str().map_err(corrupt("record alias"))?.to_owned());
            }
            let context = read_bow(&mut r).map_err(corrupt("record context"))?;
            let popularity = r.f64().map_err(corrupt("record popularity"))?;
            records.push(EntityRecord {
                id,
                name,
                aliases,
                context,
                popularity,
            });
        }
        let disambiguator = Disambiguator::new(records).with_context_weight(weight);

        let min_support = r.u64().map_err(corrupt("mapper support"))? as usize;
        let min_precision = r.f64().map_err(corrupt("mapper precision"))?;
        let mut mapper =
            PredicateMapper::bootstrap(&[]).with_thresholds(min_support, min_precision);
        let n = r
            .count(19, "mapper rule count")
            .map_err(corrupt("mapper rule count"))?;
        for _ in 0..n {
            let raw = r.str().map_err(corrupt("rule raw"))?.to_owned();
            let ontology = r.str().map_err(corrupt("rule ontology"))?.to_owned();
            let inverted = r.u8().map_err(corrupt("rule inverted"))? != 0;
            let confidence = r.f64().map_err(corrupt("rule confidence"))?;
            let seed = r.u8().map_err(corrupt("rule seed"))? != 0;
            mapper.insert_rule(
                &raw,
                nous_link::predicate_map::MappingRule {
                    ontology,
                    inverted,
                    confidence,
                    seed,
                },
            );
        }
        let enabled = r.u8().map_err(corrupt("revision enabled"))? != 0;
        let reinforce_alpha = r.f64().map_err(corrupt("revision alpha"))? as f32;
        let decay_factor = r.f64().map_err(corrupt("revision decay factor"))? as f32;
        let decay_floor = r.f64().map_err(corrupt("revision decay floor"))? as f32;
        let n = r
            .count(4, "functional predicate count")
            .map_err(corrupt("functional predicate count"))?;
        let mut functional = Vec::with_capacity(n);
        for _ in 0..n {
            functional.push(r.str().map_err(corrupt("functional predicate"))?.to_owned());
        }
        let revision = RevisionPolicy {
            enabled,
            functional,
            reinforce_alpha,
            decay_factor,
            decay_floor,
        };
        let revision_counters = RevisionCounters {
            superseded: r.u64().map_err(corrupt("superseded count"))?,
            decayed: r.u64().map_err(corrupt("decayed count"))?,
            reinforced: r.u64().map_err(corrupt("reinforced count"))?,
        };
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt("trailing checkpoint bytes"));
        }

        let mut kg = KnowledgeGraph {
            graph,
            gazetteer,
            disambiguator,
            mapper,
            predictor: LinkPredictor::new(PredictorMode::PerPredicate, BprConfig::default()),
            entity_text,
            pending_raw,
            revision,
            revision_counters,
        };
        kg.train_predictor();
        Ok(kg)
    }

    /// Entity summary for "tell me about X" queries (Figure 6): type,
    /// highest-confidence facts, most recent facts, top neighbours.
    pub fn entity_summary(&self, name: &str) -> Option<EntitySummary> {
        entity_summary_view(&self.graph, &self.disambiguator, name)
    }
}

/// [`KnowledgeGraph::entity_summary`] against any [`GraphView`] — the form
/// the lock-free query path calls with a [`nous_graph::FrozenView`] and
/// the snapshot's cloned resolver. Byte-identical to the locked path: each
/// direction's adjacency is normalised to edge-log order before the stable
/// confidence sort, so tie order does not depend on the view's layout.
pub fn entity_summary_view<G: GraphView>(
    g: &G,
    disambiguator: &Disambiguator,
    name: &str,
) -> Option<EntitySummary> {
    let v = g.vertex_id(name).or_else(|| {
        // Fall back to alias resolution with empty context.
        disambiguator
            .resolve(name, &BagOfWords::new(), nous_link::LinkMode::Full)
            .map(|r| VertexId(r.id))
    })?;
    let mut out_adj: Vec<Adj> = Vec::new();
    g.for_each_out(v, |a| out_adj.push(a));
    out_adj.sort_unstable_by_key(|a| a.edge.0);
    let mut in_adj: Vec<Adj> = Vec::new();
    g.for_each_in(v, |a| in_adj.push(a));
    in_adj.sort_unstable_by_key(|a| a.edge.0);
    let mut facts: Vec<(String, f32, Timestamp, bool)> = Vec::new();
    for adj in out_adj {
        let e = g.edge(adj.edge);
        facts.push((
            format!(
                "{} -[{}]-> {}",
                g.vertex_name(v),
                g.predicate_name(adj.pred),
                g.vertex_name(adj.other)
            ),
            e.confidence,
            e.at,
            e.provenance.is_curated(),
        ));
    }
    for adj in in_adj {
        let e = g.edge(adj.edge);
        facts.push((
            format!(
                "{} -[{}]-> {}",
                g.vertex_name(adj.other),
                g.predicate_name(adj.pred),
                g.vertex_name(v)
            ),
            e.confidence,
            e.at,
            e.provenance.is_curated(),
        ));
    }
    facts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(b.2.cmp(&a.2)));
    let mut neighbors = Vec::new();
    g.neighbors_into(v, &mut neighbors);
    Some(EntitySummary {
        name: g.vertex_name(v).to_owned(),
        vertex: v,
        entity_type: g.label(v).map(str::to_owned),
        degree: g.degree(v),
        facts,
        neighbors: neighbors
            .into_iter()
            .filter(|&n| n != v)
            .map(|n| g.vertex_name(n).to_owned())
            .collect(),
    })
}

impl Default for KnowledgeGraph {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of an entity query (Figure 6's "Tell me about DJI").
#[derive(Debug, Clone)]
pub struct EntitySummary {
    pub name: String,
    pub vertex: VertexId,
    pub entity_type: Option<String>,
    pub degree: usize,
    /// `(rendered fact, confidence, timestamp, curated?)`, best-first.
    pub facts: Vec<(String, f32, Timestamp, bool)>,
    pub neighbors: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_corpus::{CuratedKb, Preset, World};

    fn smoke_kg() -> (World, CuratedKb, KnowledgeGraph) {
        let world = World::generate(&Preset::Smoke.world_config());
        let kb = CuratedKb::generate(&world, 7);
        let kg = KnowledgeGraph::from_curated(&world, &kb);
        (world, kb, kg)
    }

    #[test]
    fn curated_load_creates_vertices_and_red_edges() {
        let (world, kb, kg) = smoke_kg();
        assert_eq!(kg.graph.vertex_count(), world.entities.len());
        assert_eq!(kg.graph.edge_count(), kb.len());
        assert_eq!(kg.graph.stats().curated_edges, kb.len());
        // Labels present.
        let v = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        assert_eq!(kg.graph.label(v), Some("Company"));
    }

    #[test]
    fn gazetteer_and_disambiguator_cover_aliases() {
        let (world, _, kg) = smoke_kg();
        let company = &world.entities[world.companies[0]];
        assert!(kg.gazetteer.lookup(&company.aliases[1]).is_some());
        assert!(!kg.disambiguator.candidates(&company.aliases[1]).is_empty());
    }

    #[test]
    fn create_entity_grows_everything() {
        let (_, _, mut kg) = smoke_kg();
        let before = kg.graph.vertex_count();
        let v = kg.create_entity("Brand New Corp", EntityType::Organization);
        assert_eq!(kg.graph.vertex_count(), before + 1);
        assert_eq!(kg.graph.label(v), Some("Organization"));
        assert!(kg.gazetteer.lookup("Brand New Corp").is_some());
        assert!(!kg.disambiguator.candidates("Brand New Corp").is_empty());
    }

    #[test]
    fn extracted_facts_are_blue_and_timestamped() {
        let (world, _, mut kg) = smoke_kg();
        let s = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        let o = kg
            .graph
            .vertex_id(&world.entities[world.companies[1]].name)
            .unwrap();
        let id = kg.add_extracted_fact(s, "acquired", o, 500, 0.8, 42);
        let e = kg.graph.edge(id);
        assert_eq!(e.at, 500);
        assert_eq!(e.provenance, Provenance::Extracted { doc_id: 42 });
        assert_eq!(kg.graph.stats().extracted_edges, 1);
    }

    #[test]
    fn linking_updates_context_for_disambiguation() {
        let (world, _, mut kg) = smoke_kg();
        let s = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        let o = kg
            .graph
            .vertex_id(&world.entities[world.companies[1]].name)
            .unwrap();
        let o_terms = BagOfWords::from_text(kg.graph.vertex_name(o));
        let before = o_terms
            .iter()
            .map(|(t, _)| kg.entity_text(s).count(t))
            .sum::<u32>();
        kg.add_extracted_fact(s, "partneredWith", o, 10, 0.9, 1);
        let after = o_terms
            .iter()
            .map(|(t, _)| kg.entity_text(s).count(t))
            .sum::<u32>();
        assert!(after > before, "subject gains object-name context terms");
    }

    #[test]
    fn mapper_expansion_learns_from_graph() {
        let (world, _, mut kg) = smoke_kg();
        // Create 4 acquired edges, stash matching "buy" raw triples.
        for i in 0..4 {
            let s = kg
                .graph
                .vertex_id(&world.entities[world.companies[i]].name)
                .unwrap();
            let o = kg
                .graph
                .vertex_id(&world.entities[world.companies[i + 4]].name)
                .unwrap();
            kg.add_extracted_fact(s, "acquired", o, 10, 0.9, i as u64);
            kg.stash_raw_triple(s, "buy", o);
        }
        assert!(kg.mapper.map("buy").is_none());
        let added = kg.expand_mapper();
        assert!(added >= 1);
        assert_eq!(kg.mapper.map("buy").unwrap().ontology, "acquired");
    }

    #[test]
    fn predictor_trains_on_curated_graph() {
        let (_, _, mut kg) = smoke_kg();
        kg.train_predictor();
        assert!(kg.predictor.has_model("isLocatedIn"));
        let s = kg.graph.vertex_id("Shenzhen");
        assert!(s.is_some());
    }

    #[test]
    fn topic_index_covers_described_entities() {
        let (world, _, kg) = smoke_kg();
        let idx = kg.build_topic_index(&LdaConfig {
            topics: 6,
            iterations: 30,
            ..Default::default()
        });
        let v = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        assert!(idx.is_assigned(v), "companies have descriptions, so topics");
        let d = idx.get(v);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn checkpoint_roundtrips_full_state() {
        let (world, _, mut kg) = smoke_kg();
        kg.train_predictor();
        // Touch every state section: an extracted fact (graph + entity
        // text + disambiguator context), a minted entity (gazetteer),
        // a stashed raw triple and a learned mapper rule.
        let s = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        let o = kg
            .graph
            .vertex_id(&world.entities[world.companies[1]].name)
            .unwrap();
        kg.add_extracted_fact_with_args(
            s,
            "acquired",
            o,
            77,
            0.8,
            12,
            &[("in".into(), "March".into())],
        );
        kg.create_entity("Checkpoint Test Corp", EntityType::Organization);
        kg.stash_raw_triple(s, "buy", o);
        let bytes = kg.encode_checkpoint();
        let back = KnowledgeGraph::decode_checkpoint(&bytes).unwrap();
        assert_eq!(back.graph.vertex_count(), kg.graph.vertex_count());
        assert_eq!(back.graph.edge_count(), kg.graph.edge_count());
        assert_eq!(back.graph.log_len(), kg.graph.log_len());
        assert_eq!(
            back.graph.stats().extracted_edges,
            kg.graph.stats().extracted_edges
        );
        assert_eq!(back.gazetteer.len(), kg.gazetteer.len());
        assert_eq!(back.disambiguator.len(), kg.disambiguator.len());
        assert_eq!(back.pending_raw_count(), 1);
        assert_eq!(back.mapper.rules().len(), kg.mapper.rules().len());
        assert_eq!(
            back.entity_text(s).iter().count(),
            kg.entity_text(s).iter().count()
        );
        // Predictor was retrained on the same edges: the same predicates
        // clear min-support, so the same models exist.
        kg.train_predictor();
        assert_eq!(
            back.predictor.trained_predicates(),
            kg.predictor.trained_predicates()
        );
        assert!(
            !back.predictor.trained_predicates().is_empty(),
            "curated smoke predicates must clear min-support"
        );
        // The encoding is deterministic, so a second trip is
        // byte-identical — what makes checkpoint files comparable.
        assert_eq!(back.encode_checkpoint(), bytes);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let (_, _, kg) = smoke_kg();
        let bytes = kg.encode_checkpoint();
        assert!(KnowledgeGraph::decode_checkpoint(&bytes[..8]).is_err());
        assert!(KnowledgeGraph::decode_checkpoint(b"WRONGMAGIC").is_err());
        // Flip a byte inside the graph section: its checksum catches it.
        let mut bad = bytes.clone();
        bad[40] ^= 0xFF;
        assert!(KnowledgeGraph::decode_checkpoint(&bad).is_err());
        // Truncation anywhere must error, never panic.
        for cut in [9, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(KnowledgeGraph::decode_checkpoint(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn revision_is_off_by_default() {
        let (world, _, mut kg) = smoke_kg();
        let s = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        let a = kg.graph.vertex_id("Shenzhen").unwrap();
        let b = kg.graph.vertex_id("Austin").unwrap();
        kg.add_extracted_fact(s, "isLocatedIn", a, 10, 0.9, 1);
        kg.add_extracted_fact(s, "isLocatedIn", b, 20, 0.9, 2);
        kg.add_extracted_fact(s, "isLocatedIn", b, 30, 0.9, 3);
        // Pure append: both objects live, the duplicate too.
        let p = kg.graph.predicate_id("isLocatedIn").unwrap();
        assert_eq!(kg.graph.find(Some(s), Some(p), Some(b)).len(), 2);
        assert!(kg.graph.has_triple(s, p, a));
        assert_eq!(kg.revision_counters(), RevisionCounters::default());
    }

    #[test]
    fn revision_supersedes_functional_facts() {
        let (world, _, mut kg) = smoke_kg();
        kg.set_revision_policy(RevisionPolicy::enabled());
        let s = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        let a = kg.graph.vertex_id("Shenzhen").unwrap();
        let b = kg.graph.vertex_id("Austin").unwrap();
        let c = kg.graph.vertex_id("Boston").unwrap();
        let first = kg.add_extracted_fact(s, "isLocatedIn", a, 10, 0.9, 1);
        kg.add_extracted_fact(s, "isLocatedIn", b, 20, 0.9, 2);
        let p = kg.graph.predicate_id("isLocatedIn").unwrap();
        // The old fact is tombstoned; it survives once at decayed score
        // (0.9 * 0.4 = 0.36 >= floor 0.3).
        assert!(!kg.graph.is_live(first));
        let old = kg.graph.find(Some(s), Some(p), Some(a));
        assert_eq!(old.len(), 1);
        assert!((kg.graph.edge(old[0]).confidence - 0.36).abs() < 1e-6);
        assert_eq!(kg.revision_counters().superseded, 1);
        assert_eq!(kg.revision_counters().decayed, 1);
        // A further contradiction pushes it below the floor: gone.
        kg.add_extracted_fact(s, "isLocatedIn", c, 30, 0.9, 3);
        assert!(kg.graph.find(Some(s), Some(p), Some(a)).is_empty());
        assert_eq!(kg.revision_counters().superseded, 3, "b superseded too");
    }

    #[test]
    fn revision_reinforces_duplicates() {
        let (world, _, mut kg) = smoke_kg();
        kg.set_revision_policy(RevisionPolicy::enabled());
        let s = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        let o = kg
            .graph
            .vertex_id(&world.entities[world.companies[1]].name)
            .unwrap();
        kg.add_extracted_fact(s, "acquired", o, 10, 0.6, 1);
        kg.add_extracted_fact(s, "acquired", o, 20, 0.5, 2);
        let p = kg.graph.predicate_id("acquired").unwrap();
        let live = kg.graph.find(Some(s), Some(p), Some(o));
        // One surviving edge at reinforce(max(0.5, 0.6)) = 0.6 + 0.3*0.4.
        assert_eq!(live.len(), 1);
        assert!((kg.graph.edge(live[0]).confidence - 0.72).abs() < 1e-6);
        assert_eq!(kg.revision_counters().reinforced, 1);
        // Repeated re-assertion saturates below 1.0.
        for i in 0..50 {
            kg.add_extracted_fact(s, "acquired", o, 30 + i, 0.5, 3 + i);
        }
        let live = kg.graph.find(Some(s), Some(p), Some(o));
        assert_eq!(live.len(), 1);
        let c = kg.graph.edge(live[0]).confidence;
        assert!((0.0..=1.0).contains(&c) && c > 0.99);
    }

    #[test]
    fn revision_never_touches_curated_edges() {
        let (world, kb, mut kg) = smoke_kg();
        kg.set_revision_policy(RevisionPolicy::enabled());
        // Every company has a curated HQ; contradict one from text.
        let company = &world.entities[world.companies[0]];
        let s = kg.graph.vertex_id(&company.name).unwrap();
        let b = kg.graph.vertex_id("Austin").unwrap();
        let curated_before = kg.graph.stats().curated_edges;
        kg.add_extracted_fact(s, "isLocatedIn", b, 20, 0.9, 2);
        assert_eq!(kg.graph.stats().curated_edges, curated_before);
        assert_eq!(kg.graph.edge_count(), kb.len() + 1);
        assert_eq!(kg.revision_counters().superseded, 0);
    }

    #[test]
    fn checkpoint_carries_revision_state() {
        let (world, _, mut kg) = smoke_kg();
        kg.set_revision_policy(RevisionPolicy {
            enabled: true,
            functional: vec!["isLocatedIn".into(), "hasCeo".into()],
            reinforce_alpha: 0.25,
            decay_factor: 0.5,
            decay_floor: 0.2,
        });
        let s = kg
            .graph
            .vertex_id(&world.entities[world.companies[0]].name)
            .unwrap();
        let a = kg.graph.vertex_id("Shenzhen").unwrap();
        let b = kg.graph.vertex_id("Austin").unwrap();
        kg.add_extracted_fact(s, "isLocatedIn", a, 10, 0.9, 1);
        kg.add_extracted_fact(s, "isLocatedIn", b, 20, 0.9, 2);
        let bytes = kg.encode_checkpoint();
        let back = KnowledgeGraph::decode_checkpoint(&bytes).unwrap();
        assert_eq!(back.revision_policy(), kg.revision_policy());
        assert_eq!(back.revision_counters(), kg.revision_counters());
        assert_eq!(back.encode_checkpoint(), bytes);
    }

    #[test]
    fn entity_summary_reports_facts() {
        let (world, _, kg) = smoke_kg();
        let company = &world.entities[world.companies[0]];
        let s = kg.entity_summary(&company.name).unwrap();
        assert_eq!(s.name, company.name);
        assert_eq!(s.entity_type.as_deref(), Some("Company"));
        assert!(!s.facts.is_empty(), "every company has curated facts");
        assert!(s.facts.iter().all(|(_, c, _, _)| (0.0..=1.0).contains(c)));
        assert!(!s.neighbors.is_empty());
        assert!(kg.entity_summary("Absolutely Unknown XYZ").is_none());
    }

    #[test]
    fn summary_resolves_aliases() {
        let (world, _, kg) = smoke_kg();
        let company = &world.entities[world.companies[0]];
        let via_alias = kg.entity_summary(&company.aliases[1]);
        assert!(
            via_alias.is_some(),
            "alias {} should resolve",
            company.aliases[1]
        );
    }
}
