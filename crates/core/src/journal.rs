//! The ingestion journal hook: the seam between the pipeline's admit
//! point and a durability layer (see `nous-persist`).
//!
//! `nous-core` knows nothing about files or fsync. Instead, the
//! pipeline accepts a pluggable [`IngestJournal`] sink and calls it at
//! exactly the three points a write-ahead log needs to reproduce the
//! graph mutation stream:
//!
//! 1. [`IngestJournal::entity_created`] — a new vertex was minted from
//!    text, in mint order;
//! 2. [`IngestJournal::fact_admitted`] — a fact cleared quality control
//!    and was written to the graph, in admit order (names are logged
//!    *after* any inverted-rule swap, i.e. exactly as stored);
//! 3. [`IngestJournal::document_merged`] — the document's merge
//!    finished, with the per-document [`IngestReport`] delta. This is
//!    the durability boundary: a WAL that flushes here makes the
//!    document the atomic replay unit.
//!
//! Because `DynamicGraph` assigns dense ids in creation order, replaying
//! minted entities in mint order and facts in admit order onto a
//! checkpointed graph reproduces the original vertex/edge ids exactly.

use crate::pipeline::IngestReport;
use nous_graph::codec::{self, DecodeError, Reader};
use nous_text::bow::BagOfWords;
use nous_text::ner::EntityType;

/// Stable one-byte wire tag for an [`EntityType`] (WAL + checkpoint
/// format; never renumber).
pub fn entity_type_tag(ty: EntityType) -> u8 {
    match ty {
        EntityType::Person => 0,
        EntityType::Organization => 1,
        EntityType::Location => 2,
        EntityType::Product => 3,
        EntityType::Other => 4,
    }
}

/// Inverse of [`entity_type_tag`].
pub fn entity_type_from_tag(tag: u8) -> Option<EntityType> {
    Some(match tag {
        0 => EntityType::Person,
        1 => EntityType::Organization,
        2 => EntityType::Location,
        3 => EntityType::Product,
        4 => EntityType::Other,
        _ => return None,
    })
}

/// Encode a bag-of-words as `(term, count)` pairs (BTreeMap iteration
/// order, so the encoding is deterministic).
pub fn put_bow(buf: &mut Vec<u8>, bow: &BagOfWords) {
    codec::put_u32(buf, bow.distinct() as u32);
    for (term, n) in bow.iter() {
        codec::put_str(buf, term);
        codec::put_u32(buf, n);
    }
}

/// Inverse of [`put_bow`].
pub fn read_bow(r: &mut Reader<'_>) -> Result<BagOfWords, DecodeError> {
    let n = r.count(8, "bag-of-words length")?;
    let mut bow = BagOfWords::new();
    for _ in 0..n {
        let term = r.str()?;
        let count = r.u32()?;
        bow.add(term, count);
    }
    Ok(bow)
}

/// One admitted fact, by name (ids are not logged — replay re-resolves
/// names, which is id-stable; see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct AdmittedFact {
    pub subject: String,
    pub predicate: String,
    pub object: String,
    pub at: u64,
    pub confidence: f32,
    pub doc_id: u64,
    /// Prepositional adjuncts: `(preposition, text)` pairs.
    pub extra_args: Vec<(String, String)>,
}

/// A sink observing the pipeline's admit stream. Implementations must
/// be cheap per call; the pipeline invokes them inside the sequential
/// merge stage.
pub trait IngestJournal: Send {
    /// A new entity was minted from text (fires once per new vertex, in
    /// mint order, before any fact referencing it is admitted).
    fn entity_created(&mut self, name: &str, ty: EntityType);
    /// A fact was admitted into the graph.
    fn fact_admitted(&mut self, fact: &AdmittedFact);
    /// A document's merge completed; `delta` is this document's
    /// contribution to the cumulative [`IngestReport`].
    fn document_merged(&mut self, doc_id: u64, delta: &IngestReport);
}
