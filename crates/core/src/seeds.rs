//! Bootstrap seeds for predicate mapping.
//!
//! §3.3: "we bootstrap each predicate model with 5-10 seed examples and
//! expand the set of training examples for each predicate in a
//! semi-supervised fashion". One high-precision surface form per ontology
//! predicate is seeded here; synonyms (`buy`, `purchase`, `headquarter_in`,
//! …) are left for the distant-supervision expansion to learn — that
//! learning is what experiment E11's mapper-quality numbers measure.

use nous_link::PredicateMapper;

/// `(raw OpenIE predicate, ontology predicate, inverted)` seed rules.
pub const SEED_RULES: &[(&str, &str, bool)] = &[
    ("base_in", "isLocatedIn", false),
    ("found", "foundedBy", true),
    ("manufacture", "manufactures", false),
    ("acquire", "acquired", false),
    ("invest_in", "investedIn", false),
    ("compete_with", "competesWith", false),
    ("partner_with", "partneredWith", false),
    ("supply_to", "suppliesTo", false),
    ("deploy", "deploys", false),
];

/// A mapper bootstrapped with the seed rules.
pub fn seeded_mapper() -> PredicateMapper {
    PredicateMapper::bootstrap(SEED_RULES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nous_corpus::{OntologyPredicate, ONTOLOGY};

    #[test]
    fn every_ontology_predicate_has_a_seed() {
        for p in ONTOLOGY {
            assert!(
                SEED_RULES.iter().any(|(_, onto, _)| *onto == p.name()),
                "no seed for {}",
                p.name()
            );
        }
    }

    #[test]
    fn seeds_are_valid_surface_forms() {
        for (raw, onto, inv) in SEED_RULES {
            let p = OntologyPredicate::from_name(onto).expect("known predicate");
            assert!(
                p.surface_forms().iter().any(|(s, i)| s == raw && i == inv),
                "seed {raw} is not a surface form of {onto}"
            );
        }
    }

    #[test]
    fn seeded_mapper_maps_seeds_only() {
        let m = seeded_mapper();
        assert_eq!(m.map("acquire").unwrap().ontology, "acquired");
        assert!(m.map("found").unwrap().inverted);
        assert!(
            m.map("buy").is_none(),
            "synonyms must be learned, not seeded"
        );
    }
}
