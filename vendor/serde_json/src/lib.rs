//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` [`Content`] tree as JSON text. Implements the API subset this
//! workspace calls — `to_string[_pretty]`, `to_vec`, `from_str`,
//! `from_slice`, and a [`Value`] with indexing and `as_*` accessors.
//! Vendored so the build never needs a network registry; see
//! `vendor/README.md`.

use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// JSON error (message-only; no byte offsets).
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ write

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_content(
    c: &Content,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error("cannot serialize non-finite float".into()));
            }
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{:.1}", v);
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Content::Str(s) => write_str(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(item, out, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                match k {
                    Content::Str(s) => write_str(s, out),
                    // JSON keys must be strings; stringify scalar keys
                    // (integer-keyed maps round-trip through parse).
                    Content::I64(n) => write_str(&n.to_string(), out),
                    Content::U64(n) => write_str(&n.to_string(), out),
                    other => {
                        return Err(Error(format!("map key must be scalar, got {other:?}")))
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, level + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * level));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------- read

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let content = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    Ok(T::from_content(&content)?)
}

pub fn from_slice<T: Deserialize>(s: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(s).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                c as char, self.i
            )))
        }
    }

    fn lit(&mut self, word: &str) -> bool {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.ws();
        match self.b.get(self.i) {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.lit("null") => Ok(Content::Null),
            Some(b't') if self.lit("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.lit("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.i))),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    entries.push((Content::Str(key), value));
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.i))),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.i += 4;
                            // Surrogate pairs: peek a following \uXXXX.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.b.get(self.i + 1..self.i + 3).map(|s| s == b"\\u")
                                    == Some(true)
                                {
                                    let lo_hex = self
                                        .b
                                        .get(self.i + 3..self.i + 7)
                                        .ok_or_else(|| Error("truncated surrogate".into()))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| Error("bad surrogate".into()))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error("bad surrogate".into()))?;
                                    self.i += 6;
                                    let c =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    char::from_u32(0xFFFD)
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| Error("invalid codepoint".into()))?);
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through untouched.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

// ------------------------------------------------------------------ Value

/// Generic JSON document, with the indexing/accessor subset used here.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_num_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
value_num_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    if *n >= 0.0 {
                        Content::U64(*n as u64)
                    } else {
                        Content::I64(*n as i64)
                    }
                } else {
                    Content::F64(*n)
                }
            }
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(m) => Content::Map(
                m.iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> std::result::Result<Self, DeError> {
        Ok(match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(*v as f64),
            Content::U64(v) => Value::Number(*v as f64),
            Content::F64(v) => Value::Number(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::from_content)
                    .collect::<std::result::Result<_, _>>()?,
            ),
            Content::Map(entries) => {
                let mut m = BTreeMap::new();
                for (k, v) in entries {
                    let key = match k {
                        Content::Str(s) => s.clone(),
                        Content::I64(n) => n.to_string(),
                        Content::U64(n) => n.to_string(),
                        other => {
                            return Err(DeError::custom(format!("bad map key {other:?}")))
                        }
                    };
                    m.insert(key, Value::from_content(v)?);
                }
                Value::Object(m)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_nesting() {
        let v: Vec<(String, Option<u64>, f64)> =
            vec![("a\"b\\c\n".into(), Some(7), 1.5), ("π".into(), None, -2.0)];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, Option<u64>, f64)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn value_indexing() {
        let doc: Value =
            from_str(r#"{"nodes": [{"id": 3}, {"id": 4}], "name": "x", "ok": true}"#).unwrap();
        assert_eq!(doc["nodes"].as_array().unwrap().len(), 2);
        assert_eq!(doc["nodes"][1]["id"].as_u64(), Some(4));
        assert_eq!(doc["name"].as_str(), Some("x"));
        assert_eq!(doc["ok"].as_bool(), Some(true));
        assert!(doc["missing"].is_null());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<u32>("\"x\"").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
    }
}
