//! Offline stand-in for `crossbeam`, providing `crossbeam::thread::scope`
//! on top of `std::thread::scope` (stable since 1.63). Only the scoped
//! spawn/join subset this workspace uses is implemented. Vendored so the
//! build never needs a network registry; see `vendor/README.md`.

pub mod thread {
    use std::any::Any;

    /// Wrapper over [`std::thread::Scope`] matching crossbeam's API: the
    /// spawn closure receives the scope again as its argument.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all are joined before return. A panicking child panics
    /// the scope (std semantics), so `Err` is never produced — callers'
    /// `.expect` unwraps stay satisfied.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u32, 2, 3, 4];
        let sums = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7]);
    }
}
