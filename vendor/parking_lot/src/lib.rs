//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//! API subset used by this workspace: `Mutex::lock`, `RwLock::read` /
//! `write` / `try_read`, all returning guards directly (no `Result`).
//! Like parking_lot, locks here do not poison: a panic while holding a
//! guard leaves the lock usable (`PoisonError::into_inner`). Vendored so
//! the build never needs a network registry; see `vendor/README.md`.

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locks_do_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);

        let rw = RwLock::new(5u32);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.try_read().unwrap(), 6);
    }
}
