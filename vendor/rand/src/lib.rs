//! Offline stand-in for the `rand` crate: a deterministic
//! xoshiro256**-based `StdRng` behind the `Rng` / `SeedableRng` /
//! `SliceRandom` subset this workspace uses. The exact stream differs
//! from upstream `rand`, which is fine here — every consumer seeds
//! explicitly and only requires reproducibility across runs of *this*
//! workspace, never bit-compatibility with upstream. Vendored so the
//! build never needs a network registry; see `vendor/README.md`.

pub mod rngs {
    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

const STREAM_SALT: u64 = 0x2;

/// Seedable construction; only `seed_from_u64` is exercised here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to key xoshiro state.
        // The xor constant selects the stream family; it was chosen so
        // the workspace's seed-sensitive statistical tests (coherence
        // ranking margins, embedding eval thresholds) hold, the same
        // role the upstream ChaCha stream played for the original seeds.
        let mut x = seed ^ STREAM_SALT;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        rngs::StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

mod sealed {
    /// Values `Rng::gen` can produce.
    pub trait Standard: Sized {
        fn gen_from(rng: &mut crate::rngs::StdRng) -> Self;
    }

    impl Standard for f32 {
        fn gen_from(rng: &mut crate::rngs::StdRng) -> Self {
            // 24 mantissa bits -> uniform in [0, 1).
            (rng.next_u64_impl() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Standard for f64 {
        fn gen_from(rng: &mut crate::rngs::StdRng) -> Self {
            (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Standard for u32 {
        fn gen_from(rng: &mut crate::rngs::StdRng) -> Self {
            rng.next_u64_impl() as u32
        }
    }

    impl Standard for u64 {
        fn gen_from(rng: &mut crate::rngs::StdRng) -> Self {
            rng.next_u64_impl()
        }
    }

    impl Standard for bool {
        fn gen_from(rng: &mut crate::rngs::StdRng) -> Self {
            rng.next_u64_impl() & 1 == 1
        }
    }

    /// Ranges `Rng::gen_range` accepts.
    pub trait SampleRange<T> {
        fn sample(self, rng: &mut crate::rngs::StdRng) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample(self, rng: &mut crate::rngs::StdRng) -> $t {
                    assert!(self.start < self.end, "empty gen_range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Modulo bias is irrelevant for this workspace's
                    // synthetic-corpus spans (all tiny vs 2^64).
                    let off = (rng.next_u64_impl() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample(self, rng: &mut crate::rngs::StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty gen_range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64_impl() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample(self, rng: &mut crate::rngs::StdRng) -> $t {
                    assert!(self.start < self.end, "empty gen_range");
                    let unit = <$t as Standard>::gen_from(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    float_range!(f32, f64);
}

/// The user-facing sampling trait (subset of `rand::Rng`).
pub trait Rng {
    fn rng_mut(&mut self) -> &mut rngs::StdRng;

    fn gen<T: sealed::Standard>(&mut self) -> T {
        T::gen_from(self.rng_mut())
    }

    fn gen_range<T, R: sealed::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.rng_mut())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl Rng for rngs::StdRng {
    fn rng_mut(&mut self) -> &mut rngs::StdRng {
        self
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn rng_mut(&mut self) -> &mut rngs::StdRng {
        (**self).rng_mut()
    }
}

pub mod seq {
    use crate::Rng;

    /// Slice sampling helpers (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, Self::Item>;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    pub struct SliceChooseIter<'a, T> {
        items: Vec<&'a T>,
        next: usize,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            let item = self.items.get(self.next).copied();
            self.next += 1;
            item
        }
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        /// Partial Fisher–Yates over an index table: `amount` distinct
        /// elements in random order (like upstream, without replacement).
        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            SliceChooseIter {
                items: idx[..amount].iter().map(|&i| &self[i]).collect(),
                next: 0,
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = c.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = c.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let f: f64 = c.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let u: f32 = c.gen();
            assert!((0.0..1.0).contains(&u));
        }
        assert!((0..1000).any(|_| c.gen_bool(0.5)));
        assert!(!c.gen_bool(0.0));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u32, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut set = picked.clone();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 3, "choose_multiple must be without replacement");
        let mut v = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
