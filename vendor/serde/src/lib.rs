//! Offline stand-in for `serde`: a tree-based serialization data model.
//!
//! Instead of upstream serde's visitor architecture, [`Serialize`] lowers
//! a value into one [`Content`] tree and [`Deserialize`] rebuilds it from
//! one — all this workspace needs, since its only format is the vendored
//! `serde_json` (which renders and parses `Content`). The derive macros
//! (`serde_derive`, re-exported under the `derive` feature) target these
//! traits, honouring the `#[serde(skip)]` / `#[serde(default)]` field
//! attributes used in this repository. Vendored so the build never needs
//! a network registry; see `vendor/README.md`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing tree every value serializes through.
///
/// Structs become `Map` (field-name keys), enum variants are externally
/// tagged (`Str` for unit variants, single-entry `Map` otherwise),
/// newtype structs are transparent — the serde conventions, so the JSON
/// this produces looks like upstream's.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path-less message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Field lookup in a struct `Map` (linear: structs here are small).
pub fn __find<'a>(map: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    map.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
        .map(|(_, v)| v)
}

/// Externally-tagged enum access: `Str` tag or single-entry map.
pub fn __variant(c: &Content) -> Option<(&str, &Content)> {
    match c.as_map() {
        Some([(Content::Str(k), v)]) => Some((k.as_str(), v)),
        _ => None,
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Content::I64(*self as i64)
                } else {
                    Content::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let out = match c {
                    Content::I64(v) => <$t>::try_from(*v).ok(),
                    Content::U64(v) => <$t>::try_from(*v).ok(),
                    Content::F64(v) if v.fract() == 0.0 => <$t>::try_from(*v as i64).ok(),
                    // Integer-keyed maps arrive with stringified keys.
                    Content::Str(s) => s.parse::<$t>().ok(),
                    _ => None,
                };
                out.ok_or_else(|| DeError::custom(format!(
                    "expected {}, got {c:?}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    _ => Err(DeError::custom(format!(
                        "expected {}, got {c:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::custom(format!("expected bool, got {c:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom(format!("expected string, got {c:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

/// Upstream serde admits `&'static str` fields through `'de: 'static`
/// borrowing. This tree model owns its data, so the stand-in interns the
/// string instead (leaks once per distinct string — these are tiny
/// domain labels, not bulk data).
impl Deserialize for &'static str {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
        match c {
            Content::Str(s) => {
                let mut tab = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
                match tab.get(s.as_str()) {
                    Some(hit) => Ok(hit),
                    None => {
                        let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
                        tab.insert(leaked);
                        Ok(leaked)
                    }
                }
            }
            _ => Err(DeError::custom(format!("expected string, got {c:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom(format!("expected char, got {c:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let v: Vec<T> = Deserialize::from_content(c)?;
        <[T; N]>::try_from(v)
            .map_err(|v| DeError::custom(format!("expected {N}-element array, got {}", v.len())))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c
                    .as_seq()
                    .ok_or_else(|| DeError::custom(format!("expected tuple, got {c:?}")))?;
                Ok(($($t::from_content(
                    s.get($n)
                        .ok_or_else(|| DeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: Serialize + Ord,
    V: Serialize,
{
    fn to_content(&self) -> Content {
        // Deterministic key order so snapshots are byte-stable.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {c:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {c:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T, S> Serialize for std::collections::HashSet<T, S>
where
    T: Serialize + Ord,
{
    fn to_content(&self) -> Content {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Content::Seq(items.into_iter().map(Serialize::to_content).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {c:?}")))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}
