//! Offline stand-in for `proptest`: deterministic randomized testing
//! without shrinking. Implements the subset this workspace's property
//! tests use — `proptest!` with optional `#![proptest_config(...)]`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, integer/float
//! range strategies, tuples, `prop::collection::vec`, `any::<bool>()`,
//! and string strategies from a small regex subset (`[a-z]`, groups,
//! `?`/`{m,n}` repetition, `\PC` for printable chars). Failing cases
//! report the generated seed; there is no shrinking, so failures print
//! the full case index instead. Vendored so the build never needs a
//! network registry; see `vendor/README.md`.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    float_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// `Just`-style constant strategy (also covers owned samples).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// String literals are regex-subset generators, as in real proptest.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            let nodes = crate::string::parse(self)
                .unwrap_or_else(|e| panic!("bad string strategy {self:?}: {e}"));
            crate::string::generate(&nodes, rng)
        }
    }
}

pub mod string {
    //! Tiny regex-subset parser and generator for string strategies.

    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::Rng;

    #[derive(Debug, Clone)]
    pub enum Node {
        Lit(char),
        /// Inclusive character ranges, e.g. `[A-Za-z0-9 ]`.
        Class(Vec<(char, char)>),
        /// `\PC`: any printable (non-control) character.
        AnyPrintable,
        Group(Vec<(Node, Rep)>),
    }

    #[derive(Debug, Clone, Copy)]
    pub struct Rep {
        pub min: usize,
        pub max: usize,
    }

    const ONCE: Rep = Rep { min: 1, max: 1 };

    pub fn parse(pattern: &str) -> Result<Vec<(Node, Rep)>, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let (nodes, consumed) = parse_seq(&chars, 0, None)?;
        if consumed != chars.len() {
            return Err(format!("unexpected `)` at {consumed}"));
        }
        Ok(nodes)
    }

    fn parse_seq(
        chars: &[char],
        mut i: usize,
        until: Option<char>,
    ) -> Result<(Vec<(Node, Rep)>, usize), String> {
        let mut out = Vec::new();
        while i < chars.len() {
            if Some(chars[i]) == until {
                return Ok((out, i));
            }
            let node = match chars[i] {
                '\\' => {
                    // Only `\PC` (printable) plus escaped literals.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Node::AnyPrintable
                    } else {
                        let c = *chars
                            .get(i + 1)
                            .ok_or_else(|| "dangling escape".to_string())?;
                        i += 2;
                        Node::Lit(c)
                    }
                }
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if chars.get(i + 1) == Some(&'-')
                            && i + 2 < chars.len()
                            && chars[i + 2] != ']'
                        {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    if i >= chars.len() {
                        return Err("unterminated class".into());
                    }
                    i += 1; // closing ]
                    Node::Class(ranges)
                }
                '(' => {
                    let (inner, end) = parse_seq(chars, i + 1, Some(')'))?;
                    if chars.get(end) != Some(&')') {
                        return Err("unterminated group".into());
                    }
                    i = end + 1;
                    Node::Group(inner)
                }
                c => {
                    i += 1;
                    Node::Lit(c)
                }
            };
            let rep = match chars.get(i) {
                Some('?') => {
                    i += 1;
                    Rep { min: 0, max: 1 }
                }
                Some('*') => {
                    i += 1;
                    Rep { min: 0, max: 8 }
                }
                Some('+') => {
                    i += 1;
                    Rep { min: 1, max: 8 }
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or_else(|| "unterminated repetition".to_string())?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse::<usize>().map_err(|e| e.to_string())?,
                            hi.trim().parse::<usize>().map_err(|e| e.to_string())?,
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().map_err(|e| e.to_string())?;
                            (n, n)
                        }
                    };
                    Rep { min: lo, max: hi }
                }
                _ => ONCE,
            };
            out.push((node, rep));
        }
        match until {
            None => Ok((out, i)),
            Some(c) => Err(format!("expected `{c}`")),
        }
    }

    /// Printable palette for `\PC`: mostly ASCII, some multi-byte to
    /// exercise UTF-8 handling in tokenizers.
    const EXOTIC: &[char] = &['é', 'ß', 'Ω', '中', '←', '🦀', 'ñ', '—'];

    pub fn generate(nodes: &[(Node, Rep)], rng: &mut StdRng) -> String {
        let mut out = String::new();
        emit(nodes, rng, &mut out);
        out
    }

    fn emit(nodes: &[(Node, Rep)], rng: &mut StdRng, out: &mut String) {
        for (node, rep) in nodes {
            let n = rng.gen_range(rep.min..=rep.max);
            for _ in 0..n {
                match node {
                    Node::Lit(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        let span = hi as u32 - lo as u32 + 1;
                        let c = char::from_u32(lo as u32 + rng.gen_range(0..span))
                            .unwrap_or(lo);
                        out.push(c);
                    }
                    Node::AnyPrintable => {
                        if rng.gen_bool(0.08) {
                            out.push(*EXOTIC.choose(rng).expect("non-empty"));
                        } else {
                            out.push(char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap());
                        }
                    }
                    Node::Group(inner) => emit(inner, rng, out),
                }
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Accepted size arguments for [`vec`]: a fixed count or a range.
    pub struct SizeRange {
        min: usize,
        /// Exclusive, as in `0..200`.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.min..self.size.max.max(self.size.min + 1));
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u64>() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
        /// `prop_assume!` miss: resample without counting the case.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Run `f` for the configured number of cases. Deterministic:
        /// the per-case RNG is seeded from the test name and case index,
        /// so a reported failing case replays exactly.
        pub fn run(
            &mut self,
            mut f: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        ) {
            let name_seed = self
                .name
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                });
            let mut rejects = 0u32;
            let max_rejects = self.config.cases.saturating_mul(20).max(1000);
            let mut case = 0u32;
            let mut attempt = 0u64;
            while case < self.config.cases {
                let seed = name_seed ^ (attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                attempt += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                match f(&mut rng) {
                    Ok(()) => case += 1,
                    Err(TestCaseError::Reject) => {
                        rejects += 1;
                        if rejects > max_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejects})",
                                self.name
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case} (seed {seed:#x}): {msg}",
                            self.name
                        );
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                #[allow(unused_parens)]
                runner.run(|__proptest_rng| {
                    let ($($arg),*) = (
                        $($crate::strategy::Strategy::sample(&($strat), __proptest_rng)),*
                    );
                    let mut __proptest_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __proptest_case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec((0u8..20, 0u8..4), 0..50), k in 1usize..5) {
            prop_assert!(xs.len() < 50);
            for &(a, b) in &xs {
                prop_assert!(a < 20 && b < 4);
            }
            prop_assert!(k >= 1 && k < 5);
        }

        #[test]
        fn string_strategies_match_shape(name in "[A-Z][a-z]{2,8}", free in "\\PC{0,40}") {
            prop_assert!(name.len() >= 3);
            prop_assert!(name.chars().next().unwrap().is_ascii_uppercase());
            prop_assert!(free.chars().count() <= 40);
            prop_assert!(free.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn optional_groups(s in "[A-Z][a-z]{2,4}( [A-Z][a-z]{2,4})?") {
            let words: Vec<&str> = s.split(' ').collect();
            prop_assert!(words.len() == 1 || words.len() == 2, "got {s:?}");
        }

        #[test]
        fn assume_rejects(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        let mut runner = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::with_cases(8),
            "always_fails",
        );
        runner.run(|_| Err(crate::test_runner::TestCaseError::fail("boom")));
    }
}
