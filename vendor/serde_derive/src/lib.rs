//! Offline derive macros for the vendored `serde` stand-in.
//!
//! Upstream `serde_derive` depends on `syn`/`quote`, which are not
//! available offline, so this crate parses the stringified derive input
//! with a small hand-rolled scanner and emits impls of the vendored
//! tree-model traits (`Serialize::to_content` / `Deserialize::from_content`).
//! Supported shapes — exactly what this workspace derives: non-generic
//! structs (named, tuple/newtype, unit) and enums (unit, tuple, struct
//! variants), with the `#[serde(skip)]` and `#[serde(default)]` field
//! attributes. Anything else produces a `compile_error!` naming the gap.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(&input.to_string(), Dir::Ser)
        .unwrap_or_else(err_tokens)
        .parse()
        .expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(&input.to_string(), Dir::De)
        .unwrap_or_else(err_tokens)
        .parse()
        .expect("serde_derive generated invalid Rust")
}

fn err_tokens(msg: String) -> String {
    format!("compile_error!({msg:?});")
}

#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Ser,
    De,
}

struct Field {
    name: String, // empty for tuple fields
    ty: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------- scanner

/// `TokenStream::to_string` renders doc comments as literal `///` /
/// `/** */` comments; strip every comment (string-literal aware) so the
/// scanner only sees code.
fn strip_comments(s: &str) -> String {
    let b: Vec<char> = s.chars().collect();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            '"' => {
                out.push('"');
                i += 1;
                while i < b.len() {
                    out.push(b[i]);
                    match b[i] {
                        '\\' => {
                            if i + 1 < b.len() {
                                out.push(b[i + 1]);
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.push(' ');
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.push(' ');
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

struct P {
    b: Vec<char>,
    i: usize,
}

impl P {
    fn new(s: &str) -> Self {
        P {
            b: s.chars().collect(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }

    fn ident(&mut self) -> Option<String> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && (self.b[self.i].is_alphanumeric() || self.b[self.i] == '_')
        {
            self.i += 1;
        }
        if self.i == start {
            None
        } else {
            Some(self.b[start..self.i].iter().collect())
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.ws();
        let save = self.i;
        match self.ident() {
            Some(w) if w == kw => true,
            _ => {
                self.i = save;
                false
            }
        }
    }

    /// Skip a double-quoted string literal starting at `self.i`.
    fn skip_string(&mut self) {
        debug_assert_eq!(self.b[self.i], '"');
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                '\\' => self.i += 2,
                '"' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// At `open`: consume the balanced group, returning the inner text.
    fn balanced(&mut self, open: char, close: char) -> String {
        assert_eq!(self.peek(), Some(open), "expected {open}");
        self.i += 1;
        let start = self.i;
        let mut depth = 1usize;
        while self.i < self.b.len() {
            match self.b[self.i] {
                '"' => self.skip_string(),
                c if c == open => {
                    depth += 1;
                    self.i += 1;
                }
                c if c == close => {
                    depth -= 1;
                    self.i += 1;
                    if depth == 0 {
                        return self.b[start..self.i - 1].iter().collect();
                    }
                }
                _ => self.i += 1,
            }
        }
        panic!("unbalanced {open}{close} in derive input");
    }

    /// Consume leading `#[...]` attributes, returning each one's inner text.
    fn attrs(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        while self.eat('#') {
            out.push(self.balanced('[', ']'));
        }
        out
    }

    fn skip_vis(&mut self) {
        if self.eat_kw("pub") && self.peek() == Some('(') {
            self.balanced('(', ')');
        }
    }

    /// Read a type expression up to a top-level `,` (or end of input).
    fn ty(&mut self) -> String {
        self.ws();
        let start = self.i;
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.i < self.b.len() {
            match self.b[self.i] {
                '"' => {
                    self.skip_string();
                    continue;
                }
                '<' => angle += 1,
                '>' => angle -= 1,
                '(' => paren += 1,
                ')' => paren -= 1,
                '[' => bracket += 1,
                ']' => bracket -= 1,
                ',' if angle == 0 && paren == 0 && bracket == 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        self.b[start..self.i].iter().collect::<String>().trim().to_owned()
    }
}

fn serde_attr(attrs: &[String], word: &str) -> bool {
    attrs.iter().any(|a| {
        let t = a.trim_start();
        t.starts_with("serde")
            && t[5..]
                .trim_start()
                .trim_start_matches('(')
                .split(|c: char| c == ',' || c == ')' || c.is_whitespace())
                .any(|w| w.trim() == word)
    })
}

fn parse_named_fields(inner: &str) -> Result<Vec<Field>, String> {
    let mut p = P::new(inner);
    let mut out = Vec::new();
    while !p.at_end() {
        let attrs = p.attrs();
        if p.at_end() {
            break;
        }
        p.skip_vis();
        let name = p
            .ident()
            .ok_or_else(|| "expected field name".to_string())?;
        if !p.eat(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        let ty = p.ty();
        out.push(Field {
            name,
            ty,
            skip: serde_attr(&attrs, "skip"),
            default: serde_attr(&attrs, "default"),
        });
        p.eat(',');
    }
    Ok(out)
}

fn parse_tuple_fields(inner: &str) -> Result<Vec<Field>, String> {
    let mut p = P::new(inner);
    let mut out = Vec::new();
    while !p.at_end() {
        let attrs = p.attrs();
        if p.at_end() {
            break;
        }
        p.skip_vis();
        let ty = p.ty();
        if ty.is_empty() {
            break;
        }
        out.push(Field {
            name: String::new(),
            ty,
            skip: serde_attr(&attrs, "skip"),
            default: serde_attr(&attrs, "default"),
        });
        p.eat(',');
    }
    Ok(out)
}

fn parse_variants(inner: &str) -> Result<Vec<Variant>, String> {
    let mut p = P::new(inner);
    let mut out = Vec::new();
    while !p.at_end() {
        p.attrs();
        if p.at_end() {
            break;
        }
        let name = p
            .ident()
            .ok_or_else(|| "expected variant name".to_string())?;
        let shape = match p.peek() {
            Some('{') => Shape::Named(parse_named_fields(&p.balanced('{', '}'))?),
            Some('(') => Shape::Tuple(parse_tuple_fields(&p.balanced('(', ')'))?),
            _ => Shape::Unit,
        };
        if p.eat('=') {
            // Explicit discriminant: skip the expression.
            p.ty();
        }
        p.eat(',');
        out.push(Variant { name, shape });
    }
    Ok(out)
}

// ------------------------------------------------------------- generation

fn expand(input: &str, dir: Dir) -> Result<String, String> {
    let input = strip_comments(input);
    let mut p = P::new(&input);
    p.attrs();
    p.skip_vis();
    let kind = if p.eat_kw("struct") {
        "struct"
    } else if p.eat_kw("enum") {
        "enum"
    } else {
        let head: String = input.chars().take(160).collect();
        return Err(format!(
            "serde_derive stub supports only structs and enums; input began: {head:?}"
        ));
    };
    let name = p.ident().ok_or_else(|| "expected type name".to_string())?;
    // Lifetime-only generics are supported (borrowed export structs);
    // type parameters are not — nothing in this workspace derives them.
    let mut generics = String::new();
    if p.peek() == Some('<') {
        let inner = p.balanced('<', '>');
        let params: Vec<&str> = inner.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        if params.iter().any(|prm| !prm.starts_with('\'')) {
            return Err(format!(
                "serde_derive stub cannot derive for type-generic `{name}`"
            ));
        }
        if dir == Dir::De {
            return Err(format!(
                "serde_derive stub cannot derive Deserialize for borrowing type `{name}`"
            ));
        }
        generics = format!("<{}>", params.join(", "));
    }
    if kind == "struct" {
        match p.peek() {
            Some('{') => {
                let fields = parse_named_fields(&p.balanced('{', '}'))?;
                Ok(match dir {
                    Dir::Ser => gen_struct_ser(&name, &generics, &fields),
                    Dir::De => gen_struct_de(&name, &fields),
                })
            }
            Some('(') => {
                let fields = parse_tuple_fields(&p.balanced('(', ')'))?;
                Ok(match dir {
                    Dir::Ser => gen_tuple_ser(&name, &generics, &fields),
                    Dir::De => gen_tuple_de(&name, &fields),
                })
            }
            _ => Ok(match dir {
                Dir::Ser => format!(
                    "impl ::serde::Serialize for {name} {{ fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Null }} }}"
                ),
                Dir::De => format!(
                    "impl ::serde::Deserialize for {name} {{ fn from_content(_c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ ::std::result::Result::Ok({name}) }} }}"
                ),
            }),
        }
    } else {
        let variants = parse_variants(&p.balanced('{', '}'))?;
        Ok(match dir {
            Dir::Ser => gen_enum_ser(&name, &generics, &variants),
            Dir::De => gen_enum_de(&name, &variants),
        })
    }
}

fn gen_struct_ser(name: &str, generics: &str, fields: &[Field]) -> String {
    let mut body = String::from(
        "let mut m: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n",
    );
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "m.push((::serde::Content::Str({:?}.to_string()), ::serde::Serialize::to_content(&self.{})));\n",
            f.name, f.name
        ));
    }
    body.push_str("::serde::Content::Map(m)");
    format!(
        "impl{generics} ::serde::Serialize for {name}{generics} {{ fn to_content(&self) -> ::serde::Content {{ {body} }} }}"
    )
}

fn field_de(f: &Field, map_var: &str) -> String {
    if f.skip {
        return format!(
            "{{ <{} as ::std::default::Default>::default() }}",
            f.ty
        );
    }
    let missing = if f.default {
        format!("<{} as ::std::default::Default>::default()", f.ty)
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(concat!(\"missing field `\", {:?}, \"`\")))",
            f.name
        )
    };
    format!(
        "match ::serde::__find({map_var}, {:?}) {{ ::std::option::Option::Some(v) => ::serde::Deserialize::from_content(v)?, ::std::option::Option::None => {missing} }}",
        f.name
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{}: {}", f.name, field_de(f, "m")))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ let m = c.as_map().ok_or_else(|| ::serde::DeError::custom(concat!(\"expected map for \", {name:?})))?; let _ = &m; ::std::result::Result::Ok({name} {{ {} }}) }} }}",
        inits.join(", ")
    )
}

fn gen_tuple_ser(name: &str, generics: &str, fields: &[Field]) -> String {
    if fields.len() == 1 {
        return format!(
            "impl{generics} ::serde::Serialize for {name}{generics} {{ fn to_content(&self) -> ::serde::Content {{ ::serde::Serialize::to_content(&self.0) }} }}"
        );
    }
    let items: Vec<String> = (0..fields.len())
        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
        .collect();
    format!(
        "impl{generics} ::serde::Serialize for {name}{generics} {{ fn to_content(&self) -> ::serde::Content {{ ::serde::Content::Seq(vec![{}]) }} }}",
        items.join(", ")
    )
}

fn gen_tuple_de(name: &str, fields: &[Field]) -> String {
    if fields.len() == 1 {
        return format!(
            "impl ::serde::Deserialize for {name} {{ fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ ::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?)) }} }}"
        );
    }
    let items: Vec<String> = (0..fields.len())
        .map(|i| {
            format!(
                "::serde::Deserialize::from_content(s.get({i}).ok_or_else(|| ::serde::DeError::custom(\"tuple too short\"))?)?"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ let s = c.as_seq().ok_or_else(|| ::serde::DeError::custom(concat!(\"expected tuple for \", {name:?})))?; ::std::result::Result::Ok({name}({})) }} }}",
        items.join(", ")
    )
}

fn gen_enum_ser(name: &str, generics: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Content::Str({vn:?}.to_string()),\n"
            )),
            Shape::Tuple(fs) if fs.len() == 1 => arms.push_str(&format!(
                "{name}::{vn}(f0) => ::serde::Content::Map(vec![(::serde::Content::Str({vn:?}.to_string()), ::serde::Serialize::to_content(f0))]),\n"
            )),
            Shape::Tuple(fs) => {
                let binds: Vec<String> = (0..fs.len()).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({}) => ::serde::Content::Map(vec![(::serde::Content::Str({vn:?}.to_string()), ::serde::Content::Seq(vec![{}]))]),\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
            Shape::Named(fs) => {
                // Bind only serialized fields; `..` swallows skipped ones
                // so the expansion never trips unused-variable lints.
                let binds: Vec<String> = fs
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| f.name.clone())
                    .collect();
                let items: Vec<String> = fs
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        format!(
                            "(::serde::Content::Str({:?}.to_string()), ::serde::Serialize::to_content({}))",
                            f.name, f.name
                        )
                    })
                    .collect();
                let mut pat = binds.join(", ");
                if !pat.is_empty() {
                    pat.push_str(", ");
                }
                pat.push_str("..");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {pat} }} => ::serde::Content::Map(vec![(::serde::Content::Str({vn:?}.to_string()), ::serde::Content::Map(vec![{}]))]),\n",
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "impl{generics} ::serde::Serialize for {name}{generics} {{ fn to_content(&self) -> ::serde::Content {{ match self {{ {arms} }} }} }}"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => unit_arms.push_str(&format!(
                "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),\n"
            )),
            Shape::Tuple(fs) if fs.len() == 1 => tagged_arms.push_str(&format!(
                "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_content(v)?)),\n"
            )),
            Shape::Tuple(fs) => {
                let items: Vec<String> = (0..fs.len())
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_content(s.get({i}).ok_or_else(|| ::serde::DeError::custom(\"variant tuple too short\"))?)?"
                        )
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vn:?} => {{ let s = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected tuple variant payload\"))?; return ::std::result::Result::Ok({name}::{vn}({})); }}\n",
                    items.join(", ")
                ));
            }
            Shape::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| format!("{}: {}", f.name, field_de(f, "m")))
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vn:?} => {{ let m = v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected struct variant payload\"))?; let _ = &m; return ::std::result::Result::Ok({name}::{vn} {{ {} }}); }}\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ if let ::serde::Content::Str(s) = c {{ match s.as_str() {{ {unit_arms} _ => {{}} }} }} if let ::std::option::Option::Some((tag, v)) = ::serde::__variant(c) {{ let _ = &v; match tag {{ {tagged_arms} _ => {{}} }} }} ::std::result::Result::Err(::serde::DeError::custom(concat!(\"unknown variant for \", {name:?}))) }} }}"
    )
}
