//! Offline stand-in for the `bytes` crate, implementing exactly the
//! subset this workspace uses: `BytesMut` as a growable little-endian
//! writer, `Bytes` as a cheaply-cloneable cursor over immutable bytes,
//! and the `Buf`/`BufMut` trait methods the codecs call. Vendored so the
//! build never needs a network registry; see `vendor/README.md`.

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    /// Read cursor / window start into `data`.
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Split off the first `at` bytes, leaving the remainder in `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte writer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations (panic on underflow, like the real crate).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write-side operations (little-endian, matching codec usage).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_split() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX);
        w.put_f32_le(1.5);
        w.put_slice(b"xy");
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 18);
        let head = b.split_to(4);
        assert_eq!(head.as_slice(), &7u32.to_le_bytes());
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_u8(), b'x');
        assert_eq!(b.chunk(), b"y");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.get_u32_le();
    }
}
