//! Offline stand-in for `criterion`: a minimal wall-clock bench harness
//! implementing the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistical
//! analysis or HTML reports: each benchmark is timed over a few fixed
//! batches and a mean/min line is printed. Vendored so the build never
//! needs a network registry; see `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

pub struct Bencher {
    /// Per-sample wall-clock duration and iteration count.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f` over a handful of fixed-size batches. The batch size is
    /// auto-calibrated so one sample lasts roughly a millisecond; slow
    /// routines degrade to one iteration per sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: run once, pick an iteration count near ~1ms/sample.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let samples = self.sample_size.clamp(3, 30);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(f());
            }
            self.samples.push((start.elapsed(), per_sample));
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion.run_one(&label, sample_size, throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let (sample_size, throughput) = (self.sample_size, self.throughput);
        self.criterion
            .run_one(&label, sample_size, throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = name.to_string();
        self.run_one(&label, 10, None, f);
        self
    }

    fn run_one(
        &mut self,
        label: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{label:<56} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 * 1e9 / mean / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{label:<56} {mean:>14.1} ns/iter (min {min:.1}){rate}");
    }

    pub fn final_summary(&mut self) {}
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("vendored");
        group.sample_size(5);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }
}
