//! Durable ingestion demo: journal every merged document to a write-ahead
//! log, checkpoint periodically, "crash" by tearing the WAL tail, and
//! recover — printing what survived and what the durability metrics say.
//!
//! ```sh
//! cargo run --release --example durable
//! ```

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig};
use nous_corpus::Preset;
use nous_obs::MetricsRegistry;
use nous_persist::{DurabilityConfig, DurableStore, FsyncPolicy, RetryPolicy};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("nous-durable-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    let (world, kb, articles) = Preset::Smoke.build();
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();

    let registry = MetricsRegistry::new();
    let mut pipeline = IngestPipeline::with_registry(PipelineConfig::default(), registry.clone());

    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::EveryN(8),
        checkpoint_every_facts: 40,
        keep_generations: 2,
        retry: RetryPolicy::default(),
    };
    let mut store = DurableStore::create(&dir, cfg, &kg, &pipeline.report(), &registry)?;
    pipeline.set_journal(store.journal());

    println!(
        "ingesting {} articles with WAL + checkpoints…",
        articles.len()
    );
    for article in &articles {
        pipeline.ingest(&mut kg, article);
        if store.maybe_checkpoint(&kg, &pipeline.report())? {
            println!(
                "  checkpoint generation {} ({} facts in graph)",
                store.generation(),
                kg.graph.stats().extracted_edges
            );
        }
    }
    let live = pipeline.report();
    println!(
        "live run:      {} vertices, {} edges, {} admitted (generation {}, WAL {} bytes)",
        kg.graph.vertex_count(),
        kg.graph.edge_count(),
        live.admitted,
        store.generation(),
        store.wal_len()
    );

    // Crash: drop everything and tear the last bytes off the WAL, as if the
    // process died mid-append.
    let wal_file = store.wal_path();
    drop(store);
    drop(pipeline);
    let bytes = std::fs::read(&wal_file)?;
    let torn = bytes.len().min(5);
    std::fs::write(&wal_file, &bytes[..bytes.len() - torn])?;
    println!(
        "simulated crash: tore {torn} bytes off {}",
        wal_file.display()
    );

    let recovery_registry = MetricsRegistry::new();
    let (store, recovered) = DurableStore::open(&dir, cfg, &recovery_registry)?;
    println!(
        "recovered:     {} vertices, {} edges, {} admitted (checkpoint generation {})",
        recovered.kg.graph.vertex_count(),
        recovered.kg.graph.edge_count(),
        recovered.report.admitted,
        recovered.generation
    );
    println!(
        "replay:        {} documents / {} facts from the WAL tail, {} torn bytes discarded",
        recovered.replayed_docs, recovered.replayed_facts, recovered.truncated_bytes
    );
    println!(
        "durability counters: wal_appends={:?} checkpoints={:?} recovery_replayed={:?}",
        recovery_registry.counter_value("nous_wal_appends_total", &[]),
        recovery_registry.counter_value("nous_checkpoints_total", &[]),
        recovery_registry.counter_value("nous_recovery_replayed_total", &[]),
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
