//! Insider-threat detection (§3.1 domain 2): build a knowledge graph from
//! structured enterprise log events — no NLP stage — and let the streaming
//! miner surface the exfiltration motif while it is happening.
//!
//! ```sh
//! cargo run --release --example insider_threat
//! ```

use nous_core::{KnowledgeGraph, TrendMonitor};
use nous_corpus::insider::{self, InsiderConfig, InsiderPredicate};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_text::ner::EntityType;

fn main() {
    let cfg = InsiderConfig::default();
    let scenario = insider::generate(&cfg);
    println!(
        "scenario: {} entities, {} log events over {} days; attack window {}–{}",
        scenario.entities.len(),
        scenario.events.len(),
        cfg.days,
        cfg.attack_start,
        cfg.attack_end
    );

    // Log data is already structured: entities and facts go straight into
    // the dynamic KG (the framework is domain-agnostic; only the ingestion
    // adapter changes).
    let mut kg = KnowledgeGraph::new();
    for e in &scenario.entities {
        let v = kg.create_entity(&e.name, EntityType::Other);
        kg.graph.set_label(v, e.label);
    }
    let mut monitor = TrendMonitor::new(
        WindowKind::Time { span: 14 }, // two-week window
        MinerConfig {
            k_max: 2,
            min_support: 4,
            eviction: EvictionStrategy::Eager,
        },
    );

    println!("\nday  window  exfiltration-motif support (closed patterns containing copiedTo)");
    println!("---  ------  ---------------------------------------------------------------");
    let mut last_report = 0u64;
    let mut detected_at: Option<u64> = None;
    for event in &scenario.events {
        let s = kg.graph.vertex_id(&event.subject).expect("entity exists");
        let o = kg.graph.vertex_id(&event.object).expect("entity exists");
        kg.add_extracted_fact(s, event.predicate.name(), o, event.day, 1.0, event.day);
        monitor.observe(&kg);
        monitor.advance_to(&kg, event.day);
        if event.day >= last_report + 10 {
            last_report = event.day;
            let exfil: Vec<_> = monitor
                .trending(&kg)
                .into_iter()
                .filter(|t| t.description.contains("copiedTo"))
                .collect();
            let best = exfil.iter().map(|t| t.support).max().unwrap_or(0);
            if best >= 4 && detected_at.is_none() {
                detected_at = Some(event.day);
            }
            println!(
                "{:3}  {:6}  {}",
                event.day,
                monitor.window_len(),
                if exfil.is_empty() {
                    "(none)".to_owned()
                } else {
                    exfil
                        .iter()
                        .take(2)
                        .map(|t| format!("{} ×{}", t.description, t.support))
                        .collect::<Vec<_>>()
                        .join(" | ")
                }
            );
        }
    }

    match detected_at {
        Some(day) => println!(
            "\nexfiltration motif became frequent on day {day} (attack started day {}); \
             ground-truth insiders: {}",
            cfg.attack_start,
            scenario.exfiltrators.join(", ")
        ),
        None => println!("\nno exfiltration motif crossed the support threshold"),
    }

    // Who is behind the motif? Rank users by copiedTo degree.
    let copied = kg.graph.predicate_id(InsiderPredicate::CopiedTo.name());
    if let Some(p) = copied {
        let mut suspects: Vec<(String, usize)> = kg
            .graph
            .iter_vertices()
            .filter(|&v| kg.graph.label(v) == Some("User"))
            .map(|v| {
                let n = kg.graph.out_edges(v).filter(|a| a.pred == p).count();
                (kg.graph.vertex_name(v).to_owned(), n)
            })
            .filter(|(_, n)| *n > 0)
            .collect();
        suspects.sort_by_key(|s| std::cmp::Reverse(s.1));
        println!("suspects by exfiltration volume: {suspects:?}");
    }
}
