//! Quality dashboard (experiment E12, demo feature 2): "Visualize the
//! resultant graph and summarization of quality-related statistics (such
//! as confidence distributions, and understanding how the structure of the
//! underlying data influence the output quality)."
//!
//! Prints the admitted/rejected confidence histograms, the degree
//! distribution summary, and a data-structure sensitivity sweep: how alias
//! ambiguity in the underlying corpus changes extraction quality.
//!
//! ```sh
//! cargo run --release --example quality_report
//! ```

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig};
use nous_corpus::{ArticleStream, CuratedKb, Preset, World, WorldConfig};
use nous_graph::algo::DegreeSummary;

fn histogram(label: &str, values: &[f32]) {
    println!("\n{label} ({} facts):", values.len());
    let mut buckets = [0usize; 10];
    for &v in values {
        let b = ((v * 10.0) as usize).min(9);
        buckets[b] += 1;
    }
    let max = buckets.iter().copied().max().unwrap_or(1).max(1);
    for (i, &count) in buckets.iter().enumerate() {
        let bar = "█".repeat(count * 40 / max);
        println!(
            "  {:.1}-{:.1} {:>6}  {bar}",
            i as f32 / 10.0,
            (i + 1) as f32 / 10.0,
            count
        );
    }
}

fn ground_truth_recall(
    world: &World,
    kg: &KnowledgeGraph,
    articles: &[nous_corpus::Article],
) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for a in articles {
        for f in &a.facts {
            total += 1;
            let s = kg.graph.vertex_id(&f.subject);
            let o = kg.graph.vertex_id(&f.object);
            if let (Some(s), Some(o)) = (s, o) {
                if let Some(p) = kg.graph.predicate_id(f.predicate.name()) {
                    if kg.graph.has_triple(s, p, o) {
                        hit += 1;
                    }
                }
            }
        }
    }
    let _ = world;
    hit as f64 / total.max(1) as f64
}

fn main() {
    let (world, kb, articles) = Preset::Demo.build();
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let mut pipeline = IngestPipeline::new(PipelineConfig::default());
    let report = pipeline.ingest_all(&mut kg, &articles);

    println!("== ingestion quality ==");
    println!(
        "raw {} → mapped {} → admitted {} / rejected {} (admission rate {:.2})",
        report.raw_triples,
        report.mapped,
        report.admitted,
        report.rejected,
        report.admission_rate()
    );
    histogram(
        "admitted confidence distribution",
        &pipeline.admitted_confidences,
    );
    histogram(
        "rejected confidence distribution",
        &pipeline.rejected_confidences,
    );

    println!("\n== graph structure ==");
    if let Some(d) = DegreeSummary::of(&kg.graph) {
        println!(
            "degree: min {} / median {} / mean {:.1} / max {} (hub: {}), {} isolated",
            d.min,
            d.median,
            d.mean,
            d.max,
            d.hub.map(|h| kg.graph.vertex_name(h)).unwrap_or("-"),
            d.isolated
        );
    }

    // Structure → quality sensitivity: sweep the corpus alias ambiguity.
    println!("\n== ambiguity sweep: how source structure influences output quality ==");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "ambiguity", "admitted", "recall", "kg-edges"
    );
    for ambiguity in [0.0, 0.25, 0.5, 0.8] {
        let wc = WorldConfig {
            ambiguity,
            ..Preset::Smoke.world_config()
        };
        let world = World::generate(&wc);
        let kb = CuratedKb::generate(&world, 7);
        let mut sc = Preset::Smoke.stream_config();
        sc.articles = 200;
        sc.alias_usage = 0.5;
        let articles = ArticleStream::generate(&world, &kb, &sc);
        let mut kg = KnowledgeGraph::from_curated(&world, &kb);
        kg.train_predictor();
        let mut pipe = IngestPipeline::new(PipelineConfig::default());
        let rep = pipe.ingest_all(&mut kg, &articles);
        let recall = ground_truth_recall(&world, &kg, &articles);
        println!(
            "{:<10.2} {:>10} {:>10.2} {:>10}",
            ambiguity,
            rep.admitted,
            recall,
            kg.graph.edge_count()
        );
    }
    println!("\nHigher alias ambiguity in the sources degrades linking and recall —");
    println!("the structure of the underlying data influences the output quality.");
}
