//! The serving demo: build a live session from the smoke-preset world,
//! wire a durable journal so `/ingest` acks are ack-after-durable, and
//! expose it over HTTP (ROADMAP item 1, DESIGN.md §8).
//!
//! ```sh
//! cargo run --release --example serve                       # 127.0.0.1:7700
//! cargo run --release --example serve -- --addr 0.0.0.0:80
//! cargo run --release --example serve -- --self-check       # serve, probe, exit
//! ```
//!
//! Then:
//!
//! ```sh
//! curl localhost:7700/healthz
//! curl -X POST localhost:7700/query -d '{"query":"TRENDING LIMIT 5"}'
//! curl -X POST localhost:7700/query -H 'x-nous-deadline-ms: 50' \
//!      -d '{"query":"MATCH (*)-[acquired]->(*) LIMIT 5"}'
//! curl localhost:7700/metrics | grep nous_http
//! ```

use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, SharedSession, TrendMonitor};
use nous_corpus::{ArticleStream, CuratedKb, Preset, World};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::MetricsRegistry;
use nous_persist::{DurabilityConfig, DurableStore};
use nous_qa::TopicIndex;
use nous_serve::{Server, ServerConfig};
use nous_topics::LdaConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let self_check = args.iter().any(|a| a == "--self-check");
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            if self_check {
                "127.0.0.1:0".to_owned() // any free port; we print it
            } else {
                "127.0.0.1:7700".to_owned()
            }
        });

    eprintln!("building session (smoke preset)…");
    let world = World::generate(&Preset::Smoke.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());

    let registry = MetricsRegistry::new();
    // Flight recorder on: every response's x-nous-trace-id resolves to a
    // span tree (slow threshold 1ms keeps the slow log to real outliers).
    registry.enable_tracing(42, 256, 1_000_000);
    let session = Arc::new(SharedSession::with_registry(
        kg,
        TopicIndex::new(2),
        TrendMonitor::new(
            WindowKind::Count { n: 200 },
            MinerConfig {
                k_max: 2,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        ),
        registry.clone(),
    ));

    let mut pipeline = IngestPipeline::with_registry(
        PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            ..Default::default()
        },
        registry.clone(),
    );

    // Durable journal under a scratch directory: every fact admitted via
    // POST /ingest clears the WAL before the 200 goes out. The ack
    // counter makes the contract visible in the logs.
    let acked = Arc::new(AtomicU64::new(0));
    let wal_dir = std::env::temp_dir().join(format!("nous-serve-{}", std::process::id()));
    match DurableStore::create(
        &wal_dir,
        DurabilityConfig::default(),
        &KnowledgeGraph::new(),
        &Default::default(),
        &registry,
    ) {
        Ok(store) => {
            let counter = Arc::clone(&acked);
            pipeline.set_journal(store.journal_with_ack(Arc::new(move |_rec| {
                counter.fetch_add(1, Ordering::Relaxed);
            })));
            eprintln!("durable journal at {}", wal_dir.display());
        }
        Err(e) => eprintln!("journal disabled ({e}); /ingest acks are in-memory only"),
    }

    // Seed the graph so queries have something to chew on immediately.
    let report = session.ingest_batch(&mut pipeline, &articles);
    eprintln!(
        "seeded {} docs, {} facts admitted, {} journal acks",
        report.documents,
        report.admitted,
        acked.load(Ordering::Relaxed)
    );
    let topics = session.read(|kg, _| kg.build_topic_index(&LdaConfig::default()));
    session.set_topics(topics);
    session.with_trends(|trends, kg| trends.observe(kg));

    let server = Server::start(session, pipeline, &addr, ServerConfig::default())
        .expect("bind serving socket");
    let local = server.local_addr();
    // The one line scripts scrape for the bound address (port 0 support).
    println!("listening on http://{local}");

    if !self_check {
        eprintln!("press Ctrl-C to stop");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    // --self-check: drive one request per endpoint through a real
    // socket, print the outcomes, and exit nonzero on any failure.
    let mut failures = 0;
    for (what, method, path, body) in [
        ("healthz", "GET", "/healthz", String::new()),
        (
            "trending",
            "POST",
            "/query",
            r#"{"query":"TRENDING LIMIT 5"}"#.into(),
        ),
        ("stats", "GET", "/stats", String::new()),
        ("metrics", "GET", "/metrics", String::new()),
    ] {
        let ok = probe(local, method, path, &body);
        eprintln!("self-check {what}: {}", if ok { "ok" } else { "FAILED" });
        failures += usize::from(!ok);
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
    if failures > 0 {
        eprintln!("{failures} self-check probe(s) failed");
        std::process::exit(1);
    }
    eprintln!("self-check passed");
}

/// Minimal one-shot HTTP probe; true iff the response status is 200.
fn probe(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> bool {
    let Ok(mut stream) = std::net::TcpStream::connect(addr) else {
        return false;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: demo\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return false;
    }
    let mut out = String::new();
    if stream.read_to_string(&mut out).is_err() {
        return false;
    }
    out.starts_with("HTTP/1.1 200")
}
