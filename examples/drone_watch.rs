//! Drone-industry watch (experiment E2, Figures 2/4/6): the paper's §1.2
//! use case. Builds a drone-themed knowledge graph by fusing the curated
//! KB with facts extracted from the article stream, assigns every fact a
//! probability, and exports the neighbourhood of a watched company in DOT
//! and JSON (curated facts red, extracted facts blue — Figure 2's colour
//! code).
//!
//! ```sh
//! cargo run --release --example drone_watch [entity name]
//! ```

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig};
use nous_corpus::Preset;
use nous_graph::snapshot;

fn main() {
    let (world, kb, articles) = Preset::Demo.build();
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let mut pipeline = IngestPipeline::new(PipelineConfig::default());
    // Micro-batched ingestion: parallel extraction, sequential KG updates.
    pipeline.ingest_batch(&mut kg, &articles);

    // The watched entity: argv override, else the busiest company.
    let watched = std::env::args().nth(1).unwrap_or_else(|| {
        world
            .companies
            .iter()
            .map(|&c| &world.entities[c].name)
            .max_by_key(|n| {
                kg.graph
                    .vertex_id(n)
                    .map(|v| kg.graph.degree(v))
                    .unwrap_or(0)
            })
            .expect("non-empty world")
            .clone()
    });
    let Some(v) = kg.graph.vertex_id(&watched) else {
        eprintln!("unknown entity: {watched}");
        std::process::exit(1);
    };

    println!("== {watched} ==");
    let summary = kg.entity_summary(&watched).expect("vertex exists");
    println!(
        "type: {}, degree: {}",
        summary.entity_type.as_deref().unwrap_or("?"),
        summary.degree
    );
    println!("\nhighest-confidence facts (red = curated, blue = extracted):");
    for (fact, conf, _at, curated) in summary.facts.iter().take(15) {
        let colour = if *curated { "red " } else { "blue" };
        println!("  [{colour} {conf:.2}] {fact}");
    }

    // Figure 2/4: graph visualisation exports of the 2-hop neighbourhood.
    let dot = snapshot::to_dot(&kg.graph, &[v], 2);
    let json = snapshot::to_json_graph(&kg.graph, &[v], 2);
    let dot_path = std::env::temp_dir().join("drone_watch.dot");
    let json_path = std::env::temp_dir().join("drone_watch.json");
    std::fs::write(&dot_path, &dot).expect("writable temp dir");
    std::fs::write(&json_path, &json).expect("writable temp dir");
    println!("\nneighbourhood exports:");
    println!(
        "  DOT  {} ({} bytes) — render with `dot -Tsvg`",
        dot_path.display(),
        dot.len()
    );
    println!(
        "  JSON {} ({} bytes) — node-link format for web UIs",
        json_path.display(),
        json.len()
    );

    // Figure 2's fused-provenance statistic for the neighbourhood.
    let stats = kg.graph.stats();
    println!(
        "\nwhole graph: {} curated + {} extracted facts, mean confidence {:.2}",
        stats.curated_edges, stats.extracted_edges, stats.mean_confidence
    );
}
