//! Streaming trend discovery (experiment E6, Figure 7): replay the article
//! stream through the pipeline while a sliding-window miner watches the
//! knowledge graph, and report how discovered patterns change as the
//! stream's character changes (the generator plants an acquisition wave in
//! days 1100–1500).
//!
//! ```sh
//! cargo run --release --example trending
//! ```

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, TrendMonitor};
use nous_corpus::Preset;
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};

fn main() {
    let (world, kb, articles) = Preset::Demo.build();
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let mut pipeline = IngestPipeline::new(PipelineConfig::default());

    // Time window of 300 days over extracted facts, patterns of ≤2 edges.
    let mut monitor = TrendMonitor::new(
        WindowKind::Time { span: 300 },
        MinerConfig {
            k_max: 2,
            min_support: 6,
            eviction: EvictionStrategy::Eager,
        },
    );
    // Pre-consume the curated block (timestamp 0) so the stream epochs are
    // dominated by extracted knowledge but can still join curated edges.
    monitor.observe(&kg);

    let mut next_epoch = 300u64;
    println!("epoch  window  top trending patterns (closed, support)");
    println!("-----  ------  --------------------------------------");
    for article in &articles {
        pipeline.ingest(&mut kg, article);
        monitor.observe(&kg);
        monitor.advance_to(&kg, article.day);
        if article.day >= next_epoch {
            let mut trends = monitor.trending(&kg);
            trends.truncate(3);
            let rendered = if trends.is_empty() {
                "(none)".to_owned()
            } else {
                trends
                    .iter()
                    .map(|t| format!("{} ×{}", t.description, t.support))
                    .collect::<Vec<_>>()
                    .join(" | ")
            };
            println!(
                "{:5}  {:6}  {}",
                article.day,
                monitor.window_len(),
                rendered
            );
            next_epoch += 300;
        }
    }

    println!("\nThe acquisition wave (days 1100-1500) should dominate the middle epochs;");
    println!("after it passes, the miner reconstructs the surviving smaller patterns.");
}
