//! Dated triple extraction table (experiment E3, Figure 3): the paper's
//! appendix shows "example triples extracted from Wall Street Journal
//! Articles using Semantic Role Labeling. The first column shows dates on
//! which the triples were published." This reproduces that table from the
//! synthetic stream.
//!
//! ```sh
//! cargo run --release --example extraction_table
//! ```

use nous_corpus::articles::render_date;
use nous_corpus::Preset;
use nous_text::ner::{EntityType, Gazetteer};
use nous_text::openie::ExtractorConfig;

fn main() {
    let (world, _kb, articles) = Preset::Demo.build();
    // Gazetteer from the curated alias tables, as the pipeline uses.
    let mut gaz = Gazetteer::new();
    for e in &world.entities {
        let ty = match e.kind {
            nous_corpus::world::Kind::Company => EntityType::Organization,
            nous_corpus::world::Kind::Person => EntityType::Person,
            nous_corpus::world::Kind::Location => EntityType::Location,
            nous_corpus::world::Kind::Product => EntityType::Product,
        };
        for a in &e.aliases {
            gaz.insert(a, ty);
        }
    }

    println!(
        "{:<14}  {:<26}  {:<14}  {:<26}  {:<10}  CONF",
        "DATE", "SUBJECT (A0)", "PREDICATE", "OBJECT (A1)", "TIME/LOC"
    );
    println!("{}", "-".repeat(110));
    let cfg = ExtractorConfig::default();
    let mut rows = 0;
    for article in articles.iter().step_by(23) {
        let doc = nous_text::analyze(&article.body, &gaz, &cfg);
        for s in &doc.sentences {
            for f in &s.frames {
                let adjunct = f
                    .time
                    .clone()
                    .or_else(|| f.location.clone())
                    .unwrap_or_default();
                println!(
                    "{:<14}  {:<26}  {:<14}  {:<26}  {:<10}  {:.2}",
                    render_date(article.day),
                    truncate(&f.a0, 26),
                    truncate(&f.predicate, 14),
                    truncate(&f.a1, 26),
                    truncate(&adjunct, 10),
                    f.confidence
                );
                rows += 1;
                if rows >= 25 {
                    println!("\n(25 rows shown; the full stream yields thousands)");
                    return;
                }
            }
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_owned()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}
