//! Quickstart (experiment E1, Figure 1): build a custom knowledge graph
//! from a curated KB plus a streaming article corpus, then ask it
//! questions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, TrendMonitor};
use nous_corpus::Preset;
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_query::{execute, parse};
use nous_topics::LdaConfig;
use std::time::Instant;

fn main() {
    // 1. Data: a synthetic world standing in for YAGO2 + the WSJ corpus.
    let (world, kb, articles) = Preset::Demo.build();
    println!(
        "world: {} entities ({} companies), curated KB: {} triples, stream: {} articles",
        world.entities.len(),
        world.companies.len(),
        kb.len(),
        articles.len()
    );

    // 2. Load the curated KB and train the §3.4 link predictor on it.
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();

    // 3. Stream every article through the Figure-1 pipeline. Extraction
    // fans out across worker threads per micro-batch (NOUS_THREADS
    // overrides the worker count); graph updates stay sequential in
    // document order.
    let cfg = PipelineConfig::default();
    let workers = if cfg.extract_workers == 0 {
        nous_graph::parallel::available_workers()
    } else {
        cfg.extract_workers
    };
    let batch_size = cfg.batch_size;
    let mut pipeline = IngestPipeline::new(cfg);
    let t0 = Instant::now();
    let report = pipeline.ingest_batch(&mut kg, &articles);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "\n-- ingestion ({secs:.2}s, {:.0} docs/s, batches of {batch_size} × {workers} workers) --",
        report.documents as f64 / secs
    );
    println!("  sentences        {}", report.sentences);
    println!("  raw triples      {}", report.raw_triples);
    println!("  mapped           {}", report.mapped);
    println!(
        "  unmapped         {}  (stashed for mapper expansion)",
        report.unmapped
    );
    println!("  admitted         {}", report.admitted);
    println!("  rejected         {}  (quality control)", report.rejected);
    println!("  new entities     {}", report.new_entities);
    let stats = kg.graph.stats();
    println!(
        "\nKG: {} vertices, {} edges ({} curated red / {} extracted blue), mean confidence {:.2}",
        stats.vertices,
        stats.live_edges,
        stats.curated_edges,
        stats.extracted_edges,
        stats.mean_confidence
    );
    let learned: Vec<String> = kg
        .mapper
        .rules()
        .iter()
        .filter(|(_, r)| !r.seed)
        .map(|(k, r)| format!("{k}→{}", r.ontology))
        .collect();
    println!(
        "mapper learned {} synonym rules: {}",
        learned.len(),
        learned.join(", ")
    );

    // 4. Topic index for explanatory questions (§3.6).
    let topics = kg.build_topic_index(&LdaConfig::default());

    // 5. Streaming trend mining (§3.5).
    let mut trends = TrendMonitor::new(
        WindowKind::Count { n: 400 },
        MinerConfig {
            k_max: 2,
            min_support: 8,
            eviction: EvictionStrategy::Eager,
        },
    );
    trends.observe(&kg);

    // 6. Queries across all five classes (Figure 5).
    let company_a = &world.entities[world.companies[0]].name;
    let company_b = &world.entities[world.companies[1]].name;
    let queries = [
        "TRENDING LIMIT 5".to_owned(),
        format!("tell me about {company_a}"),
        format!("WHY {company_a} -> {company_b} LIMIT 3"),
        "MATCH (Company)-[acquired]->(Company) LIMIT 3".to_owned(),
        format!("PATHS {company_a} TO {company_b} MAX 3 LIMIT 3"),
    ];
    for q in &queries {
        println!("\n>> {q}");
        match parse(q) {
            Ok(query) => println!("{}", execute(&query, &kg, &topics, &mut trends).render()),
            Err(e) => println!("{e}"),
        }
    }
}
