//! Command-line query interface (demo feature 4, Figures 5/6): build the
//! system once, then run one query per command-line argument — or an
//! interactive prompt when stdin is a TTY-ish session.
//!
//! ```sh
//! cargo run --release --example ask -- "tell me about Apex Robotics"
//! cargo run --release --example ask -- "TRENDING LIMIT 5" "PATHS A TO B"
//! echo "what is trending" | cargo run --release --example ask
//! ```

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, TrendMonitor};
use nous_corpus::Preset;
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_query::{execute, parse};
use nous_topics::LdaConfig;
use std::io::BufRead;

fn main() {
    eprintln!("building knowledge graph (demo preset)…");
    let (world, kb, articles) = Preset::Demo.build();
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    IngestPipeline::new(PipelineConfig::default()).ingest_all(&mut kg, &articles);
    let topics = kg.build_topic_index(&LdaConfig::default());
    let mut trends = TrendMonitor::new(
        WindowKind::Count { n: 400 },
        MinerConfig {
            k_max: 2,
            min_support: 8,
            eviction: EvictionStrategy::Eager,
        },
    );
    trends.observe(&kg);
    eprintln!(
        "ready: {} entities, {} facts. Example entities: {}, {}",
        kg.graph.vertex_count(),
        kg.graph.edge_count(),
        world.entities[world.companies[0]].name,
        world.entities[world.companies[1]].name,
    );

    let mut run = |line: &str| {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match parse(line) {
            Ok(q) => println!("{}", execute(&q, &kg, &topics, &mut trends).render()),
            Err(e) => println!("{e}"),
        }
    };

    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        for q in &args {
            println!(">> {q}");
            run(q);
        }
        return;
    }
    // Read queries from stdin, one per line.
    eprintln!(
        "enter queries (TRENDING / ABOUT x / WHY a -> b / MATCH (T)-[p]->(T) / PATHS a TO b):"
    );
    for line in std::io::stdin().lock().lines() {
        match line {
            Ok(l) => run(&l),
            Err(_) => break,
        }
    }
}
