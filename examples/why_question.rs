//! Why-question walkthrough (experiment E9, §3.6): for each planted
//! explanatory question, show how the four rankers order the candidate
//! paths — the coherence metric finds the planted explanation while the
//! structural baselines are fooled by the hub decoy.
//!
//! ```sh
//! cargo run --release --example why_question
//! ```

use nous_core::KnowledgeGraph;
use nous_corpus::{plant_explanations, CuratedKb, Preset, World};
use nous_qa::baselines::{degree_salience_paths, random_walk_paths, shortest_paths};
use nous_qa::{coherent_paths, PathConstraint, QaConfig, RankedPath};
use nous_topics::LdaConfig;

fn main() {
    let world = World::generate(&Preset::Demo.world_config());
    let mut kb = CuratedKb::generate(&world, 7);
    let explanations = plant_explanations(&world, &mut kb, 6, 99);
    let kg = KnowledgeGraph::from_curated(&world, &kb);
    let topics = kg.build_topic_index(&LdaConfig::default());
    let cfg = QaConfig {
        max_hops: 2,
        k: 3,
        ..Default::default()
    };

    let path_names = |p: &RankedPath| -> String {
        p.vertices
            .iter()
            .map(|&v| kg.graph.vertex_name(v))
            .collect::<Vec<_>>()
            .join(" → ")
    };

    let mut scores = [0usize; 4];
    for (qi, e) in explanations.iter().enumerate() {
        let src = kg.graph.vertex_id(&e.source).expect("source exists");
        let dst = kg.graph.vertex_id(&e.target).expect("target exists");
        println!(
            "\n== Q{}: why is {} related to {}? ==",
            qi + 1,
            e.source,
            e.target
        );
        println!("   planted explanation: {}", e.expected_path.join(" → "));
        println!("   planted decoy:       {}", e.decoy_path.join(" → "));

        let rankings: Vec<(&str, Vec<RankedPath>)> = vec![
            (
                "coherence (paper)",
                coherent_paths(
                    &kg.graph,
                    &topics,
                    src,
                    dst,
                    &PathConstraint::default(),
                    &cfg,
                ),
            ),
            (
                "shortest",
                shortest_paths(&kg.graph, src, dst, &PathConstraint::default(), &cfg),
            ),
            (
                "degree salience",
                degree_salience_paths(&kg.graph, src, dst, &PathConstraint::default(), &cfg),
            ),
            (
                "random walk",
                random_walk_paths(&kg.graph, src, dst, &PathConstraint::default(), &cfg),
            ),
        ];
        for (ri, (name, paths)) in rankings.iter().enumerate() {
            let top = paths
                .first()
                .map(path_names)
                .unwrap_or_else(|| "(none)".into());
            let hit = paths
                .first()
                .map(|p| {
                    p.vertices
                        .iter()
                        .map(|&v| kg.graph.vertex_name(v))
                        .eq(e.expected_path.iter().map(String::as_str))
                })
                .unwrap_or(false);
            if hit {
                scores[ri] += 1;
            }
            println!("   {:>18}: {} {}", name, if hit { "✓" } else { "✗" }, top);
        }
    }

    println!(
        "\n== top-1 accuracy over {} questions ==",
        explanations.len()
    );
    for (name, s) in [
        "coherence (paper)",
        "shortest",
        "degree salience",
        "random walk",
    ]
    .iter()
    .zip(scores)
    {
        println!("  {name:>18}: {s}/{}", explanations.len());
    }
}
