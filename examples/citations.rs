//! Citation analytics (§3.1 domain 3): trend discovery and explanatory
//! questions over a bibliography knowledge graph — the third domain the
//! paper lists, again with no NLP stage, just a different structured
//! adapter feeding the same framework.
//!
//! ```sh
//! cargo run --release --example citations
//! ```

use nous_core::{KnowledgeGraph, TrendMonitor};
use nous_corpus::citations::{self, CitationConfig, CitePredicate};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_qa::{coherent_paths, PathConstraint, QaConfig, TopicIndex};
use nous_text::ner::EntityType;

fn main() {
    let cfg = CitationConfig::default();
    let scenario = citations::generate(&cfg);
    println!(
        "bibliography: {} entities, {} facts over {} years; seminal paper appears in year {}",
        scenario.entities.len(),
        scenario.facts.len(),
        cfg.years,
        2010 + cfg.burst_year
    );

    // Direct structured ingestion, as in the insider-threat domain.
    let mut kg = KnowledgeGraph::new();
    let mut topics = TopicIndex::new(nous_corpus::vocab::Topic::ALL.len());
    for e in &scenario.entities {
        let v = kg.create_entity(&e.name, EntityType::Other);
        kg.graph.set_label(v, e.label);
        // Papers carry their field as a crisp topic distribution.
        let mut dist = vec![0.02; nous_corpus::vocab::Topic::ALL.len()];
        let idx = nous_corpus::vocab::Topic::ALL
            .iter()
            .position(|t| *t == e.topic)
            .unwrap();
        dist[idx] = 1.0;
        topics.set(v, dist);
    }
    let mut monitor = TrendMonitor::new(
        WindowKind::Time { span: 400 },
        MinerConfig {
            k_max: 2,
            min_support: 10,
            eviction: EvictionStrategy::Eager,
        },
    );

    println!("\nyear  window  top citation patterns");
    println!("----  ------  ---------------------");
    let mut next_epoch = 365u64;
    for f in &scenario.facts {
        let s = kg.graph.vertex_id(&f.subject).expect("entity exists");
        let o = kg.graph.vertex_id(&f.object).expect("entity exists");
        kg.add_extracted_fact(s, f.predicate.name(), o, f.day, 1.0, f.day);
        monitor.observe(&kg);
        monitor.advance_to(&kg, f.day);
        if f.day >= next_epoch {
            let mut trends: Vec<_> = monitor
                .trending(&kg)
                .into_iter()
                .filter(|t| t.description.contains("cites"))
                .collect();
            trends.truncate(2);
            println!(
                "{:4}  {:6}  {}",
                2010 + f.day / 365,
                monitor.window_len(),
                if trends.is_empty() {
                    "(none)".to_owned()
                } else {
                    trends
                        .iter()
                        .map(|t| format!("{} ×{}", t.description, t.support))
                        .collect::<Vec<_>>()
                        .join(" | ")
                }
            );
            next_epoch += 365;
        }
    }

    // Who cites the seminal paper?
    let seminal_v = kg.graph.vertex_id(&scenario.seminal).unwrap();
    let cites = kg.graph.predicate_id(CitePredicate::Cites.name()).unwrap();
    let in_citations = kg
        .graph
        .in_edges(seminal_v)
        .filter(|a| a.pred == cites)
        .count();
    println!(
        "\nseminal paper {} accumulated {} citations (burst cluster: {} papers)",
        scenario.seminal,
        in_citations,
        scenario.burst_papers.len()
    );

    // Explain how a late burst paper relates to the seminal one.
    if let Some(last) = scenario.burst_papers.last() {
        let src = kg.graph.vertex_id(last).unwrap();
        let paths = coherent_paths(
            &kg.graph,
            &topics,
            src,
            seminal_v,
            &PathConstraint::default(),
            &QaConfig {
                max_hops: 3,
                k: 3,
                ..Default::default()
            },
        );
        println!("\nwhy is {last} related to {}?", scenario.seminal);
        for p in paths {
            println!("  [{:.4}] {}", p.score, p.render(&kg.graph));
        }
    }
}
