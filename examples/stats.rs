//! The live `/stats` surface: build a shared session whose ingestion,
//! lock, trend-mining and query telemetry all land in one metrics
//! registry, exercise every subsystem once, then print the snapshot the
//! demo service would serve — JSON first, Prometheus text exposition
//! after.
//!
//! ```sh
//! cargo run --release --example stats
//! cargo run --release --example stats -- --prometheus   # exposition only
//! ```

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, SharedSession, TrendMonitor};
use nous_corpus::{ArticleStream, CuratedKb, Preset, World};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::MetricsRegistry;
use nous_qa::TopicIndex;
use nous_query::{execute_shared, parse};
use nous_topics::LdaConfig;

fn main() {
    let prometheus_only = std::env::args().any(|a| a == "--prometheus");

    eprintln!("building session (smoke preset)…");
    let world = World::generate(&Preset::Smoke.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());
    let a = world.entities[world.companies[0]].name.clone();
    let b = world.entities[world.companies[1]].name.clone();

    // One registry for everything: the session's lock accounting, the
    // pipeline's stage timings, the miner's window telemetry and the query
    // executor's per-class latencies share a single /stats surface.
    let registry = MetricsRegistry::new();
    let session = SharedSession::with_registry(
        kg,
        TopicIndex::new(2),
        TrendMonitor::new(
            WindowKind::Count { n: 200 },
            MinerConfig {
                k_max: 2,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        ),
        registry.clone(),
    );

    // Ingest the stream through the micro-batched parallel path.
    let mut pipeline = IngestPipeline::with_registry(
        PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            ..Default::default()
        },
        registry.clone(),
    );
    let report = session.ingest_batch(&mut pipeline, &articles);
    eprintln!(
        "ingested {} docs, admitted {} facts ({:.0}% admission)",
        report.documents,
        report.admitted,
        report.admission_rate() * 100.0
    );

    // Refresh topics from the ingested graph, feed the trend miner, and
    // run one query per class so every subsystem reports.
    let topics = session.read(|kg, _| kg.build_topic_index(&LdaConfig::default()));
    session.set_topics(topics);
    session.with_trends(|trends, kg| {
        trends.observe(kg);
    });
    for q in [
        "TRENDING LIMIT 5".to_owned(),
        format!("tell me about {a}"),
        format!("WHY {a} -> {b} LIMIT 3"),
        "MATCH (Organization)-[acquired]->(Organization) LIMIT 3".to_owned(),
        format!("TIMELINE {a} LIMIT 5"),
        format!("PATHS {a} TO {b} MAX 3"),
    ] {
        let parsed = parse(&q).expect("example queries parse");
        let result = execute_shared(&session, &parsed);
        eprintln!(">> {q}\n{}", result.render());
    }

    if !prometheus_only {
        println!("=== /stats (JSON snapshot) ===");
        println!("{}", session.stats_snapshot());
        println!("=== /metrics (Prometheus exposition) ===");
    }
    print!("{}", session.metrics().render_prometheus());
}
