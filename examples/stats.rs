//! The live `/stats` surface: build a shared session whose ingestion,
//! lock, trend-mining and query telemetry all land in one metrics
//! registry, exercise every subsystem once, then print the snapshot the
//! demo service would serve — JSON first, Prometheus text exposition
//! after.
//!
//! ```sh
//! cargo run --release --example stats
//! cargo run --release --example stats -- --prometheus   # exposition only
//! cargo run --release --example stats -- --chrome-trace # trace_event JSON only
//! ```
//!
//! Tracing is on (256-trace flight recorder, slow threshold 0 so every
//! request also lands in the slow log): after the stats surface, the
//! example prints the slowest recorded query trace as a span tree —
//! the flight-recorder view an operator would pull after a p99 alert.

use nous_core::{IngestPipeline, KnowledgeGraph, PipelineConfig, SharedSession, TrendMonitor};
use nous_corpus::{ArticleStream, CuratedKb, Preset, World};
use nous_graph::window::WindowKind;
use nous_mining::{EvictionStrategy, MinerConfig};
use nous_obs::{trace_id_hex, MetricsRegistry, TraceRecord};
use nous_qa::TopicIndex;
use nous_query::{execute_shared, parse};
use nous_topics::LdaConfig;

/// Print one trace as an indented span tree with durations and attrs.
fn print_span_tree(trace: &TraceRecord, parent: u64, depth: usize) {
    for span in trace.spans.iter().filter(|s| s.parent == parent) {
        let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "{:indent$}{} [{:.1}µs] {}",
            "",
            span.name,
            span.end_nanos.saturating_sub(span.start_nanos) as f64 / 1_000.0,
            attrs.join(" "),
            indent = depth * 2
        );
        print_span_tree(trace, span.id, depth + 1);
    }
}

fn main() {
    let prometheus_only = std::env::args().any(|a| a == "--prometheus");
    let chrome_only = std::env::args().any(|a| a == "--chrome-trace");

    eprintln!("building session (smoke preset)…");
    let world = World::generate(&Preset::Smoke.world_config());
    let kb = CuratedKb::generate(&world, 7);
    let mut kg = KnowledgeGraph::from_curated(&world, &kb);
    kg.train_predictor();
    let articles = ArticleStream::generate(&world, &kb, &Preset::Smoke.stream_config());
    let a = world.entities[world.companies[0]].name.clone();
    let b = world.entities[world.companies[1]].name.clone();

    // One registry for everything: the session's lock accounting, the
    // pipeline's stage timings, the miner's window telemetry and the query
    // executor's per-class latencies share a single /stats surface.
    let registry = MetricsRegistry::new();
    // Flight recorder: last 256 traces; slow threshold 0 puts every
    // request in the slow log so the demo always has a trace to show.
    let tracer = registry.enable_tracing(42, 256, 0);
    let session = SharedSession::with_registry(
        kg,
        TopicIndex::new(2),
        TrendMonitor::new(
            WindowKind::Count { n: 200 },
            MinerConfig {
                k_max: 2,
                min_support: 3,
                eviction: EvictionStrategy::Eager,
            },
        ),
        registry.clone(),
    );

    // Ingest the stream through the micro-batched parallel path.
    let mut pipeline = IngestPipeline::with_registry(
        PipelineConfig {
            batch_size: 8,
            extract_workers: 2,
            ..Default::default()
        },
        registry.clone(),
    );
    let report = session.ingest_batch(&mut pipeline, &articles);
    eprintln!(
        "ingested {} docs, admitted {} facts ({:.0}% admission)",
        report.documents,
        report.admitted,
        report.admission_rate() * 100.0
    );

    // Refresh topics from the ingested graph, feed the trend miner, and
    // run one query per class so every subsystem reports.
    let topics = session.read(|kg, _| kg.build_topic_index(&LdaConfig::default()));
    session.set_topics(topics);
    session.with_trends(|trends, kg| {
        trends.observe(kg);
    });
    for q in [
        "TRENDING LIMIT 5".to_owned(),
        format!("tell me about {a}"),
        format!("WHY {a} -> {b} LIMIT 3"),
        "MATCH (Organization)-[acquired]->(Organization) LIMIT 3".to_owned(),
        format!("TIMELINE {a} LIMIT 5"),
        format!("PATHS {a} TO {b} MAX 3"),
    ] {
        let parsed = parse(&q).expect("example queries parse");
        let result = execute_shared(&session, &parsed);
        eprintln!(">> {q}\n{}", result.render());
    }

    if chrome_only {
        // chrome://tracing / Perfetto-loadable trace_event JSON.
        println!("{}", tracer.flight().dump_chrome_trace());
        return;
    }

    if !prometheus_only {
        println!("=== /stats (JSON snapshot) ===");
        println!("{}", session.stats_snapshot());
        println!("=== /metrics (Prometheus exposition) ===");
    }
    print!("{}", session.metrics().render_prometheus());

    if !prometheus_only {
        // The p99-alert workflow: the latency histogram's exemplar points
        // at a trace id, the flight recorder resolves it to a span tree.
        println!("=== slowest query trace (flight recorder) ===");
        let slowest = tracer
            .flight()
            .slow()
            .into_iter()
            .filter(|t| t.name == "query")
            .max_by_key(|t| t.duration_nanos());
        match slowest {
            Some(trace) => {
                println!(
                    "trace_id={} ({:.1}µs total)",
                    trace_id_hex(trace.trace_id),
                    trace.duration_nanos() as f64 / 1_000.0
                );
                print_span_tree(&trace, 0, 0);
            }
            None => println!("(no query traces recorded)"),
        }
    }
}
