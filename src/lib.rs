//! Umbrella crate for the NOUS reproduction: hosts the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`.
//!
//! The public API lives in the member crates; `nous_core` is the facade most
//! applications should start from.

pub use nous_core as core;
